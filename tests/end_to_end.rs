//! Cross-crate integration: catalog → workload → optimizer → plan,
//! for every algorithm and topology combination.

use sdp::prelude::*;

fn all_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Dp,
        Algorithm::Idp { k: 4 },
        Algorithm::Idp { k: 7 },
        Algorithm::Sdp(SdpConfig::paper()),
        Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::ParentHub,
            skyline: SkylineOption::PairwiseUnion,
        }),
        Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::Global,
            skyline: SkylineOption::PairwiseUnion,
        }),
        Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::RootHub,
            skyline: SkylineOption::FullVector,
        }),
        Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::RootHub,
            skyline: SkylineOption::KDominant(2),
        }),
        Algorithm::Goo,
    ]
}

#[test]
fn every_algorithm_handles_every_topology() {
    let catalog = Catalog::paper();
    let optimizer = Optimizer::new(&catalog);
    for topology in [
        Topology::Chain(7),
        Topology::Star(7),
        Topology::Cycle(7),
        Topology::Clique(6),
        Topology::star_chain(8),
    ] {
        let query = QueryGenerator::new(&catalog, topology, 5).instance(0);
        for alg in all_algorithms() {
            let plan = optimizer
                .optimize(&query, alg)
                .unwrap_or_else(|e| panic!("{topology} / {}: {e}", alg.label()));
            assert_eq!(plan.root.set, query.graph.all_nodes(), "{topology}");
            assert_eq!(
                plan.root.join_count(),
                query.num_relations() - 1,
                "{topology} / {}",
                alg.label()
            );
            plan.root.check_invariants().unwrap();
            assert!(plan.cost.is_finite() && plan.cost > 0.0);
        }
    }
}

#[test]
fn dp_lower_bounds_every_heuristic() {
    let catalog = Catalog::paper();
    let optimizer = Optimizer::new(&catalog);
    for seed in 0..3 {
        let query = QueryGenerator::new(&catalog, Topology::star_chain(9), seed).instance(0);
        let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        for alg in all_algorithms() {
            let plan = optimizer.optimize(&query, alg).unwrap();
            assert!(
                plan.cost >= dp.cost * (1.0 - 1e-9),
                "{} beat DP: {} < {}",
                alg.label(),
                plan.cost,
                dp.cost
            );
        }
    }
}

#[test]
fn optimization_is_deterministic() {
    let catalog = Catalog::paper();
    let optimizer = Optimizer::new(&catalog);
    let query = QueryGenerator::new(&catalog, Topology::star_chain(9), 11).instance(3);
    for alg in all_algorithms() {
        let a = optimizer.optimize(&query, alg).unwrap();
        let b = optimizer.optimize(&query, alg).unwrap();
        assert_eq!(a.cost, b.cost, "{}", alg.label());
        assert_eq!(
            a.stats.plans_costed,
            b.stats.plans_costed,
            "{}",
            alg.label()
        );
        assert_eq!(
            a.stats.jcrs_processed,
            b.stats.jcrs_processed,
            "{}",
            alg.label()
        );
    }
}

#[test]
fn ordered_queries_enforce_the_requested_order() {
    let catalog = Catalog::paper();
    let optimizer = Optimizer::new(&catalog);
    for seed in 0..3 {
        let query = QueryGenerator::new(&catalog, Topology::Star(7), seed).ordered_instance(0);
        assert!(query.order_on_join_column());
        for alg in all_algorithms() {
            let plan = optimizer.optimize(&query, alg).unwrap();
            assert!(
                plan.root.ordering.is_some(),
                "{}: unordered root for ordered query",
                alg.label()
            );
        }
    }
}

#[test]
fn skewed_catalog_full_pipeline() {
    let catalog = Catalog::paper_skewed();
    let optimizer = Optimizer::new(&catalog);
    let query = QueryGenerator::new(&catalog, Topology::star_chain(9), 2).instance(0);
    let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
    let sdp = optimizer
        .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
        .unwrap();
    assert!(sdp.cost / dp.cost < 2.0, "SDP not good on skewed data");
}

#[test]
fn plan_memory_is_reclaimed_after_runs() {
    let catalog = Catalog::paper();
    let optimizer = Optimizer::new(&catalog);
    let query = QueryGenerator::new(&catalog, Topology::Star(8), 4).instance(0);
    let plan = optimizer
        .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
        .unwrap();
    // The run's node counter outlives the plan; once the returned
    // tree is dropped, every node of the run must be gone.
    let counter = plan.root.counter();
    assert!(counter.live() > 0, "returned plan holds live nodes");
    drop(plan);
    assert_eq!(
        counter.live(),
        0,
        "plan nodes leaked after dropping the result"
    );
}
