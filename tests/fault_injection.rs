//! Fault-injection tests for the governed service path.
//!
//! The `sdp-testkit` fault plans are deterministic: memory shrinks and
//! latency injections key on the enumerator's barrier counter (a
//! logical clock), and leader panics key on the strategy label about
//! to run. These tests drive the service through budget exhaustion,
//! deadline expiry and leader crashes, and pin down the acceptance
//! behaviour: a request that exhausts its budget under DP still comes
//! back with a GOO-or-better plan inside its deadline, with the
//! producing rung and the reason visible in the metrics.

use sdp::prelude::*;
use sdp::service::ServiceError;
use sdp_testkit::FaultPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn star_query(relations: usize, seed: u64) -> (Catalog, Query) {
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(relations), seed).instance(0);
    (catalog, query)
}

#[test]
fn budget_exhaustion_yields_a_goo_plan_within_the_deadline() {
    // The acceptance criterion. Starve DP, SDP and IDP at their first
    // barriers: the ladder walks down to GOO, which runs against the
    // restored (full) budget and always fits.
    let (catalog, query) = star_query(13, 5);
    let service = OptimizerService::with_defaults(catalog);
    let deadline = Duration::from_secs(30);
    let faults = FaultPlan::new()
        .shrink_memory_at(1, 0)
        .shrink_memory_at(2, 0)
        .shrink_memory_at(3, 0);
    let request = ServiceRequest::query(query.clone())
        .with_algorithm(Algorithm::Dp)
        .with_deadline(deadline)
        .with_fault_plan(faults);

    let started = Instant::now();
    let resp = service.get_plan(&request).unwrap();
    assert!(
        started.elapsed() < deadline,
        "degraded request must answer within its deadline"
    );

    // The rung and why are visible on the plan...
    assert_eq!(resp.plan.rung, Some(Rung::Goo));
    assert_eq!(resp.plan.strategy, "GOO");
    assert_eq!(resp.plan.degradations, 3);
    assert_eq!(resp.plan.root.set, query.graph.all_nodes());

    // ...and in the metrics the replay report surfaces.
    let snap = service.governor_snapshot();
    assert_eq!(snap.degradations, 3);
    assert_eq!(snap.memory_degradations, 3);
    assert_eq!(snap.timeouts, 0);
    let rungs = service.rung_latencies().snapshot();
    assert_eq!(rungs.get("GOO").map(|h| h.count), Some(1));
}

#[test]
fn deadline_expiry_degrades_with_the_reason_recorded() {
    // Inject 500 ms of latency at DP's first barrier under a 1 s
    // deadline: DP's 40% slice (400 ms) expires, SDP's 65% slice
    // (650 ms) still has ~150 ms of real headroom left — plenty for a
    // 9-relation star.
    let (catalog, query) = star_query(9, 7);
    let optimizer = Optimizer::new(&catalog);
    let governor = Governor::new()
        .with_deadline(Duration::from_secs(1))
        .with_fault_plan(FaultPlan::new().delay_at(1, Duration::from_millis(500)));
    let governed = optimizer
        .optimize_governed(&query, Algorithm::Dp, &governor)
        .unwrap();
    assert_eq!(governed.rung, Some(Rung::Sdp));
    assert_eq!(governed.reason(), Some(DegradeReason::Deadline));
    assert_eq!(governed.degradations.len(), 1);
    assert!(governed.degradations[0].elapsed >= Duration::from_millis(400));
}

#[test]
fn panicking_leader_retries_once_one_rung_cheaper() {
    let (catalog, query) = star_query(8, 11);
    let service = OptimizerService::with_defaults(catalog);
    let faults = FaultPlan::new().panic_leader_on("DP");
    let request = ServiceRequest::query(query)
        .with_algorithm(Algorithm::Dp)
        .with_fault_plan(faults.clone());

    let resp = service.get_plan(&request).unwrap();
    assert_eq!(faults.fired_panics("DP"), 1, "the DP leader panicked once");
    assert_eq!(resp.plan.rung, Some(Rung::Sdp), "retried one rung cheaper");
    assert_eq!(resp.plan.strategy, "SDP");
    assert_eq!(resp.source, PlanSource::Fresh);
    assert_eq!(service.governor_snapshot().leader_retries, 1);
}

#[test]
fn exhausted_retries_abandon_the_flight_without_leaking_it() {
    // Both the first attempt and its single retry panic: the request
    // errors out, and the abandoned flight must not block the next
    // request for the same key (which finds no armed panics left and
    // succeeds).
    let (catalog, query) = star_query(8, 13);
    let service = OptimizerService::with_defaults(catalog);
    let faults = FaultPlan::new()
        .panic_leader_on("DP")
        .panic_leader_on("SDP");
    let request = ServiceRequest::query(query)
        .with_algorithm(Algorithm::Dp)
        .with_fault_plan(faults.clone());

    let err = service.get_plan(&request).unwrap_err();
    assert!(
        matches!(err, ServiceError::LeaderPanicked(ref msg) if msg.contains("injected")),
        "{err}"
    );
    assert_eq!(faults.fired_panics("DP"), 1);
    assert_eq!(faults.fired_panics("SDP"), 1);
    assert_eq!(service.governor_snapshot().leader_retries, 1);
    assert_eq!(service.cached_plans(), 0);

    let resp = service.get_plan(&request).unwrap();
    assert_eq!(
        resp.plan.rung,
        Some(Rung::Dp),
        "no panics left: DP succeeds"
    );
}

#[test]
fn waiters_never_hang_on_a_panicking_leader() {
    // Many concurrent requests for one key while the first leader
    // panics and retries: every request must resolve — coalesced onto
    // the retried enumeration, served from cache, or led by a later
    // arrival — and none may hang.
    let (catalog, query) = star_query(9, 17);
    let service = Arc::new(OptimizerService::with_defaults(catalog));
    // The injected delay holds the (retried) leader in enumeration
    // long enough for waiters to actually coalesce.
    let faults = FaultPlan::new()
        .panic_leader_on("DP")
        .delay_at(1, Duration::from_millis(100));
    let request = ServiceRequest::query(query)
        .with_algorithm(Algorithm::Dp)
        .with_fault_plan(faults.clone());

    let responses: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let service = Arc::clone(&service);
                let request = request.clone();
                scope.spawn(move || service.get_plan(&request))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(faults.fired_panics("DP"), 1, "exactly one injected panic");
    for resp in responses {
        let resp = resp.expect("no waiter may see the leader's panic");
        assert_eq!(resp.plan.rung, Some(Rung::Sdp));
    }
    assert_eq!(service.governor_snapshot().leader_retries, 1);
}

#[test]
fn daemon_charges_queue_wait_against_the_deadline() {
    // A single-worker daemon with an injected 150 ms enumeration: the
    // second request queues behind it, so its 1 s deadline is already
    // partly spent when its worker picks it up. The run must still
    // answer (degrading if its DP slice is gone) rather than fail.
    let (catalog, query) = star_query(9, 19);
    let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
    let daemon = Daemon::spawn(Arc::clone(&service), 1);

    let slow =
        ServiceRequest::query(QueryGenerator::new(&catalog, Topology::Star(9), 23).instance(0))
            .with_fault_plan(FaultPlan::new().delay_at(1, Duration::from_millis(150)));
    let governed = ServiceRequest::query(query)
        .with_algorithm(Algorithm::Dp)
        .with_deadline(Duration::from_secs(1));

    let first = daemon.submit(slow);
    let second = daemon.submit(governed);
    first.wait().unwrap();
    let resp = second.wait().unwrap();
    assert!(resp.plan.rung.is_some());
    daemon.shutdown();
}
