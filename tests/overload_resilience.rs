//! Overload-resilience battery: bounded admission, deadline-aware
//! shedding, stale-serve degraded mode, and the poison-query circuit
//! breaker — end-to-end through the daemon, plus a differential
//! proptest asserting the whole admit/shed/stale/breaker decision
//! sequence is bit-identical across enumeration thread counts and
//! pair-generation strategies.
//!
//! Every overload decision in the service is *counted*, never
//! wall-clock: admission reads the queue-depth gauge (released only
//! past the pause gate), queue-wait can be overridden by a chaos
//! schedule keyed on arrival sequence numbers, and the breaker's
//! half-open probe admits every Nth arrival. That discipline is what
//! makes these tests exact (`== 6`, not `>= 1`) and what the final
//! proptest checks differentially.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use sdp::prelude::*;
use sdp_testkit::ChaosSchedule;

fn service_with_parallelism(catalog: &Catalog, parallelism: usize) -> Arc<OptimizerService> {
    Arc::new(OptimizerService::new(
        catalog.clone(),
        ServiceConfig {
            cache_capacity: 64,
            cache_shards: 2,
            parallelism: Some(parallelism),
            enumerator: None,
            ..ServiceConfig::default()
        },
    ))
}

fn star_queries(catalog: &Catalog, distinct: u64, seed: u64) -> Vec<Query> {
    let gen = QueryGenerator::new(catalog, Topology::Star(7), seed);
    (0..distinct).map(|k| gen.instance(k)).collect()
}

/// Acceptance: a burst of 4·C requests over a queue bounded at C all
/// resolve — exactly C admitted, 3·C shed at submit — and the split
/// is identical at 1 worker and 4 because admission reads the gauge,
/// not worker progress.
#[test]
fn burst_of_four_times_capacity_resolves_every_ticket() {
    let catalog = Catalog::paper();
    let cap = 4usize;
    for workers in [1usize, 4] {
        let service = service_with_parallelism(&catalog, 1);
        let daemon = Daemon::with_config(
            Arc::clone(&service),
            DaemonConfig::new(workers)
                .with_queue_capacity(cap)
                .without_stale_serve(),
        );
        let queries = star_queries(&catalog, 4, 11);
        daemon.pause();
        let tickets: Vec<_> = (0..4 * cap)
            .map(|i| daemon.submit(ServiceRequest::query(queries[i % queries.len()].clone())))
            .collect();
        daemon.resume();

        let mut admitted = 0usize;
        let mut shed = 0usize;
        for (i, t) in tickets.into_iter().enumerate() {
            match t.wait() {
                Ok(_) => admitted += 1,
                Err(ServiceError::Shed(ShedReason::QueueFull)) => shed += 1,
                Err(e) => panic!("request {i} got unexpected error: {e}"),
            }
        }
        assert_eq!(admitted, cap, "workers={workers}");
        assert_eq!(shed, 3 * cap, "workers={workers}");
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.shed_queue_full, (3 * cap) as u64);
        assert_eq!(snap.queue_depth_hwm, cap as u64);
        assert_eq!(snap.queue_depth, 0, "gauge fully released");
        daemon.shutdown();
    }
}

/// Acceptance: an admitted request never reaches the optimizer with
/// its deadline already spent on queueing. A chaos schedule charges a
/// virtual two-minute wait against one arrival; that request is shed
/// before the governor ever starts, its neighbours run normally.
#[test]
fn queue_wait_is_charged_against_the_deadline() {
    let catalog = Catalog::paper();
    let service = service_with_parallelism(&catalog, 1);
    let chaos = ChaosSchedule::new().with_queue_wait(1, Duration::from_secs(120));
    let daemon = Daemon::with_config(Arc::clone(&service), DaemonConfig::new(1).with_chaos(chaos));
    let queries = star_queries(&catalog, 3, 23);

    let deadline = Duration::from_secs(60);
    let ok_before =
        daemon.execute(ServiceRequest::query(queries[0].clone()).with_deadline(deadline));
    let starved = daemon.execute(ServiceRequest::query(queries[1].clone()).with_deadline(deadline));
    let ok_after =
        daemon.execute(ServiceRequest::query(queries[2].clone()).with_deadline(deadline));

    assert!(ok_before.is_ok(), "{ok_before:?}");
    assert_eq!(
        starved.unwrap_err(),
        ServiceError::Shed(ShedReason::DeadlineExpired)
    );
    assert!(ok_after.is_ok(), "{ok_after:?}");

    let snap = service.overload_counters().snapshot();
    assert_eq!(snap.shed_deadline, 1);
    assert_eq!(
        service.governor_snapshot().timeouts,
        0,
        "the shed request never reached the governor"
    );
    daemon.shutdown();
}

/// Acceptance: a poison fingerprint (zero memory budget exhausts the
/// whole degradation ladder) trips its breaker after exactly K
/// consecutive failures, open-breaker arrivals fail fast into the
/// DLQ, and the counted half-open probe recovers it. The DLQ carries
/// both record kinds.
#[test]
fn poison_fingerprint_trips_breaker_and_recovers_through_daemon() {
    let dir = std::env::temp_dir().join(format!("sdp-overload-dlq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let catalog = Catalog::paper();
    let queries = star_queries(&catalog, 1, 31);
    {
        let service = Arc::new(
            OptimizerService::new(
                catalog.clone(),
                ServiceConfig {
                    parallelism: Some(1),
                    ..ServiceConfig::default()
                },
            )
            .with_dlq(&dir)
            .unwrap(),
        );
        // Defaults: threshold 3, probe every 4th open-breaker arrival.
        let daemon = Daemon::spawn(Arc::clone(&service), 1);
        let poison = || {
            ServiceRequest::query(queries[0].clone())
                .with_algorithm(Algorithm::Dp)
                .with_memory_budget(0)
        };

        // K-1 failures leave the breaker closed…
        for _ in 0..2 {
            let err = daemon.execute(poison()).unwrap_err();
            assert!(matches!(err, ServiceError::Opt(_)), "{err}");
        }
        assert_eq!(service.overload_counters().snapshot().breaker_trips, 0);
        // …the Kth opens it.
        let err = daemon.execute(poison()).unwrap_err();
        assert!(matches!(err, ServiceError::Opt(_)), "{err}");
        assert_eq!(service.overload_counters().snapshot().breaker_trips, 1);

        // Open breaker: even healthy requests on the fingerprint fail
        // fast — no optimizer work, straight to the DLQ.
        for _ in 0..3 {
            let err = daemon
                .execute(ServiceRequest::query(queries[0].clone()))
                .unwrap_err();
            assert_eq!(err, ServiceError::BreakerOpen { failures: 3 });
        }

        // The 4th open-breaker arrival is the counted half-open probe;
        // it is healthy, so it closes the breaker.
        let probe = daemon
            .execute(ServiceRequest::query(queries[0].clone()))
            .unwrap();
        assert_eq!(probe.source, PlanSource::Fresh);
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.breaker_probes, 1);
        assert_eq!(snap.breaker_recoveries, 1);
        assert_eq!(snap.breaker_rejections, 3);

        // Recovered: subsequent arrivals hit the cache like nothing
        // happened.
        let after = daemon
            .execute(ServiceRequest::query(queries[0].clone()))
            .unwrap();
        assert_eq!(after.source, PlanSource::Cache);
        assert_eq!(service.dlq_depth(), 6);
        daemon.shutdown();
    }

    // The DLQ captured both failure classes, durably.
    let (dlq, _, _) = sdp_store::DeadLetterQueue::open(&dir).unwrap();
    let kinds: Vec<_> = dlq.records().iter().map(|r| r.error_kind).collect();
    let memory = kinds
        .iter()
        .filter(|k| **k == sdp_store::DlqErrorKind::Memory)
        .count();
    let rejected = kinds
        .iter()
        .filter(|k| **k == sdp_store::DlqErrorKind::BreakerOpen)
        .count();
    assert_eq!((memory, rejected), (3, 3), "kinds: {kinds:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Degraded mode: after a statistics-epoch bump evicts a plan onto
/// the stale shelf, a submission that finds the queue full is served
/// that previous-epoch plan immediately — tagged `Stale`, resolving
/// even while the daemon is paused — instead of being shed.
#[test]
fn epoch_evicted_plans_serve_stale_under_admission_pressure() {
    let catalog = Catalog::paper();
    let service = service_with_parallelism(&catalog, 1);
    let daemon = Daemon::with_config(
        Arc::clone(&service),
        DaemonConfig::new(1).with_queue_capacity(1),
    );
    let queries = star_queries(&catalog, 2, 47);

    let fresh = daemon
        .execute(ServiceRequest::query(queries[0].clone()))
        .unwrap();
    assert_eq!(fresh.source, PlanSource::Fresh);

    // The bump evicts the cached plan onto the stale shelf.
    service.bump_stats_epoch();

    daemon.pause();
    let fill = daemon.submit(ServiceRequest::query(queries[1].clone()));
    let pressured = daemon.submit(ServiceRequest::query(queries[0].clone()));
    // The stale answer arrives while workers are still paused: the
    // shelf hit happens at submit, queueing nothing.
    let stale = pressured.wait().unwrap();
    assert_eq!(stale.source, PlanSource::Stale);
    assert_eq!(stale.plans_costed, 0, "no enumeration for a shelf hit");
    daemon.resume();
    assert!(fill.wait().is_ok());

    let snap = service.overload_counters().snapshot();
    assert_eq!(snap.served_stale, 1);
    assert_eq!(snap.shed_queue_full, 0, "pressure was absorbed, not shed");
    daemon.shutdown();
}

/// Satellite: graceful shutdown serves every queued ticket;
/// `shutdown_now` answers queued-but-unserved work with a clean
/// `Shutdown` error. Either way no ticket hangs, at enumeration
/// parallelism 1 and 4.
#[test]
fn shutdown_resolves_every_queued_ticket_at_both_thread_counts() {
    let catalog = Catalog::paper();
    for parallelism in [1usize, 4] {
        let queries = star_queries(&catalog, 4, 5);

        // Graceful: queued work is optimized before workers exit.
        let service = service_with_parallelism(&catalog, parallelism);
        let daemon = Daemon::spawn(Arc::clone(&service), 2);
        daemon.pause();
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| daemon.submit(ServiceRequest::query(q.clone())))
            .collect();
        daemon.shutdown();
        for t in tickets {
            let reply = t.wait();
            assert!(reply.is_ok(), "parallelism={parallelism}: {reply:?}");
        }

        // Immediate: queued work is answered Shutdown, deterministically.
        let service = service_with_parallelism(&catalog, parallelism);
        let daemon = Daemon::spawn(Arc::clone(&service), 2);
        daemon.pause();
        let tickets: Vec<_> = queries
            .iter()
            .map(|q| daemon.submit(ServiceRequest::query(q.clone())))
            .collect();
        daemon.shutdown_now();
        for t in tickets {
            assert_eq!(
                t.wait().unwrap_err(),
                ServiceError::Shutdown,
                "parallelism={parallelism}"
            );
        }
        assert_eq!(service.overload_counters().snapshot().queue_depth, 0);
    }
}

/// Satellite: a worker that dies mid-request surfaces as the internal
/// `WorkerDied` error — not a clean `Shutdown` — and the remaining
/// workers keep serving.
#[test]
fn killed_worker_surfaces_internal_error_not_shutdown() {
    let catalog = Catalog::paper();
    let service = service_with_parallelism(&catalog, 1);
    let chaos = ChaosSchedule::new().with_worker_kill(0);
    let daemon = Daemon::with_config(Arc::clone(&service), DaemonConfig::new(2).with_chaos(chaos));
    let queries = star_queries(&catalog, 2, 17);

    let killed = daemon.execute(ServiceRequest::query(queries[0].clone()));
    assert_eq!(killed.unwrap_err(), ServiceError::WorkerDied);
    // The pool is degraded but alive.
    let survivor = daemon.execute(ServiceRequest::query(queries[1].clone()));
    assert!(survivor.is_ok(), "{survivor:?}");
    daemon.shutdown();
    // The dying worker's guard released its in-flight slot on the way
    // down; after the join the gauge must balance.
    assert_eq!(service.overload_counters().snapshot().inflight, 0);
}

// ---------------------------------------------------------------
// Differential battery: decision-sequence determinism.
// ---------------------------------------------------------------

/// What one scenario request is.
#[derive(Debug, Clone, Copy)]
enum ReqKind {
    /// Selector-routed optimization, no deadline.
    Plain,
    /// Pinned DP with a zero memory budget: exhausts every rung —
    /// the breaker's food.
    Poison,
    /// Generous deadline, real (tiny) queue wait: always runs.
    Deadline,
    /// Generous deadline but a chaos-charged two-minute queue wait:
    /// always shed (or stale-served) at dequeue.
    Starved,
}

fn req_kind(byte: u8) -> ReqKind {
    match byte % 10 {
        0 | 1 => ReqKind::Poison,
        2 | 3 => ReqKind::Starved,
        4 => ReqKind::Deadline,
        _ => ReqKind::Plain,
    }
}

/// Replay one scenario — paused bursts over a capacity-2 queue, one
/// worker — and record one decision tag per ticket, in submission
/// order. Everything that can influence a tag is counted, so two runs
/// of the same scenario must produce the same string whatever the
/// enumeration thread count or pair-generation strategy.
fn decision_sequence(
    scenario: &[(bool, Vec<(usize, u8)>)],
    parallelism: usize,
    enumerator: EnumeratorKind,
) -> String {
    let catalog = Catalog::paper();
    let queries = star_queries(&catalog, 3, 71);

    // Chaos queue waits key on global arrival numbers, which count
    // every submission — admitted or shed — in order.
    let mut chaos = ChaosSchedule::new();
    let mut seq = 0u64;
    for (_, burst) in scenario {
        for &(_, kind) in burst {
            if matches!(req_kind(kind), ReqKind::Starved) {
                chaos = chaos.with_queue_wait(seq, Duration::from_secs(120));
            }
            seq += 1;
        }
    }

    let service = Arc::new(OptimizerService::new(
        catalog.clone(),
        ServiceConfig {
            cache_capacity: 64,
            cache_shards: 2,
            parallelism: Some(parallelism),
            enumerator: Some(enumerator),
            ..ServiceConfig::default()
        },
    ));
    let daemon = Daemon::with_config(
        Arc::clone(&service),
        DaemonConfig::new(1)
            .with_queue_capacity(2)
            .with_chaos(chaos),
    );

    let mut tags = String::new();
    for (bump, burst) in scenario {
        if *bump {
            service.bump_stats_epoch();
        }
        daemon.pause();
        let tickets: Vec<_> = burst
            .iter()
            .map(|&(pick, kind)| {
                let mut req = ServiceRequest::query(queries[pick % queries.len()].clone());
                match req_kind(kind) {
                    ReqKind::Plain => {}
                    ReqKind::Poison => {
                        req = req.with_algorithm(Algorithm::Dp).with_memory_budget(0);
                    }
                    ReqKind::Deadline | ReqKind::Starved => {
                        req = req.with_deadline(Duration::from_secs(60));
                    }
                }
                daemon.submit(req)
            })
            .collect();
        daemon.resume();
        for t in tickets {
            tags.push(match t.wait() {
                Ok(r) => match r.source {
                    PlanSource::Fresh => 'F',
                    PlanSource::Cache | PlanSource::Coalesced => 'C',
                    PlanSource::Stale => 'S',
                },
                Err(ServiceError::Shed(ShedReason::QueueFull)) => 'Q',
                Err(ServiceError::Shed(ShedReason::DeadlineExpired)) => 'D',
                Err(ServiceError::BreakerOpen { .. }) => 'B',
                Err(ServiceError::Opt(_)) => 'M',
                Err(e) => panic!("unexpected reply: {e}"),
            });
        }
        // Waiting on every ticket drains the queue, so the next
        // burst starts from a deterministic empty daemon.
    }
    daemon.shutdown();
    tags
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Satellite: under a fixed chaos schedule, the full
    /// admit/shed/stale-serve/breaker decision sequence is
    /// bit-identical across enumeration thread counts (the
    /// `SDP_THREADS` axis) *and* across pair-generation strategies.
    /// Overload policy may not depend on how fast plans are found or
    /// which enumerator found them.
    #[test]
    fn overload_decisions_are_deterministic_across_threads_and_enumerators(
        scenario in prop::collection::vec(
            (any::<bool>(), prop::collection::vec((0usize..3, any::<u8>()), 2..=8)),
            1..=3,
        ),
    ) {
        let baseline = decision_sequence(&scenario, 1, EnumeratorKind::LevelScan);
        for (parallelism, enumerator) in [
            (4, EnumeratorKind::LevelScan),
            (1, EnumeratorKind::Dpccp),
            (4, EnumeratorKind::Dpccp),
        ] {
            let got = decision_sequence(&scenario, parallelism, enumerator);
            prop_assert_eq!(
                &baseline,
                &got,
                "decision sequence diverged at parallelism={} enumerator={:?}",
                parallelism,
                enumerator
            );
        }
    }
}
