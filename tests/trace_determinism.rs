//! The merged trace must be byte-identical across parallelism.
//!
//! The enumerator's per-worker event buffers are forwarded at the
//! level-merge barrier in chunk order — the same discipline that makes
//! the memo bit-identical at any thread count — and every canonical
//! event field is derived from deterministic enumeration state, never
//! from wall clocks or thread identity. So a governed run with the
//! same query and the same injected fault schedule must emit the
//! byte-identical canonical trace at 1 thread and at 4, including runs
//! that trip the budget mid-ladder and roll levels back.

use sdp::prelude::*;
use sdp::trace::{canonical_dump, MemorySink, Tracer};
use sdp_testkit::FaultPlan;
use std::sync::Arc;

/// One governed, traced run at a fixed parallelism; returns the
/// canonical dump of everything the optimizer emitted.
fn traced_run(catalog: &Catalog, query: &Query, threads: usize, schedule: &[(u64, u64)]) -> String {
    let sink = Arc::new(MemorySink::unbounded());
    let mut faults = FaultPlan::new();
    for &(barrier, bytes) in schedule {
        faults = faults.shrink_memory_at(barrier, bytes);
    }
    let governor = Governor::new().with_fault_plan(faults);
    Optimizer::new(catalog)
        .with_tracer(Tracer::new(Arc::clone(&sink) as _))
        .with_parallelism(threads)
        .optimize_governed(query, Algorithm::Dp, &governor)
        .expect("governed run must land on a feasible rung");
    canonical_dump(&sink.snapshot())
}

#[test]
fn governed_trace_is_parallelism_invariant() {
    // Star-13 crosses the enumerator's parallel-pair threshold, so the
    // 4-thread run really shards levels; the barrier-2 starvation
    // forces a DP → SDP descent with a mid-run level rollback.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(13), 7).instance(0);
    let schedule = [(2u64, 0u64)];
    let sequential = traced_run(&catalog, &query, 1, &schedule);
    let parallel = traced_run(&catalog, &query, 4, &schedule);
    assert!(
        !sequential.is_empty(),
        "a traced governed run must emit events"
    );
    assert_eq!(
        sequential, parallel,
        "canonical traces diverged between 1 and 4 threads"
    );
    // The descent really happened and is visible in the trace.
    assert!(sequential.contains("degrade from=DP to=SDP reason=Memory"));
    assert!(sequential.contains("level_rollback"));
    assert!(sequential.contains("rung_complete rung=SDP"));
    // Enumeration spans are present: per-set creations and per-level
    // summaries with pruning counters.
    assert!(sequential.contains("jcr level="));
    assert!(sequential.contains("level level="));
    assert!(sequential.contains("skyline_partitions="));
}

#[test]
fn undegraded_trace_is_parallelism_invariant() {
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::star_chain(14), 11).instance(0);
    let sequential = traced_run(&catalog, &query, 1, &[]);
    let parallel = traced_run(&catalog, &query, 4, &[]);
    assert_eq!(sequential, parallel);
    assert!(sequential.contains("rung_complete rung=DP"));
    assert!(!sequential.contains("degrade"));
}

#[test]
fn full_descent_trace_is_parallelism_invariant() {
    // Starve DP, SDP and IDP at their first barriers: the trace walks
    // the whole ladder to GOO and must still match byte-for-byte.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(13), 5).instance(0);
    let schedule = [(1u64, 0u64), (2, 0), (3, 0)];
    let sequential = traced_run(&catalog, &query, 1, &schedule);
    let parallel = traced_run(&catalog, &query, 4, &schedule);
    assert_eq!(sequential, parallel);
    assert!(sequential.contains("degrade from=DP to=SDP reason=Memory"));
    assert!(sequential.contains("degrade from=SDP to=IDP(4) reason=Memory"));
    assert!(sequential.contains("degrade from=IDP(4) to=GOO reason=Memory"));
    assert!(sequential.contains("rung_complete rung=GOO"));
}

#[test]
fn identical_runs_produce_identical_traces() {
    // Same query, same schedule, same parallelism, two separate runs:
    // the canonical dump is a pure function of the inputs.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(12), 3).instance(0);
    let a = traced_run(&catalog, &query, 4, &[(2, 0)]);
    let b = traced_run(&catalog, &query, 4, &[(2, 0)]);
    assert_eq!(a, b);
}
