//! `EXPLAIN ANALYZE` provenance on governed plans.
//!
//! The report must show where a plan actually came from: the rung that
//! produced it after any governor descents, the per-level enumeration
//! profile with its pruning counters, and skyline-survivor counts when
//! the producing rung was SDP.

use sdp::core::explain::explain_analyze;
use sdp::prelude::*;

#[test]
fn governed_star_chain_report_carries_full_provenance() {
    // Star-chain under a ~1 MB model budget: DP blows the budget and
    // the governor descends to SDP, whose hub partitions exercise the
    // skyline counters.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::star_chain(13), 4).instance(0);
    let governor = Governor::new().with_memory_budget(1 << 20);
    let governed = Optimizer::new(&catalog)
        .optimize_governed(&query, Algorithm::Dp, &governor)
        .unwrap();
    assert_eq!(governed.rung, Some(Rung::Sdp), "budget must force SDP");

    let text = explain_analyze(&governed);
    // Header: requested vs producing strategy, plus the descent taken.
    assert!(text.contains("requested=DP"), "{text}");
    assert!(text.contains("produced=SDP"), "{text}");
    assert!(text.contains("(degraded)"), "{text}");
    assert!(text.contains("degraded DP -> SDP  reason=Memory"), "{text}");

    // Every plan node is tagged with the producing rung and carries a
    // self-cost breakdown.
    assert_eq!(
        text.matches("[rung=SDP]").count(),
        governed.plan.root.node_count(),
        "{text}"
    );
    assert!(text.contains("self="), "{text}");

    // Per-level profile: pruning counters and skyline survivors from
    // the SDP levels that produced the plan.
    assert!(text.contains("levels:"), "{text}");
    assert!(text.contains("[SDP] level"), "{text}");
    assert!(text.contains("pruned="), "{text}");
    let has_skyline_survivors = text.lines().any(|line| {
        line.contains("[SDP]")
            && line
                .split("skyline_survivors=")
                .nth(1)
                .and_then(|rest| rest.split_whitespace().next())
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|v| v > 0)
    });
    assert!(
        has_skyline_survivors,
        "SDP levels must report nonzero skyline survivors\n{text}"
    );
}

#[test]
fn undegraded_report_shows_requested_rung() {
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Chain(6), 2).instance(0);
    let governed = Optimizer::new(&catalog)
        .optimize_governed(&query, Algorithm::Dp, &Governor::new())
        .unwrap();
    let text = explain_analyze(&governed);
    assert!(text.contains("requested=DP"), "{text}");
    assert!(text.contains("produced=DP"), "{text}");
    assert!(!text.contains("(degraded)"), "{text}");
    assert!(text.contains("[DP] level"), "{text}");
    // DP prunes nothing: every level retains what it creates.
    assert!(text.contains("skyline_partitions=0"), "{text}");
}
