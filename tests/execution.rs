//! Optimizer ↔ executor integration on materialized data: plans from
//! every enumerator must compute the same answer, ordered plans must
//! deliver ordered output, and the cost model must track reality.

use sdp::engine::{actual_vs_estimated, q_error};
use sdp::prelude::*;

fn scaled_world() -> (Catalog, Database) {
    let catalog = scaled_catalog(10, 800, 3);
    let db = Database::generate(&catalog, 5);
    (catalog, db)
}

#[test]
fn all_enumerators_compute_the_same_answer() {
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    for topo in [
        Topology::Chain(5),
        Topology::Star(5),
        Topology::star_chain(7),
    ] {
        for seed in 0..2 {
            let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
            let mut reference: Option<Vec<Vec<i64>>> = None;
            for alg in [
                Algorithm::Dp,
                Algorithm::Sdp(SdpConfig::paper()),
                Algorithm::Idp { k: 4 },
                Algorithm::Goo,
            ] {
                let plan = optimizer.optimize(&query, alg).unwrap();
                let mut rows = execute(&plan.root, &query, &catalog, &db).unwrap();
                rows.sort();
                match &reference {
                    None => reference = Some(rows),
                    Some(r) => {
                        assert_eq!(r, &rows, "{topo} seed {seed}: {} disagrees", alg.label())
                    }
                }
            }
        }
    }
}

#[test]
fn ordered_plans_deliver_sorted_output() {
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    let query = QueryGenerator::new(&catalog, Topology::star_chain(6), 7).ordered_instance(0);
    let target = query.order_by.unwrap().column;
    // Canonical output layout: nodes ascending.
    let mut offset = 0;
    for n in 0..target.node {
        offset += catalog
            .relation(query.graph.relation(n))
            .unwrap()
            .columns
            .len();
    }
    let col = offset + target.col.0 as usize;

    for alg in [Algorithm::Dp, Algorithm::Sdp(SdpConfig::paper())] {
        let plan = optimizer.optimize(&query, alg).unwrap();
        let rows = execute(&plan.root, &query, &catalog, &db).unwrap();
        for w in rows.windows(2) {
            assert!(
                w[0][col] <= w[1][col],
                "{}: output not ordered",
                alg.label()
            );
        }
    }
}

#[test]
fn estimates_stay_correlated_with_actuals() {
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    let mut qerrors = Vec::new();
    for seed in 0..3 {
        let query = QueryGenerator::new(&catalog, Topology::Chain(4), seed).instance(0);
        let plan = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        for (_, est, act) in actual_vs_estimated(&plan.root, &query, &catalog, &db).unwrap() {
            qerrors.push(q_error(est, act));
        }
    }
    qerrors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = qerrors[qerrors.len() / 2];
    assert!(median < 10.0, "median q-error {median}");
}

#[test]
fn skewed_data_execution_round_trip() {
    // Generate a skewed scaled world and verify execution still
    // agrees across enumerators.
    let spec = SchemaSpec {
        relations: 8,
        columns_per_relation: 10,
        min_cardinality: 10,
        max_cardinality: 400,
        min_domain: 10,
        max_domain: 400,
        skewed_fraction: 0.5,
        ..SchemaSpec::paper()
    };
    let catalog = sdp::catalog::SchemaBuilder::new(spec).build().unwrap();
    let db = Database::generate(&catalog, 23);
    let optimizer = Optimizer::new(&catalog);
    let query = QueryGenerator::new(&catalog, Topology::Star(5), 2).instance(0);
    let a = optimizer.optimize(&query, Algorithm::Dp).unwrap();
    let b = optimizer
        .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
        .unwrap();
    let mut ra = execute(&a.root, &query, &catalog, &db).unwrap();
    let mut rb = execute(&b.root, &query, &catalog, &db).unwrap();
    ra.sort();
    rb.sort();
    assert_eq!(ra, rb);
}

#[test]
fn filtered_queries_execute_correctly() {
    // Filters are pushed into the scans by the optimizer and applied
    // by the executor; every enumerator must agree, and the result
    // must match a reference filter-then-join evaluation.
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    for seed in 0..3 {
        let query = QueryGenerator::new(&catalog, Topology::Chain(3), seed)
            .with_filter_probability(1.0)
            .instance(0);
        assert!(!query.graph.filters().is_empty());
        let mut reference: Option<Vec<Vec<i64>>> = None;
        for alg in [
            Algorithm::Dp,
            Algorithm::Sdp(SdpConfig::paper()),
            Algorithm::Goo,
        ] {
            let plan = optimizer.optimize(&query, alg).unwrap();
            let mut rows = execute(&plan.root, &query, &catalog, &db).unwrap();
            rows.sort();
            // Every output row satisfies every filter (columns are
            // canonical: node-ascending blocks).
            for f in query.graph.filters() {
                let mut off = 0;
                for n in 0..f.column.node {
                    off += catalog
                        .relation(query.graph.relation(n))
                        .unwrap()
                        .columns
                        .len();
                }
                let col = off + f.column.col.0 as usize;
                for row in &rows {
                    assert!(f.matches(row[col]), "filter {f} violated");
                }
            }
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "{} disagrees", alg.label()),
            }
        }
    }
}

#[test]
fn filters_reduce_results_and_costs() {
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    let plain = QueryGenerator::new(&catalog, Topology::Star(4), 11).instance(0);
    let filtered = QueryGenerator::new(&catalog, Topology::Star(4), 11)
        .with_filter_probability(1.0)
        .instance(0);
    let p_plain = optimizer.optimize(&plain, Algorithm::Dp).unwrap();
    let p_filt = optimizer.optimize(&filtered, Algorithm::Dp).unwrap();
    assert!(p_filt.rows <= p_plain.rows);
    let rows_plain = execute(&p_plain.root, &plain, &catalog, &db).unwrap().len();
    let rows_filt = execute(&p_filt.root, &filtered, &catalog, &db)
        .unwrap()
        .len();
    assert!(rows_filt <= rows_plain);
}
