//! Order-aware optimization must stay deterministic.
//!
//! Interesting-order machinery adds three new sources of potential
//! nondeterminism: sort-ahead enforcer offers, the skyline's
//! interesting-order rescue partitions, and the Pareto memo keeping
//! more than one plan per group. All of them are pinned to the
//! coordinating thread in deterministic set order, so an order-aware
//! run must produce the bit-identical plan, per-level counters
//! (`order_rescued`, `sort_enforcers`) and canonical trace at 1 worker
//! thread and at 4 — and the identical plan under the levelscan and
//! dpccp pair enumerators, which walk the same plan space in different
//! orders.

use sdp::prelude::*;
use sdp::trace::{canonical_dump, MemorySink, Tracer};
use std::sync::Arc;

/// One traced, governed order-aware run; returns everything that must
/// be invariant: the canonical trace, the analyzed profile (per-level
/// counters), the plan digest and the cost bits.
fn traced_ordered_run(
    catalog: &Catalog,
    query: &Query,
    threads: usize,
    kind: EnumeratorKind,
) -> (String, String, u64, u64) {
    let sink = Arc::new(MemorySink::unbounded());
    let governed = Optimizer::new(catalog)
        .with_tracer(Tracer::new(Arc::clone(&sink) as _))
        .with_parallelism(threads)
        .with_enumerator(kind)
        .optimize_governed(query, Algorithm::Sdp(SdpConfig::paper()), &Governor::new())
        .expect("ungoverned-budget run must complete");
    (
        canonical_dump(&sink.snapshot()),
        explain_analyze(&governed),
        governed.plan.root.structural_digest(),
        governed.plan.cost.to_bits(),
    )
}

#[test]
fn ordered_traces_and_counters_are_parallelism_invariant() {
    // Star-13 crosses the enumerator's parallel-pair threshold, so the
    // 4-thread run really shards levels; ORDER BY and GROUP BY
    // requests exercise both interesting-order entry points.
    let catalog = Catalog::paper();
    for (topology, seed) in [
        (Topology::Star(13), 7u64),
        (Topology::Chain(10), 3),
        (Topology::star_chain(12), 5),
    ] {
        let generator = QueryGenerator::new(&catalog, topology, seed);
        for query in [generator.ordered_instance(0), generator.grouped_instance(1)] {
            let (seq_trace, seq_profile, seq_digest, seq_cost) =
                traced_ordered_run(&catalog, &query, 1, EnumeratorKind::LevelScan);
            let (par_trace, par_profile, par_digest, par_cost) =
                traced_ordered_run(&catalog, &query, 4, EnumeratorKind::LevelScan);
            assert_eq!(
                seq_trace, par_trace,
                "{topology}: canonical trace diverged between 1 and 4 threads"
            );
            assert_eq!(
                seq_profile, par_profile,
                "{topology}: analyzed profile diverged between 1 and 4 threads"
            );
            assert_eq!((seq_digest, seq_cost), (par_digest, par_cost));

            // The order machinery really ran and is visible in both
            // the trace and the per-level counters. Pure chains form
            // no hub partitions (nothing is pruned, so nothing needs
            // rescuing); wherever the skyline pruned, the rescue
            // partitions must appear alongside it.
            if seq_trace.contains("skyline_partition level=") {
                assert!(
                    seq_trace.contains("order_partition"),
                    "{topology}: skyline pruned but no interesting-order rescue \
                     partitions in the trace"
                );
            }
            assert!(seq_profile.contains("order_rescued="));
            assert!(seq_profile.contains("sort_enforcers="));
        }
    }
}

#[test]
fn ordered_plans_agree_across_enumerators() {
    // The levelscan and dpccp enumerators visit the same join pairs in
    // different orders; with order tracking in the memo the chosen
    // plan — digest and cost bits — must still be identical.
    let catalog = Catalog::paper();
    for (topology, seed) in [
        (Topology::Star(11), 2u64),
        (Topology::Chain(10), 4),
        (Topology::star_chain(11), 6),
    ] {
        let generator = QueryGenerator::new(&catalog, topology, seed);
        for k in 0..3 {
            let query = if k % 2 == 0 {
                generator.ordered_instance(k)
            } else {
                generator.grouped_instance(k)
            };
            for algorithm in [Algorithm::Dp, Algorithm::Sdp(SdpConfig::paper())] {
                let outcomes: Vec<(u64, u64)> = [EnumeratorKind::LevelScan, EnumeratorKind::Dpccp]
                    .iter()
                    .map(|&kind| {
                        let plan = Optimizer::new(&catalog)
                            .with_enumerator(kind)
                            .optimize(&query, algorithm)
                            .unwrap_or_else(|e| panic!("{topology} #{k}: {e}"));
                        (plan.root.structural_digest(), plan.cost.to_bits())
                    })
                    .collect();
                assert_eq!(
                    outcomes[0], outcomes[1],
                    "{topology} #{k}: ordered plan differs between levelscan and dpccp"
                );
            }
        }
    }
}

#[test]
fn repeated_ordered_runs_are_pure() {
    // Same ordered query, same thread count, two separate runs: trace,
    // profile, digest and cost are a pure function of the inputs.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(12), 9).ordered_instance(0);
    let a = traced_ordered_run(&catalog, &query, 4, EnumeratorKind::LevelScan);
    let b = traced_ordered_run(&catalog, &query, 4, EnumeratorKind::LevelScan);
    assert_eq!(a, b);
}
