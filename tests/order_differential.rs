//! Sort-avoidance differential suite for order-aware optimization.
//!
//! An interesting-order request (ORDER BY / GROUP BY on a join column)
//! changes what the optimizer *keeps* — merge joins and ordered index
//! scans that produce the order, sort-ahead enforcers placed below
//! joins — but it must never change what a plan *computes*, and it can
//! only ever help: the order-aware optimizer always has "order-blind
//! optimum plus one explicit root sort" available as a fallback, so
//! its chosen cost is bounded by that sum on every rung of the
//! degradation ladder.
//!
//! The suite generates 50 queries per topology (star, chain,
//! star-chain), optimizes each both order-aware and order-blind on all
//! four governor rungs (DP → SDP → IDP(4) → GOO), executes the plans
//! on materialized synthetic data through `sdp-engine`, and asserts:
//!
//! 1. **sort avoidance**: order-aware cost ≤ order-blind cost + the
//!    cost of an explicit sort of the final result;
//! 2. **order delivery**: the order-aware plan's root carries the
//!    requested order, and its executed output is really sorted on the
//!    requested column;
//! 3. **differential correctness**: the executed result multiset
//!    equals the order-blind plan's, on every rung;
//! 4. **determinism**: the order-aware plan is bit-identical at
//!    1 worker thread and at 4, on every rung.

use sdp::prelude::*;

/// Queries generated per topology.
const QUERIES_PER_TOPOLOGY: u64 = 50;

/// Floating-point slack for the sort-avoidance inequality (the bound
/// is constructive, but the two runs may sum costs in different
/// orders).
const EPS: f64 = 1.0 + 1e-9;

fn scaled_world() -> (Catalog, Database) {
    // Small row counts keep ~750 plan executions affordable in debug
    // builds while still exercising multi-way joins for real.
    let catalog = scaled_catalog(10, 400, 3);
    let db = Database::generate(&catalog, 5);
    (catalog, db)
}

fn ladder() -> Vec<(Rung, Algorithm)> {
    sdp::core::LADDER
        .iter()
        .map(|&rung| (rung, rung.algorithm()))
        .collect()
}

/// The same query with the interesting order stripped.
fn order_blind(query: &Query) -> Query {
    let mut blind = query.clone();
    blind.order_by = None;
    blind.group_by = None;
    blind
}

/// Offset of the requested order column in the executor's canonical
/// output layout (nodes ascending, each relation's column block in
/// catalog order).
fn order_column_offset(catalog: &Catalog, query: &Query) -> usize {
    let target = query
        .interesting_order()
        .expect("query carries an interesting order")
        .column;
    let mut off = 0;
    for n in 0..target.node {
        off += catalog
            .relation(query.graph.relation(n))
            .unwrap()
            .columns
            .len();
    }
    off + target.col.0 as usize
}

fn assert_order_differential(topology: Topology, generator_seed: u64) {
    let (catalog, db) = scaled_world();
    let model = CostModel::with_defaults(&catalog);
    let optimizer = Optimizer::new(&catalog);
    let generator = QueryGenerator::new(&catalog, topology, generator_seed);

    for k in 0..QUERIES_PER_TOPOLOGY {
        // Mostly ORDER BY, every fifth query GROUP BY: both register
        // the same interesting order with the optimizer, and both must
        // deliver sorted output.
        let query = if k % 5 == 4 {
            generator.grouped_instance(k)
        } else {
            generator.ordered_instance(k)
        };
        let blind = order_blind(&query);
        let col = order_column_offset(&catalog, &query);

        // The explicit fallback the order-aware optimizer always has:
        // sort the full result once at the root.
        let est = model.estimator();
        let full = query.graph.all_nodes();
        let root_sort = model.sort_cost(
            est.rows_for_set(&query.graph, full),
            est.width_for_set(&query.graph, full),
        );

        let mut reference: Option<Vec<Vec<i64>>> = None;
        for (rung, algorithm) in ladder() {
            let ordered = optimizer
                .optimize(&query, algorithm)
                .unwrap_or_else(|e| panic!("{topology} #{k} {rung} (ordered): {e}"));
            let blind_plan = optimizer
                .optimize(&blind, algorithm)
                .unwrap_or_else(|e| panic!("{topology} #{k} {rung} (blind): {e}"));

            // (1) Sort avoidance can only help.
            assert!(
                ordered.cost <= (blind_plan.cost + root_sort) * EPS,
                "{topology} #{k} {rung}: order-aware cost {} exceeds \
                 order-blind {} + root sort {}",
                ordered.cost,
                blind_plan.cost,
                root_sort
            );

            // (2) The plan delivers the order, physically.
            assert!(
                ordered.root.ordering.is_some(),
                "{topology} #{k} {rung}: order-aware root carries no order"
            );
            let rows = execute(&ordered.root, &query, &catalog, &db)
                .unwrap_or_else(|e| panic!("{topology} #{k} {rung}: execution failed: {e}"));
            for w in rows.windows(2) {
                assert!(
                    w[0][col] <= w[1][col],
                    "{topology} #{k} {rung}: output not sorted on the requested column"
                );
            }

            // (3) Same multiset as every other rung and as the
            // order-blind plan (executed once, against the DP rung).
            let mut sorted_rows = rows;
            sorted_rows.sort();
            match &reference {
                None => {
                    let mut blind_rows = execute(&blind_plan.root, &blind, &catalog, &db)
                        .unwrap_or_else(|e| {
                            panic!("{topology} #{k} {rung}: blind execution failed: {e}")
                        });
                    blind_rows.sort();
                    assert_eq!(
                        blind_rows, sorted_rows,
                        "{topology} #{k} {rung}: ordered plan computes a different \
                         result than the order-blind plan"
                    );
                    reference = Some(sorted_rows);
                }
                Some(r) => assert_eq!(
                    r, &sorted_rows,
                    "{topology} #{k}: {rung} ordered plan computes a different result"
                ),
            }
        }
    }
}

#[test]
fn star_queries_avoid_sorts_across_the_ladder() {
    assert_order_differential(Topology::Star(5), 0x0DE4);
}

#[test]
fn chain_queries_avoid_sorts_across_the_ladder() {
    assert_order_differential(Topology::Chain(5), 0x0DE4);
}

#[test]
fn star_chain_queries_avoid_sorts_across_the_ladder() {
    assert_order_differential(Topology::star_chain(6), 0x0DE4);
}

#[test]
fn chain10_order_aware_beats_blind_plus_sort() {
    // The acceptance measurement recorded in EXPERIMENTS.md: on
    // Chain-10 over the paper catalog with a matching ORDER BY,
    // producing the order inside the plan (ordered index scans, merge
    // joins, sort-ahead below the final joins) is *strictly* cheaper
    // than bolting a root sort onto the order-blind optimum — on most
    // instances by far (the blind optimum tends to leave the big
    // relation's rows unreduced at the root, where the sort pays for
    // them again).
    let catalog = Catalog::paper();
    let model = CostModel::with_defaults(&catalog);
    let optimizer = Optimizer::new(&catalog);
    let mut strict_wins = 0u32;
    for seed in 0..8u64 {
        let query = QueryGenerator::new(&catalog, Topology::Chain(10), seed).ordered_instance(0);
        let blind = order_blind(&query);
        let est = model.estimator();
        let full = query.graph.all_nodes();
        let root_sort = model.sort_cost(
            est.rows_for_set(&query.graph, full),
            est.width_for_set(&query.graph, full),
        );
        for algorithm in [Algorithm::Dp, Algorithm::Sdp(SdpConfig::paper())] {
            let ordered = optimizer.optimize(&query, algorithm).unwrap();
            let blind_plan = optimizer.optimize(&blind, algorithm).unwrap();
            let bound = blind_plan.cost + root_sort;
            assert!(ordered.cost <= bound * EPS, "seed {seed}: bound violated");
            if ordered.cost < bound * (1.0 - 1e-6) {
                strict_wins += 1;
            }
        }
    }
    // Six of the eight seeds (twelve of sixteen runs) are strict wins
    // — the other two request an order the blind optimum happens to
    // produce anyway, so sorting is already free.
    assert!(
        strict_wins >= 12,
        "expected strict sort-avoidance wins on most Chain-10 instances, got {strict_wins}/16"
    );
}

#[test]
fn ordered_plans_are_bit_identical_across_parallelism() {
    // (4) Enforcer offers happen on the coordinating thread in
    // deterministic set order, so the order-aware plan — digest and
    // cost bits — must not depend on worker count. Star-13 crosses
    // the enumerator's parallel-pair threshold, so the 4-thread run
    // really shards levels.
    let catalog = Catalog::paper();
    for (topology, seed) in [
        (Topology::Star(13), 5u64),
        (Topology::Chain(10), 7),
        (Topology::star_chain(12), 11),
    ] {
        let generator = QueryGenerator::new(&catalog, topology, seed);
        for k in 0..3 {
            let query = generator.ordered_instance(k);
            for (rung, algorithm) in ladder() {
                let outcomes: Vec<(u64, u64)> = [1usize, 4]
                    .iter()
                    .map(|&threads| {
                        let plan = Optimizer::new(&catalog)
                            .with_parallelism(threads)
                            .optimize(&query, algorithm)
                            .unwrap_or_else(|e| panic!("{topology} #{k} {rung}: {e}"));
                        (plan.root.structural_digest(), plan.cost.to_bits())
                    })
                    .collect();
                assert_eq!(
                    outcomes[0], outcomes[1],
                    "{topology} #{k} {rung}: ordered plan differs at 1 vs 4 threads"
                );
            }
        }
    }
}
