//! Governor escalation must be deterministic across parallelism.
//!
//! The governor polls budgets at DP level barriers, and the barrier
//! counter ticks only on the coordinating thread — twice per level —
//! so an injected budget schedule keyed on barrier numbers trips at
//! the *same logical point* whether the level ran sequentially or
//! sharded across workers. Combined with the enumerator's
//! determinism-by-rollback (a failed level's partial memo additions
//! are pruned before the descent), a governed run with the same fault
//! schedule must land on the same rung, take the same descent
//! sequence, and return the bit-identical plan at 1 thread and at 4.

use proptest::prelude::*;
use sdp::prelude::*;
use sdp_testkit::FaultPlan;
use std::time::Duration;

/// One governed run at a fixed parallelism. Returns everything a
/// caller could observe: rung, descent events, plan digest, cost bits.
#[allow(clippy::type_complexity)]
fn governed_run(
    catalog: &Catalog,
    query: &Query,
    threads: usize,
    schedule: &[(u64, u64)],
) -> (Option<Rung>, Vec<(Rung, Rung, DegradeReason)>, u64, u64) {
    let mut faults = FaultPlan::new();
    for &(barrier, bytes) in schedule {
        faults = faults.shrink_memory_at(barrier, bytes);
    }
    let governor = Governor::new().with_fault_plan(faults);
    let governed = Optimizer::new(catalog)
        .with_parallelism(threads)
        .optimize_governed(query, Algorithm::Dp, &governor)
        .expect("governed run must land on a feasible rung");
    (
        governed.rung,
        governed
            .degradations
            .iter()
            .map(|d| (d.from, d.to, d.reason))
            .collect(),
        governed.plan.root.structural_digest(),
        governed.plan.cost.to_bits(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same injected budget schedule → same rung, same descent
    /// sequence, bit-identical plan — independent of parallelism.
    /// Star-12+ crosses the enumerator's parallel-pair threshold, so
    /// the 4-thread run really exercises the sharded level path.
    #[test]
    fn escalation_is_parallelism_invariant(
        relations in 12usize..14,
        seed in 0u64..100,
        // Which barrier the shrink hits decides how deep the descent
        // goes; 0 disables injection (no degradation either way).
        trip_barrier in 0u64..4,
    ) {
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, Topology::Star(relations), seed).instance(0);
        let schedule: Vec<(u64, u64)> = if trip_barrier == 0 {
            vec![]
        } else {
            // Starve every rung's first barriers so the descent is
            // forced deterministically regardless of actual usage.
            (1..=trip_barrier).map(|b| (b, 0)).collect()
        };
        let sequential = governed_run(&catalog, &query, 1, &schedule);
        let parallel = governed_run(&catalog, &query, 4, &schedule);
        prop_assert_eq!(&sequential, &parallel, "1-thread vs 4-thread governed runs diverged");
        if trip_barrier == 0 {
            prop_assert_eq!(sequential.0, Some(Rung::Dp));
            prop_assert!(sequential.1.is_empty());
        } else {
            prop_assert!(!sequential.1.is_empty(), "injected starvation must degrade");
        }
    }
}

#[test]
fn full_descent_is_parallelism_invariant() {
    // Starve DP, SDP and IDP at their first barriers: the run must
    // walk the whole ladder to GOO (which polls no barriers and runs
    // against the restored full budget) identically at 1 and 4
    // threads.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(13), 5).instance(0);
    let schedule = [(1u64, 0u64), (2, 0), (3, 0)];
    let sequential = governed_run(&catalog, &query, 1, &schedule);
    let parallel = governed_run(&catalog, &query, 4, &schedule);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential.0, Some(Rung::Goo));
    assert_eq!(
        sequential.1,
        vec![
            (Rung::Dp, Rung::Sdp, DegradeReason::Memory),
            (Rung::Sdp, Rung::Idp, DegradeReason::Memory),
            (Rung::Idp, Rung::Goo, DegradeReason::Memory),
        ]
    );
}

#[test]
fn cancellation_descent_is_parallelism_invariant() {
    // A cancel flag raised before the run starts is observed at the
    // first poll on every path: both parallelism levels jump straight
    // to GOO with a single Cancelled descent.
    let catalog = Catalog::paper();
    let query = QueryGenerator::new(&catalog, Topology::Star(12), 3).instance(0);
    let mut outcomes = Vec::new();
    for threads in [1usize, 4] {
        let governor = Governor::new().with_deadline(Duration::from_secs(300));
        governor.cancel_handle().cancel();
        let governed = Optimizer::new(&catalog)
            .with_parallelism(threads)
            .optimize_governed(&query, Algorithm::Dp, &governor)
            .unwrap();
        assert_eq!(governed.rung, Some(Rung::Goo));
        assert_eq!(governed.reason(), Some(DegradeReason::Cancelled));
        outcomes.push((
            governed.plan.root.structural_digest(),
            governed.plan.cost.to_bits(),
        ));
    }
    assert_eq!(outcomes[0], outcomes[1]);
}
