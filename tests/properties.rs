//! Property-based integration tests over randomized topologies,
//! seeds and configurations.

use proptest::prelude::*;
use sdp::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (4usize..9).prop_map(Topology::Chain),
        (4usize..9).prop_map(Topology::Star),
        (4usize..9).prop_map(Topology::Cycle),
        (4usize..7).prop_map(Topology::Clique),
        (5usize..10).prop_map(Topology::star_chain),
    ]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Dp),
        (2usize..8).prop_map(|k| Algorithm::Idp { k }),
        Just(Algorithm::Sdp(SdpConfig::paper())),
        Just(Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::ParentHub,
            skyline: SkylineOption::PairwiseUnion,
        })),
        Just(Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::Global,
            skyline: SkylineOption::FullVector,
        })),
        (2usize..4).prop_map(|k| Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::RootHub,
            skyline: SkylineOption::KDominant(k),
        })),
        Just(Algorithm::Goo),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (topology, seed, algorithm, orderedness) combination yields
    /// a structurally valid complete plan with sane statistics.
    #[test]
    fn optimizer_total_function(
        topo in arb_topology(),
        seed in 0u64..1000,
        alg in arb_algorithm(),
        ordered in any::<bool>(),
    ) {
        let catalog = Catalog::paper();
        let generator = QueryGenerator::new(&catalog, topo, seed);
        let query = if ordered {
            generator.ordered_instance(0)
        } else {
            generator.instance(0)
        };
        let plan = Optimizer::new(&catalog).optimize(&query, alg).unwrap();
        prop_assert_eq!(plan.root.set, query.graph.all_nodes());
        plan.root.check_invariants().unwrap();
        prop_assert!(plan.cost.is_finite() && plan.cost > 0.0);
        prop_assert!(plan.rows >= 1.0);
        prop_assert!(plan.stats.plans_costed > 0);
    }

    /// Heuristics never undercut the DP optimum (they search a subset
    /// of DP's space under the same cost model).
    #[test]
    fn dp_is_a_lower_bound(
        topo in arb_topology(),
        seed in 0u64..500,
        alg in arb_algorithm(),
    ) {
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let optimizer = Optimizer::new(&catalog);
        let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        let other = optimizer.optimize(&query, alg).unwrap();
        prop_assert!(
            other.cost >= dp.cost * (1.0 - 1e-9),
            "{} found {} below DP's {}", alg.label(), other.cost, dp.cost
        );
    }

    /// All algorithms agree on the estimated cardinality of the full
    /// result — estimates are a property of the query, not the plan.
    #[test]
    fn result_cardinality_is_plan_independent(
        topo in arb_topology(),
        seed in 0u64..500,
        alg in arb_algorithm(),
    ) {
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let optimizer = Optimizer::new(&catalog);
        let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        let other = optimizer.optimize(&query, alg).unwrap();
        let rel = (dp.rows - other.rows).abs() / dp.rows.max(1.0);
        prop_assert!(rel < 1e-6, "rows {} vs {}", dp.rows, other.rows);
    }

    /// Parallel enumeration is invisible: for any topology, seed and
    /// enumeration algorithm, running with 1 worker thread and with
    /// several produces the identical chosen plan — bit-identical
    /// cost and the same join order — and identical effort counters.
    #[test]
    fn parallelism_is_deterministic(
        topo in prop_oneof![
            (5usize..10).prop_map(Topology::Star),
            (5usize..9).prop_map(Topology::Chain),
            (6usize..11).prop_map(Topology::star_chain),
        ],
        seed in 0u64..500,
        alg in prop_oneof![
            Just(Algorithm::Dp),
            Just(Algorithm::Sdp(SdpConfig::paper())),
            (3usize..6).prop_map(|k| Algorithm::Idp { k }),
        ],
        threads in 2usize..5,
    ) {
        fn join_order(p: &sdp::core::PlanNode, out: &mut Vec<(Vec<usize>, String)>) {
            out.push((p.set.iter().collect(), format!("{:?}", p.op)));
            for c in &p.children {
                join_order(c, out);
            }
        }
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let run = |n: usize| {
            Optimizer::new(&catalog)
                .with_parallelism(n)
                .optimize(&query, alg)
                .unwrap()
        };
        let (seq, par) = (run(1), run(threads));
        prop_assert_eq!(seq.cost.to_bits(), par.cost.to_bits());
        prop_assert_eq!(seq.stats.plans_costed, par.stats.plans_costed);
        prop_assert_eq!(seq.stats.jcrs_processed, par.stats.jcrs_processed);
        prop_assert_eq!(seq.stats.jcrs_pruned, par.stats.jcrs_pruned);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        join_order(&seq.root, &mut a);
        join_order(&par.root, &mut b);
        prop_assert_eq!(a, b, "join order differs at {} threads", threads);
    }

    /// Chains and cycles are never pruned by paper-config SDP,
    /// whatever the seed.
    #[test]
    fn no_pruning_without_hubs(n in 4usize..10, seed in 0u64..500, cycle in any::<bool>()) {
        let catalog = Catalog::paper();
        let topo = if cycle { Topology::Cycle(n) } else { Topology::Chain(n) };
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let plan = Optimizer::new(&catalog)
            .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();
        prop_assert_eq!(plan.stats.jcrs_pruned, 0);
    }
}
