//! Property-based integration tests over randomized topologies,
//! seeds and configurations.

use proptest::prelude::*;
use sdp::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (4usize..9).prop_map(Topology::Chain),
        (4usize..9).prop_map(Topology::Star),
        (4usize..9).prop_map(Topology::Cycle),
        (4usize..7).prop_map(Topology::Clique),
        (5usize..10).prop_map(Topology::star_chain),
    ]
}

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop_oneof![
        Just(Algorithm::Dp),
        (2usize..8).prop_map(|k| Algorithm::Idp { k }),
        Just(Algorithm::Sdp(SdpConfig::paper())),
        Just(Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::ParentHub,
            skyline: SkylineOption::PairwiseUnion,
        })),
        Just(Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::Global,
            skyline: SkylineOption::FullVector,
        })),
        (2usize..4).prop_map(|k| Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::RootHub,
            skyline: SkylineOption::KDominant(k),
        })),
        Just(Algorithm::Goo),
    ]
}

/// Raw material for a random connected join graph of `n ≤ 12` nodes:
/// a relation-shuffle seed, spanning-tree parent choices (node `i + 1`
/// attaches to `parents[i] % (i + 1)`), and extra edge candidates.
#[allow(clippy::type_complexity)]
fn arb_connected_graph_parts() -> impl Strategy<Value = (usize, u64, Vec<u64>, Vec<(u64, u64)>)> {
    (
        4usize..=12,
        any::<u64>(),
        prop::collection::vec(any::<u64>(), 11usize),
        prop::collection::vec((any::<u64>(), any::<u64>()), 0usize..=12),
    )
}

/// Materialize the parts into a query: `n` distinct paper-catalog
/// relations (seeded shuffle), a spanning tree, then deduplicated
/// extra edges. Each edge endpoint takes the node's next unused column
/// (the paper catalog has 24 per relation, more than any node's
/// possible degree here), so no join columns are accidentally shared.
fn random_connected_query(
    n: usize,
    rel_seed: u64,
    parents: &[u64],
    extras: &[(u64, u64)],
) -> Query {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rels: Vec<usize> = (0..25).collect();
    rels.shuffle(&mut rand::rngs::StdRng::seed_from_u64(rel_seed));
    let bindings: Vec<RelId> = rels[..n].iter().map(|&r| RelId(r as u32)).collect();
    let mut col_next = vec![0u16; n];
    let mut seen = std::collections::HashSet::new();
    let mut edges = Vec::new();
    let add = |u: usize, v: usize, col_next: &mut Vec<u16>, edges: &mut Vec<JoinEdge>| {
        let (cu, cv) = (col_next[u], col_next[v]);
        col_next[u] += 1;
        col_next[v] += 1;
        edges.push(JoinEdge::new(
            ColRef::new(u, ColId(cu)),
            ColRef::new(v, ColId(cv)),
        ));
    };
    for (i, &p) in parents.iter().enumerate() {
        let (u, v) = ((p as usize) % (i + 1), i + 1);
        seen.insert((u.min(v), u.max(v)));
        add(u, v, &mut col_next, &mut edges);
    }
    for &(a, b) in extras {
        let (u, v) = ((a as usize) % n, (b as usize) % n);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            add(u, v, &mut col_next, &mut edges);
        }
    }
    Query::new(JoinGraph::new(bindings, edges))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any (topology, seed, algorithm, orderedness) combination yields
    /// a structurally valid complete plan with sane statistics.
    #[test]
    fn optimizer_total_function(
        topo in arb_topology(),
        seed in 0u64..1000,
        alg in arb_algorithm(),
        ordered in any::<bool>(),
    ) {
        let catalog = Catalog::paper();
        let generator = QueryGenerator::new(&catalog, topo, seed);
        let query = if ordered {
            generator.ordered_instance(0)
        } else {
            generator.instance(0)
        };
        let plan = Optimizer::new(&catalog).optimize(&query, alg).unwrap();
        prop_assert_eq!(plan.root.set, query.graph.all_nodes());
        plan.root.check_invariants().unwrap();
        prop_assert!(plan.cost.is_finite() && plan.cost > 0.0);
        prop_assert!(plan.rows >= 1.0);
        prop_assert!(plan.stats.plans_costed > 0);
    }

    /// Heuristics never undercut the DP optimum (they search a subset
    /// of DP's space under the same cost model).
    #[test]
    fn dp_is_a_lower_bound(
        topo in arb_topology(),
        seed in 0u64..500,
        alg in arb_algorithm(),
    ) {
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let optimizer = Optimizer::new(&catalog);
        let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        let other = optimizer.optimize(&query, alg).unwrap();
        prop_assert!(
            other.cost >= dp.cost * (1.0 - 1e-9),
            "{} found {} below DP's {}", alg.label(), other.cost, dp.cost
        );
    }

    /// All algorithms agree on the estimated cardinality of the full
    /// result — estimates are a property of the query, not the plan.
    #[test]
    fn result_cardinality_is_plan_independent(
        topo in arb_topology(),
        seed in 0u64..500,
        alg in arb_algorithm(),
    ) {
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let optimizer = Optimizer::new(&catalog);
        let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        let other = optimizer.optimize(&query, alg).unwrap();
        let rel = (dp.rows - other.rows).abs() / dp.rows.max(1.0);
        prop_assert!(rel < 1e-6, "rows {} vs {}", dp.rows, other.rows);
    }

    /// Parallel enumeration is invisible: for any topology, seed and
    /// enumeration algorithm, running with 1 worker thread and with
    /// several produces the identical chosen plan — bit-identical
    /// cost and the same join order — and identical effort counters.
    #[test]
    fn parallelism_is_deterministic(
        topo in prop_oneof![
            (5usize..10).prop_map(Topology::Star),
            (5usize..9).prop_map(Topology::Chain),
            (6usize..11).prop_map(Topology::star_chain),
        ],
        seed in 0u64..500,
        alg in prop_oneof![
            Just(Algorithm::Dp),
            Just(Algorithm::Sdp(SdpConfig::paper())),
            (3usize..6).prop_map(|k| Algorithm::Idp { k }),
        ],
        threads in 2usize..5,
    ) {
        fn join_order(p: &sdp::core::PlanNode, out: &mut Vec<(Vec<usize>, String)>) {
            out.push((p.set.iter().collect(), format!("{:?}", p.op)));
            for c in &p.children {
                join_order(c, out);
            }
        }
        let catalog = Catalog::paper();
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let run = |n: usize| {
            Optimizer::new(&catalog)
                .with_parallelism(n)
                .optimize(&query, alg)
                .unwrap()
        };
        let (seq, par) = (run(1), run(threads));
        prop_assert_eq!(seq.cost.to_bits(), par.cost.to_bits());
        prop_assert_eq!(seq.stats.plans_costed, par.stats.plans_costed);
        prop_assert_eq!(seq.stats.jcrs_processed, par.stats.jcrs_processed);
        prop_assert_eq!(seq.stats.jcrs_pruned, par.stats.jcrs_pruned);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        join_order(&seq.root, &mut a);
        join_order(&par.root, &mut b);
        prop_assert_eq!(a, b, "join order differs at {} threads", threads);
    }

    /// On arbitrary connected join graphs (not just the named
    /// topologies): DPccp emits the same multiset of joinable
    /// (csg, cmp) pairs as the level scan at every level of the
    /// exhaustive table, and both strategies produce bit-identical
    /// optimal plans under DP and under SDP.
    #[test]
    fn dpccp_equals_levelscan_on_random_graphs(
        (n, rel_seed, parents, extras) in arb_connected_graph_parts(),
    ) {
        use sdp::core::dp::run_levels_with;
        use sdp::core::enumerate::normalized_pair_multiset;
        use sdp::core::{EnumContext, LevelScan, PairEnumerator};

        let extras: Vec<(u64, u64)> = extras.into_iter().take(n).collect();
        let query = random_connected_query(n, rel_seed, &parents[..n - 1], &extras);
        let catalog = Catalog::paper();
        prop_assert!(query.graph.is_connected(query.graph.all_nodes()));

        // Pair streams over the exhaustive survivor table.
        let model = CostModel::with_defaults(&catalog);
        let mut ctx = EnumContext::new(&query, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        for i in 0..n {
            ctx.ensure_base_group(i);
        }
        let atoms: Vec<RelSet> = (0..n).map(RelSet::single).collect();
        let mut scan = LevelScan;
        let table = run_levels_with(&mut ctx, &atoms, n, None, &mut scan).unwrap();
        let mut ccp = EnumeratorKind::Dpccp.build();
        ccp.prepare(&ctx, &atoms, n);
        for s in 2..=n {
            let a = normalized_pair_multiset(&scan.level_pairs(&ctx, &table, s));
            let b = normalized_pair_multiset(&ccp.level_pairs(&ctx, &table, s));
            prop_assert_eq!(a, b, "pair multiset diverges at level {}", s);
        }

        // Bit-identical chosen plans, end to end.
        for alg in [Algorithm::Dp, Algorithm::Sdp(SdpConfig::paper())] {
            let run = |kind: EnumeratorKind| {
                Optimizer::new(&catalog)
                    .with_enumerator(kind)
                    .optimize(&query, alg)
                    .unwrap()
            };
            let (scan, ccp) = (run(EnumeratorKind::LevelScan), run(EnumeratorKind::Dpccp));
            prop_assert_eq!(scan.cost.to_bits(), ccp.cost.to_bits(), "{}", alg.label());
            prop_assert_eq!(scan.rows.to_bits(), ccp.rows.to_bits(), "{}", alg.label());
            prop_assert_eq!(scan.stats.plans_costed, ccp.stats.plans_costed, "{}", alg.label());
            prop_assert_eq!(scan.stats.jcrs_processed, ccp.stats.jcrs_processed, "{}", alg.label());
        }
    }

    /// Chains and cycles are never pruned by paper-config SDP,
    /// whatever the seed.
    #[test]
    fn no_pruning_without_hubs(n in 4usize..10, seed in 0u64..500, cycle in any::<bool>()) {
        let catalog = Catalog::paper();
        let topo = if cycle { Topology::Cycle(n) } else { Topology::Chain(n) };
        let query = QueryGenerator::new(&catalog, topo, seed).instance(0);
        let plan = Optimizer::new(&catalog)
            .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();
        prop_assert_eq!(plan.stats.jcrs_pruned, 0);
    }
}
