//! Differential correctness suite for the degradation ladder.
//!
//! Every rung of the governor's ladder (DP → SDP → IDP(4) → GOO) is a
//! *different search strategy over the same plan space*: whatever rung
//! a degraded request lands on, the plan it returns must compute the
//! same answer as the exhaustive-DP plan, and its estimated cost can
//! only be worse (DP is optimal under the shared cost model).
//!
//! The suite generates ~50 queries per topology (star, chain,
//! star-chain) with `sdp_query`'s workload generator, executes the DP
//! plan and each rung's plan on materialized synthetic data through
//! `sdp-engine`, and asserts:
//!
//! 1. identical result multisets (sorted-row equality) across rungs;
//! 2. estimated cost non-decreasing down the ladder, anchored at DP:
//!    no rung's plan undercuts the DP optimum. (The heuristic rungs
//!    are *not* totally ordered among themselves — GOO occasionally
//!    beats IDP(4) on a particular instance because they explore
//!    incomparable plan subspaces — so the sound monotonicity claim
//!    is against the exhaustive optimum, not pairwise down the
//!    ladder.)

use sdp::prelude::*;

/// Queries generated per topology.
const QUERIES_PER_TOPOLOGY: u64 = 50;

/// Floating-point slack for cost comparisons: the enumerators share
/// one cost model, but tie-breaking can differ in the last ulps.
const EPS: f64 = 1.0 - 1e-9;

fn scaled_world() -> (Catalog, Database) {
    // Small row counts keep 600 plan executions affordable in debug
    // builds while still exercising multi-way joins for real.
    let catalog = scaled_catalog(10, 400, 3);
    let db = Database::generate(&catalog, 5);
    (catalog, db)
}

fn ladder() -> Vec<(Rung, Algorithm)> {
    sdp::core::LADDER
        .iter()
        .map(|&rung| (rung, rung.algorithm()))
        .collect()
}

fn assert_ladder_differential(topology: Topology, generator_seed: u64) {
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    let generator = QueryGenerator::new(&catalog, topology, generator_seed);

    for k in 0..QUERIES_PER_TOPOLOGY {
        let query = generator.instance(k);
        let mut reference: Option<Vec<Vec<i64>>> = None;
        let mut dp_cost = 0.0f64;
        for (rung, algorithm) in ladder() {
            let plan = optimizer
                .optimize(&query, algorithm)
                .unwrap_or_else(|e| panic!("{topology} #{k} {rung}: {e}"));

            // Correctness: every rung computes the DP answer.
            let mut rows = execute(&plan.root, &query, &catalog, &db)
                .unwrap_or_else(|e| panic!("{topology} #{k} {rung}: execution failed: {e}"));
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(
                    r, &rows,
                    "{topology} #{k}: {rung} plan computes a different result than DP"
                ),
            }

            // Cost monotonicity down the ladder, anchored at DP: the
            // first rung is the exhaustive optimum, and no cheaper
            // strategy may undercut it.
            if rung == Rung::Dp {
                dp_cost = plan.cost;
            }
            assert!(
                plan.cost >= dp_cost * EPS,
                "{topology} #{k}: {rung} cost {} undercuts the DP optimum ({})",
                plan.cost,
                dp_cost
            );
        }
    }
}

#[test]
fn star_queries_agree_across_the_ladder() {
    assert_ladder_differential(Topology::Star(5), 0xD1F);
}

#[test]
fn chain_queries_agree_across_the_ladder() {
    assert_ladder_differential(Topology::Chain(5), 0xD1F);
}

#[test]
fn star_chain_queries_agree_across_the_ladder() {
    assert_ladder_differential(Topology::star_chain(6), 0xD1F);
}

#[test]
fn governed_degraded_plans_stay_differentially_correct() {
    // The acceptance-shaped variant: run the *governor* under memory
    // pressure so the plan really comes from a degraded rung, then
    // check that degraded plan against the ungoverned DP answer.
    let (catalog, db) = scaled_world();
    let optimizer = Optimizer::new(&catalog);
    let generator = QueryGenerator::new(&catalog, Topology::star_chain(7), 0xBEEF);
    let mut degraded_seen = 0u32;
    for k in 0..8 {
        let query = generator.instance(k);
        let dp = optimizer.optimize(&query, Algorithm::Dp).unwrap();
        let mut dp_rows = execute(&dp.root, &query, &catalog, &db).unwrap();
        dp_rows.sort();

        // A tight memory budget forces at least some of these runs
        // off the DP rung.
        let governor = Governor::new().with_memory_budget(192 << 10);
        let governed = optimizer
            .optimize_governed(&query, Algorithm::Dp, &governor)
            .unwrap();
        if governed.degraded() {
            degraded_seen += 1;
        }
        let mut rows = execute(&governed.plan.root, &query, &catalog, &db).unwrap();
        rows.sort();
        assert_eq!(
            dp_rows,
            rows,
            "query #{k}: governed {} plan disagrees with DP",
            governed.rung_label()
        );
        assert!(
            governed.plan.cost >= dp.cost * EPS,
            "query #{k}: degraded plan cheaper than the DP optimum"
        );
    }
    assert!(
        degraded_seen > 0,
        "memory budget never forced a degradation; the test lost its teeth"
    );
}
