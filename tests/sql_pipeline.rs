//! SQL front-end integration: text → parse → bind → optimize →
//! execute, and the render/parse round trip across the whole
//! generator space.

use proptest::prelude::*;
use sdp::prelude::*;

#[test]
fn sql_text_pipeline_matches_programmatic_queries() {
    // A query built by hand through SQL must optimize identically to
    // the same query built programmatically.
    let catalog = Catalog::paper();
    let programmatic = {
        let edges = vec![
            JoinEdge::new(ColRef::new(0, ColId(0)), ColRef::new(1, ColId(2))),
            JoinEdge::new(ColRef::new(0, ColId(1)), ColRef::new(2, ColId(5))),
        ];
        Query::new(JoinGraph::new(vec![RelId(24), RelId(3), RelId(7)], edges))
    };
    let sql = "SELECT * FROM R24 t0, R3 t1, R7 t2 WHERE t0.c0 = t1.c2 AND t0.c1 = t2.c5";
    let parsed = parse_query(&catalog, sql).unwrap();

    let optimizer = Optimizer::new(&catalog);
    let a = optimizer.optimize(&programmatic, Algorithm::Dp).unwrap();
    let b = optimizer.optimize(&parsed, Algorithm::Dp).unwrap();
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.rows, b.rows);
}

#[test]
fn sql_queries_execute_on_scaled_data() {
    let catalog = scaled_catalog(8, 500, 3);
    let db = Database::generate(&catalog, 9);
    // Scaled catalog names follow the same R<i> convention.
    let sql = "SELECT * FROM R6 a, R7 b WHERE a.c0 = b.c1 AND a.c2 < 100 ORDER BY b.c1";
    let query = parse_query(&catalog, sql).unwrap();
    let plan = Optimizer::new(&catalog)
        .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
        .unwrap();
    let rows = execute(&plan.root, &query, &catalog, &db).unwrap();
    // Filter respected.
    let c2 = 2; // node 0 columns come first in canonical layout
    for row in &rows {
        assert!(row[c2] < 100);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generator-produced query survives the SQL round trip with
    /// its structure intact, across topologies, seeds, filters and
    /// ordered variants.
    #[test]
    fn render_parse_round_trip(
        topo_kind in 0usize..5,
        n in 4usize..10,
        seed in 0u64..10_000,
        filters in any::<bool>(),
        ordered in any::<bool>(),
    ) {
        let catalog = Catalog::paper();
        let topo = match topo_kind {
            0 => Topology::Chain(n),
            1 => Topology::Star(n),
            2 => Topology::Cycle(n),
            3 => Topology::Clique(n.min(7)),
            _ => Topology::star_chain(n.max(5)),
        };
        let gen = QueryGenerator::new(&catalog, topo, seed)
            .with_filter_probability(if filters { 0.7 } else { 0.0 });
        let original = if ordered {
            gen.ordered_instance(0)
        } else {
            gen.instance(0)
        };
        let sql = render_sql(&catalog, &original);
        let parsed = parse_query(&catalog, &sql).unwrap();
        prop_assert_eq!(parsed.graph.relations(), original.graph.relations());
        prop_assert_eq!(parsed.graph.edges(), original.graph.edges());
        prop_assert_eq!(parsed.graph.filters(), original.graph.filters());
        prop_assert_eq!(parsed.order_by, original.order_by);
    }

    /// Optimizing the rendered SQL gives the identical plan cost.
    #[test]
    fn round_trip_preserves_plan_costs(seed in 0u64..1000) {
        let catalog = Catalog::paper();
        let original = QueryGenerator::new(&catalog, Topology::star_chain(7), seed)
            .with_filter_probability(0.5)
            .instance(0);
        let parsed = parse_query(&catalog, &render_sql(&catalog, &original)).unwrap();
        let optimizer = Optimizer::new(&catalog);
        let a = optimizer
            .optimize(&original, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();
        let b = optimizer
            .optimize(&parsed, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();
        prop_assert_eq!(a.cost, b.cost);
    }
}
