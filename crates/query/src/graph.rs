//! The join graph: nodes bound to catalog relations, edges carrying
//! equi-join predicates.

use sdp_catalog::{ColId, RelId};

use crate::relset::RelSet;

/// A reference to a column of a query node: `(node index, column)`.
///
/// Node indices are query-local (0-based positions in the join graph),
/// not catalog relation ids — the same catalog relation may in
/// principle appear under several aliases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColRef {
    /// Query-local node index.
    pub node: usize,
    /// Column within that node's relation.
    pub col: ColId,
}

impl ColRef {
    /// Construct a column reference.
    pub fn new(node: usize, col: ColId) -> Self {
        ColRef { node, col }
    }
}

/// An equi-join predicate `left = right` between two column
/// references on distinct nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JoinEdge {
    /// One side of the equality.
    pub left: ColRef,
    /// The other side.
    pub right: ColRef,
}

impl JoinEdge {
    /// Construct an edge; sides are normalized so `left.node <
    /// right.node`, making edge identity canonical.
    pub fn new(a: ColRef, b: ColRef) -> Self {
        assert_ne!(a.node, b.node, "join edge must connect distinct nodes");
        if a.node < b.node {
            JoinEdge { left: a, right: b }
        } else {
            JoinEdge { left: b, right: a }
        }
    }

    /// The two nodes as a set.
    pub fn node_set(&self) -> RelSet {
        RelSet::single(self.left.node) | RelSet::single(self.right.node)
    }

    /// Whether this edge crosses the boundary between `a` and `b`
    /// (one endpoint in each).
    pub fn crosses(&self, a: RelSet, b: RelSet) -> bool {
        (a.contains(self.left.node) && b.contains(self.right.node))
            || (a.contains(self.right.node) && b.contains(self.left.node))
    }

    /// Whether both endpoints lie within `set`.
    pub fn within(&self, set: RelSet) -> bool {
        set.contains(self.left.node) && set.contains(self.right.node)
    }
}

/// An undirected join graph over `n` query nodes.
///
/// Stores, besides the edge list, a per-node adjacency bitset for O(1)
/// connectivity tests — the hot operation of every enumerator.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinGraph {
    /// For each node, the catalog relation it binds to.
    relations: Vec<RelId>,
    /// Equi-join predicates.
    edges: Vec<JoinEdge>,
    /// `adjacency[i]` = set of nodes sharing an edge with node `i`.
    adjacency: Vec<RelSet>,
    /// Local selection predicates, pushed into scans by the
    /// enumerators.
    filters: Vec<crate::predicate::Predicate>,
}

impl JoinGraph {
    /// Build a graph from relation bindings and edges.
    ///
    /// # Panics
    /// Panics if an edge references a node out of range or if there
    /// are more than [`RelSet::MAX_RELATIONS`] nodes.
    pub fn new(relations: Vec<RelId>, edges: Vec<JoinEdge>) -> Self {
        let n = relations.len();
        assert!(
            n <= RelSet::MAX_RELATIONS,
            "at most {} relations supported",
            RelSet::MAX_RELATIONS
        );
        let mut adjacency = vec![RelSet::EMPTY; n];
        for e in &edges {
            assert!(e.left.node < n && e.right.node < n, "edge out of range");
            adjacency[e.left.node] = adjacency[e.left.node].insert(e.right.node);
            adjacency[e.right.node] = adjacency[e.right.node].insert(e.left.node);
        }
        JoinGraph {
            relations,
            edges,
            adjacency,
            filters: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// The set of all nodes.
    pub fn all_nodes(&self) -> RelSet {
        RelSet::first_n(self.len())
    }

    /// Catalog relation bound to `node`.
    pub fn relation(&self, node: usize) -> RelId {
        self.relations[node]
    }

    /// All relation bindings, by node index.
    pub fn relations(&self) -> &[RelId] {
        &self.relations
    }

    /// All join edges.
    pub fn edges(&self) -> &[JoinEdge] {
        &self.edges
    }

    /// Adjacency set of a single node.
    pub fn adjacent(&self, node: usize) -> RelSet {
        self.adjacency[node]
    }

    /// Union of the adjacency sets of `set`'s members, minus `set`
    /// itself: the external neighbourhood of a composite.
    pub fn neighbors(&self, set: RelSet) -> RelSet {
        let mut out = RelSet::EMPTY;
        for i in set.iter() {
            out = out | self.adjacency[i];
        }
        out - set
    }

    /// Degree of a composite: the number of distinct external
    /// neighbour nodes. A composite with degree ≥ 3 is a *hub* in the
    /// paper's terminology.
    pub fn degree(&self, set: RelSet) -> usize {
        self.neighbors(set).len()
    }

    /// Whether two disjoint sets are connected by at least one edge.
    #[inline]
    pub fn sets_connected(&self, a: RelSet, b: RelSet) -> bool {
        self.neighbors(a).intersects(b)
    }

    /// Whether the induced subgraph on `set` is connected.
    pub fn is_connected(&self, set: RelSet) -> bool {
        let Some(start) = set.min_index() else {
            return false;
        };
        let mut reached = RelSet::single(start);
        loop {
            let frontier = self.neighbors(reached) & set;
            if frontier.is_empty() {
                break;
            }
            reached = reached | frontier;
        }
        reached == set
    }

    /// Edges crossing between disjoint `a` and `b`.
    pub fn crossing_edges(&self, a: RelSet, b: RelSet) -> impl Iterator<Item = &JoinEdge> {
        self.edges.iter().filter(move |e| e.crosses(a, b))
    }

    /// Edges entirely inside `set`.
    pub fn internal_edges(&self, set: RelSet) -> impl Iterator<Item = &JoinEdge> {
        self.edges.iter().filter(move |e| e.within(set))
    }

    /// Attach a local selection predicate.
    ///
    /// # Panics
    /// Panics if the predicate references a node out of range.
    pub fn add_filter(&mut self, filter: crate::predicate::Predicate) {
        assert!(filter.column.node < self.len(), "filter out of range");
        self.filters.push(filter);
    }

    /// All selection predicates.
    pub fn filters(&self) -> &[crate::predicate::Predicate] {
        &self.filters
    }

    /// Selection predicates on one node.
    pub fn filters_on(&self, node: usize) -> impl Iterator<Item = &crate::predicate::Predicate> {
        self.filters.iter().filter(move |f| f.column.node == node)
    }

    /// Add an edge (used by the transitive-closure rewriter), updating
    /// adjacency. Duplicate edges are ignored.
    pub fn add_edge(&mut self, edge: JoinEdge) {
        assert!(
            edge.left.node < self.len() && edge.right.node < self.len(),
            "edge out of range"
        );
        if self.edges.contains(&edge) {
            return;
        }
        self.adjacency[edge.left.node] = self.adjacency[edge.left.node].insert(edge.right.node);
        self.adjacency[edge.right.node] = self.adjacency[edge.right.node].insert(edge.left.node);
        self.edges.push(edge);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0 - 1 - 2 - 3 on four distinct relations.
    fn chain4() -> JoinGraph {
        let rels = (0..4).map(RelId).collect();
        let edges = (0..3)
            .map(|i| JoinEdge::new(ColRef::new(i, ColId(0)), ColRef::new(i + 1, ColId(1))))
            .collect();
        JoinGraph::new(rels, edges)
    }

    /// Star with hub 0 and spokes 1..=4.
    fn star5() -> JoinGraph {
        let rels = (0..5).map(RelId).collect();
        let edges = (1..5)
            .map(|i| JoinEdge::new(ColRef::new(0, ColId(0)), ColRef::new(i, ColId(1))))
            .collect();
        JoinGraph::new(rels, edges)
    }

    #[test]
    fn edge_is_normalized() {
        let e = JoinEdge::new(ColRef::new(3, ColId(1)), ColRef::new(1, ColId(0)));
        assert_eq!(e.left.node, 1);
        assert_eq!(e.right.node, 3);
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn self_edge_rejected() {
        let _ = JoinEdge::new(ColRef::new(2, ColId(0)), ColRef::new(2, ColId(1)));
    }

    #[test]
    fn adjacency_and_neighbors() {
        let g = chain4();
        assert_eq!(g.adjacent(0), RelSet::single(1));
        assert_eq!(g.adjacent(1), RelSet::from_indices([0, 2]));
        let mid = RelSet::from_indices([1, 2]);
        assert_eq!(g.neighbors(mid), RelSet::from_indices([0, 3]));
    }

    #[test]
    fn degree_identifies_hubs() {
        let g = star5();
        assert_eq!(g.degree(RelSet::single(0)), 4); // hub
        assert_eq!(g.degree(RelSet::single(1)), 1); // spoke
                                                    // Composite hub: {0,1} still joins 2,3,4.
        assert_eq!(g.degree(RelSet::from_indices([0, 1])), 3);
    }

    #[test]
    fn connectivity_checks() {
        let g = chain4();
        assert!(g.is_connected(RelSet::from_indices([0, 1, 2])));
        assert!(!g.is_connected(RelSet::from_indices([0, 2]))); // gap at 1
        assert!(g.sets_connected(RelSet::single(0), RelSet::single(1)));
        assert!(!g.sets_connected(RelSet::single(0), RelSet::single(3)));
        assert!(!g.is_connected(RelSet::EMPTY));
    }

    #[test]
    fn crossing_and_internal_edges() {
        let g = chain4();
        let a = RelSet::from_indices([0, 1]);
        let b = RelSet::from_indices([2, 3]);
        assert_eq!(g.crossing_edges(a, b).count(), 1);
        assert_eq!(g.internal_edges(a).count(), 1);
        assert_eq!(g.internal_edges(g.all_nodes()).count(), 3);
    }

    #[test]
    fn add_edge_deduplicates() {
        let mut g = chain4();
        let e = JoinEdge::new(ColRef::new(0, ColId(0)), ColRef::new(3, ColId(2)));
        g.add_edge(e);
        g.add_edge(e);
        assert_eq!(g.edges().len(), 4);
        assert!(g.sets_connected(RelSet::single(0), RelSet::single(3)));
    }

    #[test]
    fn filters_attach_and_filter_by_node() {
        use crate::predicate::{PredOp, Predicate};
        let mut g = chain4();
        g.add_filter(Predicate::new(ColRef::new(1, ColId(5)), PredOp::Lt, 50));
        g.add_filter(Predicate::new(ColRef::new(1, ColId(6)), PredOp::Eq, 7));
        g.add_filter(Predicate::new(ColRef::new(3, ColId(0)), PredOp::Ge, 1));
        assert_eq!(g.filters().len(), 3);
        assert_eq!(g.filters_on(1).count(), 2);
        assert_eq!(g.filters_on(0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "filter out of range")]
    fn out_of_range_filter_rejected() {
        use crate::predicate::{PredOp, Predicate};
        let mut g = chain4();
        g.add_filter(Predicate::new(ColRef::new(9, ColId(0)), PredOp::Eq, 0));
    }

    #[test]
    fn all_nodes_matches_len() {
        let g = star5();
        assert_eq!(g.all_nodes().len(), 5);
        assert_eq!(g.len(), 5);
        assert!(!g.is_empty());
    }
}
