//! Join-graph topologies used in the paper's evaluation.
//!
//! The paper's representative results use **pure-star** and
//! **star-chain** graphs; chain graphs calibrate DP overheads
//! (Table 2.1), and the paper notes that results for other topologies
//! (cycle, clique, …) "are similar in flavor" — we provide those too.

use std::fmt;

/// A join-graph shape, parameterized by the number of relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topology {
    /// `R0 — R1 — … — R(n−1)`: each relation joins its left neighbour.
    Chain(usize),
    /// Hub `R0` star-joins every other relation.
    Star(usize),
    /// A chain closed into a ring.
    Cycle(usize),
    /// Every pair of relations joins.
    Clique(usize),
    /// The paper's Figure 1.1 shape: a hub star-joins `spokes`
    /// relations, and a chain of `n − spokes − 1` further relations
    /// hangs off the last spoke. For Star-Chain-15 the paper uses 10
    /// spokes (R2…R11) with R11…R15 chained.
    StarChain {
        /// Total number of relations.
        n: usize,
        /// Number of spoke relations directly joined to the hub
        /// (including the spoke that anchors the chain).
        spokes: usize,
    },
}

impl Topology {
    /// The paper's star-chain shape for `n` relations, keeping the
    /// 15-relation reference proportions (10 spokes : 4 chained) —
    /// `spokes = ceil(2 (n−1) / 3)`, which yields exactly 10 for
    /// n = 15.
    pub fn star_chain(n: usize) -> Self {
        assert!(n >= 3, "star-chain needs at least 3 relations");
        let spokes = 2 * (n - 1) / 3 + usize::from(!(2 * (n - 1)).is_multiple_of(3));
        Topology::StarChain { n, spokes }
    }

    /// Number of relations in the graph.
    pub fn n(&self) -> usize {
        match *self {
            Topology::Chain(n)
            | Topology::Star(n)
            | Topology::Cycle(n)
            | Topology::Clique(n)
            | Topology::StarChain { n, .. } => n,
        }
    }

    /// Edge list as pairs of node indices (canonical: `a < b`).
    pub fn edge_pairs(&self) -> Vec<(usize, usize)> {
        match *self {
            Topology::Chain(n) => {
                assert!(n >= 2, "chain needs at least 2 relations");
                (0..n - 1).map(|i| (i, i + 1)).collect()
            }
            Topology::Star(n) => {
                assert!(n >= 2, "star needs at least 2 relations");
                (1..n).map(|i| (0, i)).collect()
            }
            Topology::Cycle(n) => {
                assert!(n >= 3, "cycle needs at least 3 relations");
                let mut e: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                e.push((0, n - 1));
                e
            }
            Topology::Clique(n) => {
                assert!(n >= 2, "clique needs at least 2 relations");
                let mut e = Vec::with_capacity(n * (n - 1) / 2);
                for a in 0..n {
                    for b in a + 1..n {
                        e.push((a, b));
                    }
                }
                e
            }
            Topology::StarChain { n, spokes } => {
                assert!(
                    spokes >= 2 && spokes < n,
                    "star-chain needs 2 ≤ spokes < n (got spokes={spokes}, n={n})"
                );
                // Hub = 0, spokes = 1..=spokes, chain continues from
                // node `spokes` through n-1.
                let mut e: Vec<(usize, usize)> = (1..=spokes).map(|i| (0, i)).collect();
                for i in spokes..n - 1 {
                    e.push((i, i + 1));
                }
                e
            }
        }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_pairs().len()
    }

    /// Nodes that are hubs of this topology (degree ≥ 3).
    pub fn hub_nodes(&self) -> Vec<usize> {
        let n = self.n();
        let mut degree = vec![0usize; n];
        for (a, b) in self.edge_pairs() {
            degree[a] += 1;
            degree[b] += 1;
        }
        (0..n).filter(|&i| degree[i] >= 3).collect()
    }

    /// A short label used in experiment output, matching the paper's
    /// naming (e.g. `Star-Chain-15`).
    pub fn label(&self) -> String {
        match *self {
            Topology::Chain(n) => format!("Chain-{n}"),
            Topology::Star(n) => format!("Star-{n}"),
            Topology::Cycle(n) => format!("Cycle-{n}"),
            Topology::Clique(n) => format!("Clique-{n}"),
            Topology::StarChain { n, .. } => format!("Star-Chain-{n}"),
        }
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_edges() {
        let t = Topology::Chain(5);
        assert_eq!(t.edge_pairs(), vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert!(t.hub_nodes().is_empty());
    }

    #[test]
    fn star_edges_and_hub() {
        let t = Topology::Star(5);
        assert_eq!(t.edge_count(), 4);
        assert_eq!(t.hub_nodes(), vec![0]);
    }

    #[test]
    fn cycle_closes_the_ring() {
        let t = Topology::Cycle(4);
        assert_eq!(t.edge_count(), 4);
        assert!(t.hub_nodes().is_empty());
    }

    #[test]
    fn clique_has_all_pairs() {
        let t = Topology::Clique(5);
        assert_eq!(t.edge_count(), 10);
        assert_eq!(t.hub_nodes().len(), 5); // everyone has degree 4
    }

    #[test]
    fn star_chain_15_matches_paper_figure_1_1() {
        // Paper: R1 star-joins R2..R11 (10 spokes), R11..R15 chain.
        let t = Topology::star_chain(15);
        let Topology::StarChain { n, spokes } = t else {
            panic!("wrong variant")
        };
        assert_eq!(n, 15);
        assert_eq!(spokes, 10);
        // Hub has 10 edges; chain tail nodes have degree ≤ 2.
        assert_eq!(t.hub_nodes(), vec![0]);
        assert_eq!(t.edge_count(), 14); // tree: n - 1 edges
    }

    #[test]
    fn star_chain_scales_proportionally() {
        let t20 = Topology::star_chain(20);
        let t23 = Topology::star_chain(23);
        let spokes = |t: Topology| match t {
            Topology::StarChain { spokes, .. } => spokes,
            _ => unreachable!(),
        };
        assert_eq!(spokes(t20), 13);
        assert_eq!(spokes(t23), 15);
    }

    #[test]
    fn star_chain_connects_chain_to_last_spoke() {
        let t = Topology::StarChain { n: 8, spokes: 4 };
        let e = t.edge_pairs();
        // Chain hangs off node 4 (the last spoke).
        assert!(e.contains(&(4, 5)));
        assert!(e.contains(&(5, 6)));
        assert!(e.contains(&(6, 7)));
        assert_eq!(e.len(), 7);
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(Topology::star_chain(15).label(), "Star-Chain-15");
        assert_eq!(Topology::Star(23).label(), "Star-23");
        assert_eq!(Topology::Chain(28).to_string(), "Chain-28");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn degenerate_chain_rejected() {
        let _ = Topology::Chain(1).edge_pairs();
    }
}
