//! The query object handed to the optimizer: a join graph plus an
//! optional user-requested output order.

use crate::closure::EquivClasses;
use crate::graph::{ColRef, JoinGraph};

/// A user-requested output order (`ORDER BY` on a single column).
///
/// The paper's ordered query variants request "ordered output on a
/// randomly chosen join column" — only orders on join columns are
/// relevant to the optimizer's interesting-order machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OrderSpec {
    /// Column whose order is requested.
    pub column: ColRef,
}

/// An optimizable query: join graph, relation bindings, and optional
/// order requirement.
#[derive(Debug, Clone)]
pub struct Query {
    /// The join graph (after any rewriting).
    pub graph: JoinGraph,
    /// Optional `ORDER BY`.
    pub order_by: Option<OrderSpec>,
    /// Optional `GROUP BY`. Sort-based grouping makes a grouping
    /// column an interesting order exactly like `ORDER BY` does
    /// (Selinger's original observation); when both are present the
    /// explicit `ORDER BY` wins as the optimizer's order target.
    pub group_by: Option<OrderSpec>,
}

impl Query {
    /// Create an unordered query over a join graph.
    pub fn new(graph: JoinGraph) -> Self {
        Query {
            graph,
            order_by: None,
            group_by: None,
        }
    }

    /// Attach an `ORDER BY` on the given column.
    pub fn with_order_by(mut self, column: ColRef) -> Self {
        self.order_by = Some(OrderSpec { column });
        self
    }

    /// Attach a `GROUP BY` on the given column.
    pub fn with_group_by(mut self, column: ColRef) -> Self {
        self.group_by = Some(OrderSpec { column });
        self
    }

    /// The effective interesting order the optimizer should target:
    /// the `ORDER BY` column if present, else the `GROUP BY` column
    /// (sorted output is grouped output).
    pub fn interesting_order(&self) -> Option<OrderSpec> {
        self.order_by.or(self.group_by)
    }

    /// Number of relations joined.
    pub fn num_relations(&self) -> usize {
        self.graph.len()
    }

    /// Compute the join-column equivalence classes for this query.
    pub fn equiv_classes(&self) -> EquivClasses {
        EquivClasses::new(&self.graph)
    }

    /// Whether the requested order (if any) is on a join column — the
    /// only case the paper's interesting-order handling concerns
    /// itself with.
    pub fn order_on_join_column(&self) -> bool {
        match self.interesting_order() {
            None => false,
            Some(o) => self.equiv_classes().class_of(o.column).is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::JoinEdge;
    use sdp_catalog::{ColId, RelId};

    fn two_rel_graph() -> JoinGraph {
        JoinGraph::new(
            vec![RelId(0), RelId(1)],
            vec![JoinEdge::new(
                ColRef::new(0, ColId(0)),
                ColRef::new(1, ColId(1)),
            )],
        )
    }

    #[test]
    fn unordered_by_default() {
        let q = Query::new(two_rel_graph());
        assert!(q.order_by.is_none());
        assert!(!q.order_on_join_column());
        assert_eq!(q.num_relations(), 2);
    }

    #[test]
    fn order_on_join_column_detected() {
        let q = Query::new(two_rel_graph()).with_order_by(ColRef::new(0, ColId(0)));
        assert!(q.order_on_join_column());
    }

    #[test]
    fn order_on_non_join_column_is_irrelevant() {
        let q = Query::new(two_rel_graph()).with_order_by(ColRef::new(0, ColId(5)));
        assert!(q.order_by.is_some());
        assert!(!q.order_on_join_column());
    }

    #[test]
    fn group_by_is_an_interesting_order() {
        let q = Query::new(two_rel_graph()).with_group_by(ColRef::new(0, ColId(0)));
        assert!(q.order_by.is_none());
        assert_eq!(
            q.interesting_order(),
            Some(OrderSpec {
                column: ColRef::new(0, ColId(0))
            })
        );
        assert!(q.order_on_join_column());
    }

    #[test]
    fn order_by_wins_over_group_by_as_order_target() {
        let q = Query::new(two_rel_graph())
            .with_group_by(ColRef::new(1, ColId(1)))
            .with_order_by(ColRef::new(0, ColId(0)));
        assert_eq!(
            q.interesting_order().unwrap().column,
            ColRef::new(0, ColId(0))
        );
    }
}
