//! Graphviz DOT rendering of join graphs — the quickest way to *see*
//! the hub structure SDP's pruning keys on (compare the paper's
//! Figures 1.1 and 2.1).

use std::fmt::Write as _;

use crate::graph::JoinGraph;
use crate::hubs;

/// Render a join graph as a Graphviz `graph` document. Hub relations
/// are drawn as doubled circles; edges are labelled with their join
/// columns; local predicates appear in the node labels.
pub fn graph_to_dot(graph: &JoinGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  layout=neato; overlap=false;");
    let hubs = hubs::root_hubs(graph);
    for node in 0..graph.len() {
        let rel = graph.relation(node);
        let mut label = format!("n{node}\\n{rel}");
        for f in graph.filters_on(node) {
            let _ = write!(label, "\\n{} {} {}", f.column.col, f.op, f.value);
        }
        let shape = if hubs.contains(node) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  n{node} [label=\"{label}\", shape={shape}];");
    }
    for e in graph.edges() {
        let _ = writeln!(
            out,
            "  n{} -- n{} [label=\"{}={}\"];",
            e.left.node, e.right.node, e.left.col, e.right.col
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::QueryGenerator;
    use crate::topology::Topology;
    use sdp_catalog::Catalog;

    #[test]
    fn dot_contains_every_node_and_edge() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::star_chain(8), 3)
            .with_filter_probability(1.0)
            .instance(0);
        let dot = graph_to_dot(&q.graph, "g");
        assert!(dot.starts_with("graph g {"));
        assert!(dot.trim_end().ends_with('}'));
        for node in 0..q.graph.len() {
            assert!(dot.contains(&format!("n{node} [label=")));
        }
        assert_eq!(dot.matches(" -- ").count(), q.graph.edges().len());
        // Hub marked, spokes not.
        assert!(dot.contains("doublecircle"));
        // Filters rendered.
        assert!(dot.contains('<') || dot.contains('=') || dot.contains('>'));
    }

    #[test]
    fn chains_have_no_hub_marks() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(6), 1).instance(0);
        let dot = graph_to_dot(&q.graph, "chain");
        assert!(!dot.contains("doublecircle"));
    }
}
