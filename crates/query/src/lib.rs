//! # sdp-query — join graphs, topologies and workload generation
//!
//! This crate models the *query side* of the SDP paper's experimental
//! framework:
//!
//! * [`JoinGraph`] — an undirected multigraph over query-local node
//!   indices, each node bound to a catalog relation, each edge an
//!   equi-join between two columns;
//! * [`RelSet`] — a 64-bit bitset of node indices, the currency of the
//!   dynamic-programming enumerators (a "JCR" in the paper's terms is
//!   a `RelSet` together with its plans);
//! * hub detection ([`hubs`]) — a *hub* is any (composite) relation
//!   joining with three or more neighbours, the trigger for SDP's
//!   localized pruning;
//! * topology constructors ([`Topology`]) — chain, star, cycle, clique
//!   and the paper's star-chain graphs;
//! * workload generation ([`QueryGenerator`]) — seeded sampling of
//!   relation combinations from a catalog, reproducing the paper's
//!   combinatorial query instantiation (e.g. choosing 14 of 24
//!   non-hub relations for Star-15), plus the ordered variants that
//!   request sorted output on a join column;
//! * join-column equivalence classes ([`EquivClasses`]) with the
//!   transitive-closure edge inference the paper attributes to the
//!   optimizer rewriter (`R.a = S.b ∧ R.a = T.c ⇒ S.b = T.c`);
//! * canonical graph hashing ([`canon`]) — permutation-invariant
//!   Weisfeiler–Leman fingerprints of labelled join graphs, the
//!   substrate of the service layer's plan-cache keys.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canon;
mod closure;
pub mod dot;
mod generator;
mod graph;
pub mod hubs;
mod predicate;
mod query;
mod relset;
mod topology;

pub use closure::{infer_transitive_edges, ClassId, EquivClasses};
pub use generator::{InstanceIter, QueryGenerator};
pub use graph::{ColRef, JoinEdge, JoinGraph};
pub use predicate::{PredOp, Predicate};
pub use query::{OrderSpec, Query};
pub use relset::RelSet;
pub use topology::Topology;
