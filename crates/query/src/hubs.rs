//! Hub identification — the trigger for SDP's localized pruning.
//!
//! The paper defines a **hub relation** as "any relation that joins
//! with three or more relations in the join graph". Hubs found in the
//! original join graph are *root hubs*; composites that acquire degree
//! ≥ 3 at intermediate levels (for example the composite `12` in the
//! paper's Figure 2.1, which has edges to relations 3, 4 and 5) are
//! *composite hubs*. Hub identification "is computed afresh in each
//! iteration of SDP with the current version of the join graph".

use crate::graph::JoinGraph;
use crate::relset::RelSet;

/// Degree threshold above which a (composite) relation is a hub.
pub const HUB_DEGREE: usize = 3;

/// Whether a single base relation is a hub of the original join graph
/// (a *root hub*).
pub fn is_root_hub(graph: &JoinGraph, node: usize) -> bool {
    graph.adjacent(node).len() >= HUB_DEGREE
}

/// All root hubs of the original join graph.
pub fn root_hubs(graph: &JoinGraph) -> RelSet {
    RelSet::from_indices((0..graph.len()).filter(|&i| is_root_hub(graph, i)))
}

/// Whether the composite `set` is a hub in the *contracted* join graph
/// in which `set` is treated as a single relation: it must join with
/// at least [`HUB_DEGREE`] external relations.
pub fn is_composite_hub(graph: &JoinGraph, set: RelSet) -> bool {
    graph.degree(set) >= HUB_DEGREE
}

/// Among the given surviving composites of one DP level, the ones that
/// act as hubs for the next level (the paper's "hub-parents").
pub fn hub_parents<'a, I>(graph: &'a JoinGraph, survivors: I) -> Vec<RelSet>
where
    I: IntoIterator<Item = &'a RelSet>,
{
    survivors
        .into_iter()
        .copied()
        .filter(|&s| is_composite_hub(graph, s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ColRef, JoinEdge};
    use sdp_catalog::{ColId, RelId};

    /// The paper's Figure 2.1 example: nine relations where 1 and 7
    /// are hubs. We reconstruct a compatible shape (0-based):
    /// node 0 joins 1,2,3,4 (hub); node 6 joins 5,7,8 (hub);
    /// chain 4-5 links the two halves.
    fn figure_2_1() -> JoinGraph {
        let rels = (0..9).map(RelId).collect();
        let mut edges = Vec::new();
        let mut edge = |a: usize, b: usize| {
            edges.push(JoinEdge::new(
                ColRef::new(a, ColId(0)),
                ColRef::new(b, ColId(0)),
            ));
        };
        edge(0, 1);
        edge(0, 2);
        edge(0, 3);
        edge(0, 4);
        edge(4, 5);
        edge(5, 6);
        edge(6, 7);
        edge(6, 8);
        JoinGraph::new(rels, edges)
    }

    #[test]
    fn root_hubs_of_figure_2_1() {
        let g = figure_2_1();
        assert_eq!(root_hubs(&g), RelSet::from_indices([0, 6]));
        assert!(is_root_hub(&g, 0));
        assert!(is_root_hub(&g, 6));
        assert!(!is_root_hub(&g, 4));
    }

    #[test]
    fn composite_becomes_hub_like_paper_example() {
        // Paper: "if after the first iteration, a combination 12 is
        // retained ... it turns out to be a hub relation since it has
        // 3 join edges". Our nodes 0+1 behave the same: {0,1} still
        // joins 2, 3, 4.
        let g = figure_2_1();
        assert!(is_composite_hub(&g, RelSet::from_indices([0, 1])));
        // A pure chain composite is not a hub.
        assert!(!is_composite_hub(&g, RelSet::from_indices([4, 5])));
    }

    #[test]
    fn chain_graph_has_no_hubs() {
        let rels = (0..6).map(RelId).collect();
        let edges = (0..5)
            .map(|i| JoinEdge::new(ColRef::new(i, ColId(0)), ColRef::new(i + 1, ColId(0))))
            .collect();
        let g = JoinGraph::new(rels, edges);
        assert!(root_hubs(&g).is_empty());
        // No composite of a chain ever reaches degree 3 either.
        for a in 0..5 {
            assert!(!is_composite_hub(&g, RelSet::from_indices([a, a + 1])));
        }
    }

    #[test]
    fn hub_parents_filters_survivors() {
        let g = figure_2_1();
        let survivors = vec![
            RelSet::from_indices([0, 1]), // hub parent
            RelSet::from_indices([4, 5]), // not
            RelSet::from_indices([6, 7]), // hub parent (joins 5, 8 ... degree 2!)
        ];
        let hubs = hub_parents(&g, &survivors);
        assert!(hubs.contains(&RelSet::from_indices([0, 1])));
        assert!(!hubs.contains(&RelSet::from_indices([4, 5])));
        // {6,7}: neighbours are 5 and 8 → degree 2, not a hub.
        assert!(!hubs.contains(&RelSet::from_indices([6, 7])));
    }

    #[test]
    fn whole_graph_is_never_a_hub() {
        let g = figure_2_1();
        assert!(!is_composite_hub(&g, g.all_nodes()));
    }
}
