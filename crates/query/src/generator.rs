//! Seeded workload generation: instantiating topology templates
//! against a catalog.
//!
//! The paper creates query instances "through a combinatorial
//! enumeration of the relational choices — for example, with the
//! 15-relation pure-star query, the hub relation was chosen to be the
//! largest, as is usually the case in data warehousing applications,
//! and ≈ 2 M query instances were created through selection of 14 of
//! the 24 remaining relations". We sample that combinatorial space
//! with a seeded RNG so experiments are reproducible.
//!
//! Join-column placement follows Section 3.1: "In the star-component
//! of the queries, the join of the spoke relations with the hub
//! relations is on indexed columns, while in the chain-component of
//! the query, each relation in the chain joins on an indexed column
//! with its left neighbor." Ordered variants "request ordered output
//! on a randomly chosen join column".

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use sdp_catalog::{Catalog, ColId, RelId};

use crate::graph::{ColRef, JoinEdge, JoinGraph};
use crate::predicate::{PredOp, Predicate};
use crate::query::Query;
use crate::topology::Topology;

/// Which order clause (if any) an instance carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OrderMode {
    None,
    OrderBy,
    GroupBy,
}

/// Generates reproducible query instances of one topology over a
/// catalog.
#[derive(Debug, Clone)]
pub struct QueryGenerator<'a> {
    catalog: &'a Catalog,
    topology: Topology,
    seed: u64,
    filter_probability: f64,
}

impl<'a> QueryGenerator<'a> {
    /// Create a generator. `seed` scopes the whole instance stream.
    pub fn new(catalog: &'a Catalog, topology: Topology, seed: u64) -> Self {
        assert!(
            topology.n() <= catalog.len(),
            "topology needs {} relations but catalog has {}",
            topology.n(),
            catalog.len()
        );
        QueryGenerator {
            catalog,
            topology,
            seed,
            filter_probability: 0.0,
        }
    }

    /// Attach a random local predicate to each relation with the given
    /// probability (an extension beyond the paper's pure-join
    /// workloads; 0 reproduces the paper exactly).
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn with_filter_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        self.filter_probability = p;
        self
    }

    /// The topology being instantiated.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Deterministically build instance number `k` (unordered).
    pub fn instance(&self, k: u64) -> Query {
        self.build(k, OrderMode::None)
    }

    /// Deterministically build the ordered variant of instance `k`
    /// (`ORDER BY` a randomly chosen join column).
    pub fn ordered_instance(&self, k: u64) -> Query {
        self.build(k, OrderMode::OrderBy)
    }

    /// Deterministically build the grouped variant of instance `k`
    /// (`GROUP BY` a randomly chosen join column — the same column the
    /// ordered variant would have picked, so ordered/grouped variants
    /// of one instance share their interesting order).
    pub fn grouped_instance(&self, k: u64) -> Query {
        self.build(k, OrderMode::GroupBy)
    }

    /// Iterator over the first `count` (unordered) instances.
    pub fn instances(&self, count: usize) -> InstanceIter<'a, '_> {
        InstanceIter {
            generator: self,
            next: 0,
            count: count as u64,
            ordered: false,
        }
    }

    /// Iterator over the first `count` ordered instances.
    pub fn ordered_instances(&self, count: usize) -> InstanceIter<'a, '_> {
        InstanceIter {
            generator: self,
            next: 0,
            count: count as u64,
            ordered: true,
        }
    }

    fn build(&self, k: u64, mode: OrderMode) -> Query {
        let mut rng = StdRng::seed_from_u64(self.seed ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = self.topology.n();
        let bindings = self.choose_relations(n, &mut rng);
        let edges = self.assign_join_columns(&bindings, &mut rng);
        let mut graph = JoinGraph::new(bindings, edges);
        self.attach_filters(&mut graph, &mut rng);
        let query = Query::new(graph);
        match mode {
            OrderMode::None => query,
            OrderMode::OrderBy | OrderMode::GroupBy => {
                let edges = query.graph.edges();
                let e = edges[rng.gen_range(0..edges.len())];
                let column = if rng.gen::<bool>() { e.left } else { e.right };
                if matches!(mode, OrderMode::OrderBy) {
                    query.with_order_by(column)
                } else {
                    query.with_group_by(column)
                }
            }
        }
    }

    /// Choose the catalog relations bound to nodes `0..n`. For
    /// hub-bearing topologies the hub (node 0) is the largest
    /// relation, as in the paper.
    fn choose_relations(&self, n: usize, rng: &mut StdRng) -> Vec<RelId> {
        let hub_first = matches!(
            self.topology,
            Topology::Star(_) | Topology::StarChain { .. }
        );
        let largest = self.catalog.largest_relation();
        let mut pool: Vec<RelId> = self
            .catalog
            .relations()
            .iter()
            .map(|r| r.id)
            .filter(|&id| !hub_first || id != largest)
            .collect();
        pool.shuffle(rng);
        let mut bindings = Vec::with_capacity(n);
        if hub_first {
            bindings.push(largest);
            bindings.extend(pool.into_iter().take(n - 1));
        } else {
            bindings.extend(pool.into_iter().take(n));
        }
        assert_eq!(bindings.len(), n, "catalog too small for topology");
        bindings
    }

    /// Assign join columns to each topology edge.
    ///
    /// * Star edges `(0, s)`: the spoke side uses its indexed column,
    ///   the hub side a fresh (per-edge) column, so the pure-star
    ///   graphs have no shared join columns unless the topology itself
    ///   introduces them.
    /// * Chain edges `(i, i+1)`: the right node joins "on an indexed
    ///   column with its left neighbor"; the left side uses a fresh
    ///   column.
    /// * Other edges (cycle closers, clique fill): indexed column on
    ///   the higher-numbered side when still unused, otherwise a fresh
    ///   column.
    fn assign_join_columns(&self, bindings: &[RelId], rng: &mut StdRng) -> Vec<JoinEdge> {
        let n = bindings.len();
        let cols_per_rel = self
            .catalog
            .relation(bindings[0])
            .expect("binding valid")
            .columns
            .len();
        // Track columns already used per node to avoid accidentally
        // creating shared join columns.
        let mut used: Vec<Vec<bool>> = vec![vec![false; cols_per_rel]; n];

        let fresh_col = |node: usize, used: &mut Vec<Vec<bool>>, rng: &mut StdRng| -> ColId {
            let free: Vec<usize> = (0..cols_per_rel).filter(|&c| !used[node][c]).collect();
            let c = if free.is_empty() {
                rng.gen_range(0..cols_per_rel)
            } else {
                free[rng.gen_range(0..free.len())]
            };
            used[node][c] = true;
            ColId(c as u16)
        };
        let indexed_or_fresh =
            |node: usize, used: &mut Vec<Vec<bool>>, rng: &mut StdRng| -> ColId {
                let idx = self
                    .catalog
                    .relation(bindings[node])
                    .expect("binding valid")
                    .indexed_column;
                if !used[node][idx.0 as usize] {
                    used[node][idx.0 as usize] = true;
                    idx
                } else {
                    fresh_col(node, used, rng)
                }
            };

        let star_spokes = match self.topology {
            Topology::Star(n) => n - 1,
            Topology::StarChain { spokes, .. } => spokes,
            _ => 0,
        };

        self.topology
            .edge_pairs()
            .into_iter()
            .map(|(a, b)| {
                let (ca, cb) = if a == 0 && b <= star_spokes && star_spokes > 0 {
                    // Star edge: spoke side indexed, hub side fresh.
                    let cb = indexed_or_fresh(b, &mut used, rng);
                    let ca = fresh_col(a, &mut used, rng);
                    (ca, cb)
                } else {
                    // Chain-style edge: right side indexed, left fresh.
                    let cb = indexed_or_fresh(b, &mut used, rng);
                    let ca = fresh_col(a, &mut used, rng);
                    (ca, cb)
                };
                JoinEdge::new(ColRef::new(a, ca), ColRef::new(b, cb))
            })
            .collect()
    }
}

impl QueryGenerator<'_> {
    /// Attach random predicates per `filter_probability`: a random
    /// comparison against a random domain value, on a column not used
    /// by any join edge of the node (so join selectivities stay
    /// independent of the filter draw).
    fn attach_filters(&self, graph: &mut JoinGraph, rng: &mut StdRng) {
        if self.filter_probability <= 0.0 {
            return;
        }
        for node in 0..graph.len() {
            if rng.gen::<f64>() >= self.filter_probability {
                continue;
            }
            let rel = self
                .catalog
                .relation(graph.relation(node))
                .expect("binding valid");
            let join_cols: Vec<ColId> = graph
                .edges()
                .iter()
                .flat_map(|e| [e.left, e.right])
                .filter(|c| c.node == node)
                .map(|c| c.col)
                .collect();
            let free: Vec<usize> = (0..rel.columns.len())
                .filter(|&c| !join_cols.contains(&ColId(c as u16)))
                .collect();
            if free.is_empty() {
                continue;
            }
            let col = ColId(free[rng.gen_range(0..free.len())] as u16);
            let domain = rel.column(col).expect("valid column").domain_size.max(2);
            let op = match rng.gen_range(0..4) {
                0 => PredOp::Eq,
                1 => PredOp::Lt,
                2 => PredOp::Ge,
                _ => PredOp::Le,
            };
            let value = rng.gen_range(1..domain) as i64;
            graph.add_filter(Predicate::new(ColRef::new(node, col), op, value));
        }
    }
}

/// Iterator over generated instances. See
/// [`QueryGenerator::instances`].
#[derive(Debug)]
pub struct InstanceIter<'a, 'g> {
    generator: &'g QueryGenerator<'a>,
    next: u64,
    count: u64,
    ordered: bool,
}

impl Iterator for InstanceIter<'_, '_> {
    type Item = Query;

    fn next(&mut self) -> Option<Query> {
        if self.next >= self.count {
            return None;
        }
        let k = self.next;
        self.next += 1;
        Some(if self.ordered {
            self.generator.ordered_instance(k)
        } else {
            self.generator.instance(k)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = (self.count - self.next) as usize;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for InstanceIter<'_, '_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hubs;

    #[test]
    fn star_hub_is_largest_relation() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Star(15), 1);
        for q in gen.instances(5) {
            assert_eq!(q.graph.relation(0), cat.largest_relation());
            assert_eq!(q.num_relations(), 15);
        }
    }

    #[test]
    fn star_spokes_join_on_their_indexed_columns() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Star(8), 7);
        let q = gen.instance(0);
        for e in q.graph.edges() {
            // Spoke side is the right (higher) node; its column must
            // be the relation's indexed column.
            let spoke = e.right;
            let rel = cat.relation(q.graph.relation(spoke.node)).unwrap();
            assert!(rel.has_index_on(spoke.col));
        }
    }

    #[test]
    fn chain_right_neighbours_join_on_indexed_columns() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Chain(10), 3);
        let q = gen.instance(0);
        for e in q.graph.edges() {
            let rel = cat.relation(q.graph.relation(e.right.node)).unwrap();
            assert!(rel.has_index_on(e.right.col));
        }
    }

    #[test]
    fn instances_are_deterministic_but_distinct() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::star_chain(15), 42);
        let a0 = gen.instance(0);
        let b0 = gen.instance(0);
        assert_eq!(a0.graph.relations(), b0.graph.relations());
        let a1 = gen.instance(1);
        assert_ne!(a0.graph.relations(), a1.graph.relations());
    }

    #[test]
    fn distinct_relations_within_an_instance() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Clique(12), 9);
        let q = gen.instance(4);
        let mut ids: Vec<RelId> = q.graph.relations().to_vec();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
    }

    #[test]
    fn star_chain_instance_has_one_root_hub() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::star_chain(15), 11);
        let q = gen.instance(0);
        assert_eq!(hubs::root_hubs(&q.graph).len(), 1);
        assert!(hubs::is_root_hub(&q.graph, 0));
    }

    #[test]
    fn ordered_instance_orders_on_a_join_column() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Star(10), 5);
        for k in 0..5 {
            let q = gen.ordered_instance(k);
            assert!(q.order_by.is_some());
            assert!(q.order_on_join_column());
        }
    }

    #[test]
    fn grouped_instance_groups_on_the_same_column_as_ordered() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Chain(8), 5);
        for k in 0..5 {
            let ordered = gen.ordered_instance(k);
            let grouped = gen.grouped_instance(k);
            assert!(grouped.order_by.is_none());
            assert!(grouped.group_by.is_some());
            assert!(grouped.order_on_join_column());
            // Same interesting order: an ordered and a grouped variant
            // of one instance target the same column.
            assert_eq!(
                ordered.interesting_order().unwrap().column,
                grouped.interesting_order().unwrap().column
            );
            assert_eq!(ordered.graph.edges(), grouped.graph.edges());
        }
    }

    #[test]
    fn no_shared_join_columns_in_pure_star() {
        // Each hub-side column must be unique, or the rewriter would
        // add clique edges to a "pure" star.
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Star(15), 2);
        let q = gen.instance(3);
        let mut hub_cols: Vec<ColId> = q.graph.edges().iter().map(|e| e.left.col).collect();
        hub_cols.sort_unstable();
        let len = hub_cols.len();
        hub_cols.dedup();
        assert_eq!(hub_cols.len(), len, "hub columns reused");
    }

    #[test]
    fn filter_probability_controls_predicates() {
        let cat = Catalog::paper();
        let none = QueryGenerator::new(&cat, Topology::Chain(8), 3).instance(0);
        assert!(none.graph.filters().is_empty());

        let always = QueryGenerator::new(&cat, Topology::Chain(8), 3).with_filter_probability(1.0);
        let q = always.instance(0);
        assert_eq!(q.graph.filters().len(), 8);
        // Filters avoid join columns.
        for f in q.graph.filters() {
            for e in q.graph.edges() {
                assert_ne!(f.column, e.left);
                assert_ne!(f.column, e.right);
            }
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_filter_probability_rejected() {
        let cat = Catalog::paper();
        let _ = QueryGenerator::new(&cat, Topology::Chain(4), 0).with_filter_probability(1.5);
    }

    #[test]
    fn iterator_reports_exact_size() {
        let cat = Catalog::paper();
        let gen = QueryGenerator::new(&cat, Topology::Chain(5), 0);
        let it = gen.instances(7);
        assert_eq!(it.len(), 7);
        assert_eq!(it.count(), 7);
    }

    #[test]
    #[should_panic(expected = "catalog has")]
    fn topology_larger_than_catalog_rejected() {
        let cat = Catalog::paper();
        let _ = QueryGenerator::new(&cat, Topology::Star(26), 0);
    }

    #[test]
    fn extended_catalog_supports_large_stars() {
        let cat = Catalog::extended(50);
        let gen = QueryGenerator::new(&cat, Topology::Star(45), 0);
        let q = gen.instance(0);
        assert_eq!(q.num_relations(), 45);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::relset::RelSet;
    use proptest::prelude::*;

    fn arb_topology() -> impl Strategy<Value = Topology> {
        prop_oneof![
            (2usize..16).prop_map(Topology::Chain),
            (2usize..16).prop_map(Topology::Star),
            (3usize..16).prop_map(Topology::Cycle),
            (2usize..9).prop_map(Topology::Clique),
            (3usize..16).prop_map(Topology::star_chain),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Every generated instance is structurally sound: right node
        /// count, distinct relations, connected graph, edges matching
        /// the topology's edge count, and (for the paper's workloads)
        /// no accidental shared join columns within a node.
        #[test]
        fn instances_are_structurally_sound(
            topo in arb_topology(),
            seed in 0u64..100_000,
            k in 0u64..50,
        ) {
            let cat = Catalog::paper();
            let q = QueryGenerator::new(&cat, topo, seed).instance(k);
            prop_assert_eq!(q.num_relations(), topo.n());
            prop_assert_eq!(q.graph.edges().len(), topo.edge_count());
            prop_assert!(q.graph.is_connected(q.graph.all_nodes()));

            let mut rels: Vec<RelId> = q.graph.relations().to_vec();
            rels.sort_unstable();
            let before = rels.len();
            rels.dedup();
            prop_assert_eq!(rels.len(), before, "duplicate relations");

            // No column participates in two edges of the same node
            // (pure topologies stay pure after closure inference).
            let mut used: Vec<ColRef> = q
                .graph
                .edges()
                .iter()
                .flat_map(|e| [e.left, e.right])
                .collect();
            let n_refs = used.len();
            used.sort_unstable();
            used.dedup();
            prop_assert_eq!(used.len(), n_refs, "shared join column generated");
        }

        /// Hub structure matches the topology: stars and star-chains
        /// have node 0 as their unique root hub; chains and cycles
        /// have none.
        #[test]
        fn hubs_match_topology(topo in arb_topology(), seed in 0u64..10_000) {
            let cat = Catalog::paper();
            let q = QueryGenerator::new(&cat, topo, seed).instance(0);
            let hubs = crate::hubs::root_hubs(&q.graph);
            match topo {
                Topology::Chain(_) | Topology::Cycle(_) => {
                    prop_assert!(hubs.is_empty())
                }
                Topology::Star(n) if n >= 4 => {
                    prop_assert_eq!(hubs, RelSet::single(0))
                }
                Topology::StarChain { spokes, .. } if spokes >= 3 => {
                    prop_assert!(hubs.contains(0))
                }
                Topology::Clique(n) if n >= 4 => {
                    prop_assert_eq!(hubs.len(), n)
                }
                _ => {}
            }
        }

        /// Ordered variants always order on a join column, and the
        /// underlying graph matches the unordered instance.
        #[test]
        fn ordered_variants_share_structure(seed in 0u64..10_000, k in 0u64..20) {
            let cat = Catalog::paper();
            let gen = QueryGenerator::new(&cat, Topology::star_chain(9), seed);
            let plain = gen.instance(k);
            let ordered = gen.ordered_instance(k);
            prop_assert!(ordered.order_on_join_column());
            prop_assert_eq!(plain.graph.relations(), ordered.graph.relations());
            prop_assert_eq!(plain.graph.edges(), ordered.graph.edges());
        }
    }
}
