//! Bitset of query-local relation indices.
//!
//! All enumerators manipulate sets of base relations; a `u64` bitset
//! supports joins of up to 64 relations, comfortably above the paper's
//! 45-relation maximum scale-up.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not, Sub};

/// A set of query-local relation indices (0‥64), stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RelSet(pub u64);

impl RelSet {
    /// Maximum number of relations representable.
    pub const MAX_RELATIONS: usize = 64;

    /// The empty set.
    pub const EMPTY: RelSet = RelSet(0);

    /// Singleton set containing `index`.
    #[inline]
    pub fn single(index: usize) -> Self {
        debug_assert!(index < Self::MAX_RELATIONS);
        RelSet(1u64 << index)
    }

    /// Set containing indices `0..n`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        debug_assert!(n <= Self::MAX_RELATIONS);
        if n == 64 {
            RelSet(u64::MAX)
        } else {
            RelSet((1u64 << n) - 1)
        }
    }

    /// Build a set from an iterator of indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        iter.into_iter().fold(RelSet::EMPTY, |s, i| s.insert(i))
    }

    /// Number of relations in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `index` is a member.
    #[inline]
    pub fn contains(self, index: usize) -> bool {
        index < Self::MAX_RELATIONS && self.0 & (1u64 << index) != 0
    }

    /// Whether `other` is a subset of `self`.
    #[inline]
    pub fn is_superset(self, other: RelSet) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether the two sets share no members.
    #[inline]
    pub fn is_disjoint(self, other: RelSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether the two sets share at least one member.
    #[inline]
    pub fn intersects(self, other: RelSet) -> bool {
        self.0 & other.0 != 0
    }

    /// The set with `index` added.
    #[inline]
    #[must_use]
    pub fn insert(self, index: usize) -> Self {
        debug_assert!(index < Self::MAX_RELATIONS);
        RelSet(self.0 | (1u64 << index))
    }

    /// The set with `index` removed.
    #[inline]
    #[must_use]
    pub fn remove(self, index: usize) -> Self {
        debug_assert!(index < Self::MAX_RELATIONS);
        RelSet(self.0 & !(1u64 << index))
    }

    /// Smallest member, if any.
    #[inline]
    pub fn min_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Iterate over member indices in increasing order.
    #[inline]
    pub fn iter(self) -> RelSetIter {
        RelSetIter(self.0)
    }
}

impl BitOr for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitor(self, rhs: RelSet) -> RelSet {
        RelSet(self.0 | rhs.0)
    }
}

impl BitAnd for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitand(self, rhs: RelSet) -> RelSet {
        RelSet(self.0 & rhs.0)
    }
}

impl BitXor for RelSet {
    type Output = RelSet;
    #[inline]
    fn bitxor(self, rhs: RelSet) -> RelSet {
        RelSet(self.0 ^ rhs.0)
    }
}

impl Sub for RelSet {
    type Output = RelSet;
    /// Set difference.
    #[inline]
    fn sub(self, rhs: RelSet) -> RelSet {
        RelSet(self.0 & !rhs.0)
    }
}

impl Not for RelSet {
    type Output = RelSet;
    #[inline]
    fn not(self) -> RelSet {
        RelSet(!self.0)
    }
}

impl fmt::Debug for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, i) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for RelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl FromIterator<usize> for RelSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        RelSet::from_indices(iter)
    }
}

impl IntoIterator for RelSet {
    type Item = usize;
    type IntoIter = RelSetIter;
    fn into_iter(self) -> RelSetIter {
        self.iter()
    }
}

/// Iterator over the members of a [`RelSet`], ascending.
#[derive(Debug, Clone)]
pub struct RelSetIter(u64);

impl Iterator for RelSetIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(i)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RelSetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_and_membership() {
        let s = RelSet::single(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn first_n_spans_prefix() {
        let s = RelSet::first_n(4);
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(3) && !s.contains(4));
        assert_eq!(RelSet::first_n(64).len(), 64);
        assert!(RelSet::first_n(0).is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = RelSet::from_indices([0, 1, 2]);
        let b = RelSet::from_indices([2, 3]);
        assert_eq!(a | b, RelSet::from_indices([0, 1, 2, 3]));
        assert_eq!(a & b, RelSet::single(2));
        assert_eq!(a - b, RelSet::from_indices([0, 1]));
        assert_eq!(a ^ b, RelSet::from_indices([0, 1, 3]));
        assert!(a.intersects(b));
        assert!(!a.is_disjoint(b));
        assert!(a.is_superset(RelSet::single(1)));
        assert!(!a.is_superset(b));
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = RelSet::EMPTY.insert(7).insert(9);
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(7), RelSet::single(9));
        assert_eq!(s.remove(8), s); // removing non-member is a no-op
    }

    #[test]
    fn iter_is_ascending_and_exact() {
        let s = RelSet::from_indices([9, 1, 33, 4]);
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![1, 4, 9, 33]);
        assert_eq!(s.iter().len(), 4);
    }

    #[test]
    fn min_index_on_empty_and_nonempty() {
        assert_eq!(RelSet::EMPTY.min_index(), None);
        assert_eq!(RelSet::from_indices([6, 3]).min_index(), Some(3));
    }

    #[test]
    fn debug_format_lists_members() {
        let s = RelSet::from_indices([2, 0]);
        assert_eq!(format!("{s:?}"), "{0,2}");
    }

    #[test]
    fn collect_from_iterator() {
        let s: RelSet = [5usize, 6, 5].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
