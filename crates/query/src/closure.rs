//! Join-column equivalence classes and transitive edge inference.
//!
//! "The presence of `R.a ⋈ S.b` and `R.a ⋈ T.c` in the join-graph …
//! directly implies `S.b ⋈ T.c`. In most industrial-strength query
//! optimizers, including PostgreSQL, the optimizer rewriter itself
//! performs the inclusion of these additional edges." We reproduce the
//! rewriter here: equi-joined columns are grouped into equivalence
//! classes (union-find), and every missing edge among members of a
//! class is added to the graph. The classes double as the *order
//! classes* used for interesting-order bookkeeping: a sort on any
//! column of a class satisfies an order requirement on the class.

use std::collections::HashMap;

use crate::graph::{ColRef, JoinEdge, JoinGraph};

/// Identifier of a join-column equivalence class.
pub type ClassId = u32;

/// Equivalence classes of join columns, computed from a graph's edges.
#[derive(Debug, Clone)]
pub struct EquivClasses {
    /// Map from column reference to class id.
    class_of: HashMap<ColRef, ClassId>,
    /// Members of each class, indexed by class id.
    members: Vec<Vec<ColRef>>,
}

impl EquivClasses {
    /// Compute classes from a join graph.
    pub fn new(graph: &JoinGraph) -> Self {
        // Union-find over the column references appearing in edges.
        let mut ids: HashMap<ColRef, usize> = HashMap::new();
        let mut parent: Vec<usize> = Vec::new();
        let mut intern = |c: ColRef, parent: &mut Vec<usize>| -> usize {
            *ids.entry(c).or_insert_with(|| {
                let id = parent.len();
                parent.push(id);
                id
            })
        };
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        for e in graph.edges() {
            let a = intern(e.left, &mut parent);
            let b = intern(e.right, &mut parent);
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            if ra != rb {
                parent[ra] = rb;
            }
        }

        // Canonicalize roots into dense class ids.
        let mut root_to_class: HashMap<usize, ClassId> = HashMap::new();
        let mut class_of: HashMap<ColRef, ClassId> = HashMap::new();
        let mut members: Vec<Vec<ColRef>> = Vec::new();
        let mut refs: Vec<ColRef> = ids.keys().copied().collect();
        refs.sort_unstable(); // deterministic class numbering
        for c in refs {
            let root = find(&mut parent, ids[&c]);
            let class = *root_to_class.entry(root).or_insert_with(|| {
                members.push(Vec::new());
                (members.len() - 1) as ClassId
            });
            class_of.insert(c, class);
            members[class as usize].push(c);
        }
        EquivClasses { class_of, members }
    }

    /// The class of a column reference, if it participates in a join.
    pub fn class_of(&self, c: ColRef) -> Option<ClassId> {
        self.class_of.get(&c).copied()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no classes (graph without edges).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Members of one class.
    pub fn members(&self, class: ClassId) -> &[ColRef] {
        &self.members[class as usize]
    }

    /// Iterate over `(class id, members)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &[ColRef])> {
        self.members
            .iter()
            .enumerate()
            .map(|(i, m)| (i as ClassId, m.as_slice()))
    }

    /// All classes touching the given node.
    pub fn classes_of_node(&self, node: usize) -> Vec<ClassId> {
        let mut v: Vec<ClassId> = self
            .class_of
            .iter()
            .filter(|(c, _)| c.node == node)
            .map(|(_, &cl)| cl)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Apply the rewriter's transitive closure: add every implied edge
/// between members of the same equivalence class that is not already
/// present. Returns the number of edges added.
///
/// "The presence of the extra edges has the potential to create new
/// hubs, and therefore provides additional opportunity for SDP."
pub fn infer_transitive_edges(graph: &mut JoinGraph) -> usize {
    let classes = EquivClasses::new(graph);
    let before = graph.edges().len();
    for (_, members) in classes.iter() {
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                if members[i].node != members[j].node {
                    graph.add_edge(JoinEdge::new(members[i], members[j]));
                }
            }
        }
    }
    graph.edges().len() - before
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::{ColId, RelId};

    /// R0.a ⋈ R1.b and R0.a ⋈ R2.c — shared join column on R0.
    fn shared_column_graph() -> JoinGraph {
        let rels = (0..3).map(RelId).collect();
        let a = ColRef::new(0, ColId(0));
        let b = ColRef::new(1, ColId(1));
        let c = ColRef::new(2, ColId(2));
        JoinGraph::new(rels, vec![JoinEdge::new(a, b), JoinEdge::new(a, c)])
    }

    #[test]
    fn shared_column_forms_single_class() {
        let g = shared_column_graph();
        let cl = EquivClasses::new(&g);
        assert_eq!(cl.len(), 1);
        assert_eq!(cl.members(0).len(), 3);
        let a = cl.class_of(ColRef::new(0, ColId(0)));
        let b = cl.class_of(ColRef::new(1, ColId(1)));
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_join_columns_form_distinct_classes() {
        // Chain where each edge uses fresh columns: R0.c0=R1.c1,
        // R1.c2=R2.c3 — two classes.
        let rels = (0..3).map(RelId).collect();
        let g = JoinGraph::new(
            rels,
            vec![
                JoinEdge::new(ColRef::new(0, ColId(0)), ColRef::new(1, ColId(1))),
                JoinEdge::new(ColRef::new(1, ColId(2)), ColRef::new(2, ColId(3))),
            ],
        );
        let cl = EquivClasses::new(&g);
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn transitive_closure_adds_the_paper_edge() {
        // R.a ⋈ S.b ∧ R.a ⋈ T.c ⇒ S.b ⋈ T.c
        let mut g = shared_column_graph();
        let added = infer_transitive_edges(&mut g);
        assert_eq!(added, 1);
        assert!(g
            .edges()
            .iter()
            .any(|e| e.left.node == 1 && e.right.node == 2));
        // Idempotent.
        assert_eq!(infer_transitive_edges(&mut g), 0);
    }

    #[test]
    fn closure_can_create_new_hubs() {
        // Star of shared columns: R0.a joins R1, R2, R3 on the same
        // column — closure turns the spokes into a clique, making every
        // node a hub.
        let rels = (0..4).map(RelId).collect();
        let a = ColRef::new(0, ColId(0));
        let edges = (1..4)
            .map(|i| JoinEdge::new(a, ColRef::new(i, ColId(0))))
            .collect();
        let mut g = JoinGraph::new(rels, edges);
        assert_eq!(crate::hubs::root_hubs(&g).len(), 1);
        infer_transitive_edges(&mut g);
        assert_eq!(crate::hubs::root_hubs(&g).len(), 4);
    }

    #[test]
    fn classes_of_node_lists_participations() {
        let g = shared_column_graph();
        let cl = EquivClasses::new(&g);
        assert_eq!(cl.classes_of_node(0), vec![0]);
        assert_eq!(cl.classes_of_node(1), vec![0]);
        assert!(!cl.is_empty());
    }

    #[test]
    fn class_numbering_is_deterministic() {
        let g = shared_column_graph();
        let a = EquivClasses::new(&g);
        let b = EquivClasses::new(&g);
        for (c, id) in &a.class_of {
            assert_eq!(b.class_of(*c), Some(*id));
        }
    }

    #[test]
    fn edgeless_graph_has_no_classes() {
        let g = JoinGraph::new(vec![RelId(0)], vec![]);
        let cl = EquivClasses::new(&g);
        assert!(cl.is_empty());
        assert_eq!(cl.class_of(ColRef::new(0, ColId(0))), None);
    }
}
