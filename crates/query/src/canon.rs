//! Order-independent canonical hashing of join graphs.
//!
//! The service layer keys its plan cache on a structural
//! **fingerprint** of the query: two requests whose join graphs are
//! isomorphic under a relabelling of the query-local node indices —
//! the same relations, joined on the same columns, filtered by the
//! same predicates — must collide, no matter in which order the
//! relations were declared in the `FROM` list or the conjuncts were
//! written in the `WHERE` clause.
//!
//! This module implements the graph side of that contract with a
//! Weisfeiler–Leman (colour-refinement) hash: every node starts from a
//! caller-supplied label, then repeatedly absorbs the sorted multiset
//! of its neighbours' signatures tagged with the per-direction edge
//! labels. After `n` rounds the sorted multiset of node signatures
//! (plus a canonical per-edge digest) is itself order-independent, so
//! hashing it yields a permutation-invariant fingerprint. WL refinement
//! distinguishes all the tree/cycle/clique-shaped graphs the workload
//! generator emits; as with any hash, distinct graphs colliding is
//! possible in principle but needs an adversarial construction.
//!
//! All hashing is built on a seeded FNV-1a mixer ([`StableHasher`]) so
//! fingerprints are stable across platforms and processes — they must
//! be, because cache keys outlive any single `DefaultHasher` instance
//! and may be logged or compared across daemon restarts.

use crate::graph::JoinGraph;

/// Seeded FNV-1a 64-bit hasher over `u64` words.
///
/// Deliberately *not* [`std::hash::Hasher`]: the std trait hashes
/// byte streams with an unspecified, process-local initial state
/// (`RandomState`), while fingerprints need a fixed, documented
/// function of the input words alone.
#[derive(Debug, Clone, Copy)]
pub struct StableHasher(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Start a hash chain from a domain-separation seed.
    pub fn new(seed: u64) -> Self {
        let mut h = StableHasher(FNV_OFFSET);
        h.write_u64(seed);
        h
    }

    /// Absorb one word (byte-at-a-time FNV-1a, little-endian).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Final avalanche (splitmix64 finalizer) so nearby inputs spread
    /// across the whole output space.
    pub fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Hash a short word sequence under a seed.
pub fn stable_hash(seed: u64, words: &[u64]) -> u64 {
    let mut h = StableHasher::new(seed);
    for &w in words {
        h.write_u64(w);
    }
    h.finish()
}

/// Per-node / per-edge labelling of a join graph for [`wl_hash`].
///
/// `node_labels[v]` encodes everything the caller knows about node `v`
/// besides its edges (bound relation, statistics, filters, order
/// marker). `edge_labels[i]` corresponds to `graph.edges()[i]` and
/// carries one label per direction: `.0` is the edge as seen from its
/// `left` endpoint, `.1` as seen from `right` — for an equi-join this
/// is typically a hash of (own column, peer column, per-side
/// statistics), which keeps the fingerprint sensitive to *which way*
/// an asymmetric predicate is attached.
#[derive(Debug, Clone)]
pub struct WlLabels {
    /// One label per graph node.
    pub node_labels: Vec<u64>,
    /// One `(from-left, from-right)` label pair per graph edge.
    pub edge_labels: Vec<(u64, u64)>,
}

impl WlLabels {
    /// Labels derived purely from the graph itself: node label = bound
    /// relation id + sorted multiset of local filter digests, edge
    /// label = the two column ids. Enough for structural
    /// (statistics-free) hashing and for tests.
    pub fn structural(graph: &JoinGraph) -> Self {
        let node_labels = (0..graph.len())
            .map(|v| {
                let mut filters: Vec<u64> = graph
                    .filters_on(v)
                    .map(|f| {
                        stable_hash(
                            0x66_69_6c_74,
                            &[f.column.col.0 as u64, pred_op_tag(f.op), f.value as u64],
                        )
                    })
                    .collect();
                filters.sort_unstable();
                let mut h = StableHasher::new(0x6e_6f_64_65);
                h.write_u64(graph.relation(v).0 as u64);
                for f in filters {
                    h.write_u64(f);
                }
                h.finish()
            })
            .collect();
        let edge_labels = graph
            .edges()
            .iter()
            .map(|e| {
                (
                    stable_hash(0x65_64_67, &[e.left.col.0 as u64, e.right.col.0 as u64]),
                    stable_hash(0x65_64_67, &[e.right.col.0 as u64, e.left.col.0 as u64]),
                )
            })
            .collect();
        WlLabels {
            node_labels,
            edge_labels,
        }
    }
}

/// Stable discriminant for a predicate operator.
pub fn pred_op_tag(op: crate::predicate::PredOp) -> u64 {
    use crate::predicate::PredOp::*;
    match op {
        Eq => 1,
        Lt => 2,
        Le => 3,
        Gt => 4,
        Ge => 5,
    }
}

/// Permutation-invariant 128-bit hash of a labelled join graph.
///
/// # Panics
/// Panics if the label vectors do not match the graph's node and edge
/// counts.
pub fn wl_hash(graph: &JoinGraph, labels: &WlLabels) -> u128 {
    let n = graph.len();
    assert_eq!(labels.node_labels.len(), n, "one label per node required");
    assert_eq!(
        labels.edge_labels.len(),
        graph.edges().len(),
        "one label pair per edge required"
    );

    // Initial signatures.
    let mut sigs: Vec<u64> = labels
        .node_labels
        .iter()
        .map(|&l| stable_hash(0x77_6c_30, &[l]))
        .collect();

    // `n` refinement rounds: enough for information to cross any
    // graph of `n` nodes (diameter < n).
    let mut messages: Vec<Vec<u64>> = vec![Vec::new(); n];
    for round in 0..n {
        for m in &mut messages {
            m.clear();
        }
        for (e, &(from_left, from_right)) in graph.edges().iter().zip(&labels.edge_labels) {
            let (l, r) = (e.left.node, e.right.node);
            messages[l].push(stable_hash(0x6d_73_67, &[from_left, sigs[r]]));
            messages[r].push(stable_hash(0x6d_73_67, &[from_right, sigs[l]]));
        }
        let prev = sigs.clone();
        for v in 0..n {
            messages[v].sort_unstable();
            let mut h = StableHasher::new(0x77_6c_72);
            h.write_u64(round as u64);
            h.write_u64(prev[v]);
            for &m in &messages[v] {
                h.write_u64(m);
            }
            sigs[v] = h.finish();
        }
    }

    // Canonical per-edge digests: the two (signature, directional
    // label) halves sorted, so the digest ignores the edge's stored
    // left/right orientation.
    let mut edge_digests: Vec<u64> = graph
        .edges()
        .iter()
        .zip(&labels.edge_labels)
        .map(|(e, &(from_left, from_right))| {
            let mut halves = [
                (sigs[e.left.node], from_left),
                (sigs[e.right.node], from_right),
            ];
            halves.sort_unstable();
            stable_hash(
                0x0065_6464,
                &[halves[0].0, halves[0].1, halves[1].0, halves[1].1],
            )
        })
        .collect();
    edge_digests.sort_unstable();

    let mut final_sigs = sigs;
    final_sigs.sort_unstable();

    let fold = |seed: u64| -> u64 {
        let mut h = StableHasher::new(seed);
        h.write_u64(n as u64);
        h.write_u64(edge_digests.len() as u64);
        for &s in &final_sigs {
            h.write_u64(s);
        }
        for &d in &edge_digests {
            h.write_u64(d);
        }
        h.finish()
    };
    ((fold(0x68_69) as u128) << 64) | fold(0x6c_6f) as u128
}

/// Structural (catalog-free) fingerprint of a bare join graph —
/// [`wl_hash`] under [`WlLabels::structural`].
pub fn graph_hash(graph: &JoinGraph) -> u128 {
    wl_hash(graph, &WlLabels::structural(graph))
}

/// Rebuild `graph` with its nodes relabelled by `perm` (`perm[old] =
/// new`): same relations, edges, and filters under new node indices,
/// with edge and filter declaration order preserved modulo the
/// mapping. Used by the fingerprint tests to construct isomorphic
/// variants.
///
/// # Panics
/// Panics unless `perm` is a permutation of `0..graph.len()`.
pub fn permute_graph(graph: &JoinGraph, perm: &[usize]) -> JoinGraph {
    use crate::graph::{ColRef, JoinEdge};
    let n = graph.len();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!(p < n && !seen[p], "not a permutation");
        seen[p] = true;
    }
    let mut relations = vec![graph.relation(0); n];
    for (old, &new) in perm.iter().enumerate() {
        relations[new] = graph.relation(old);
    }
    let edges = graph
        .edges()
        .iter()
        .map(|e| {
            JoinEdge::new(
                ColRef::new(perm[e.left.node], e.left.col),
                ColRef::new(perm[e.right.node], e.right.col),
            )
        })
        .collect();
    let mut out = JoinGraph::new(relations, edges);
    for f in graph.filters() {
        out.add_filter(crate::predicate::Predicate::new(
            ColRef::new(perm[f.column.node], f.column.col),
            f.op,
            f.value,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ColRef, JoinEdge};
    use crate::predicate::{PredOp, Predicate};
    use crate::topology::Topology;
    use sdp_catalog::{ColId, RelId};

    fn graph_for(topo: Topology) -> JoinGraph {
        let rels = (0..topo.n()).map(|i| RelId(i as u32)).collect();
        let edges = topo
            .edge_pairs()
            .into_iter()
            .map(|(a, b)| {
                JoinEdge::new(
                    ColRef::new(a, ColId((b % 7) as u16)),
                    ColRef::new(b, ColId((a % 5) as u16)),
                )
            })
            .collect();
        JoinGraph::new(rels, edges)
    }

    #[test]
    fn stable_hasher_is_deterministic_and_seeded() {
        assert_eq!(stable_hash(1, &[2, 3]), stable_hash(1, &[2, 3]));
        assert_ne!(stable_hash(1, &[2, 3]), stable_hash(2, &[2, 3]));
        assert_ne!(stable_hash(1, &[2, 3]), stable_hash(1, &[3, 2]));
    }

    #[test]
    fn hash_is_invariant_under_node_permutation() {
        for topo in [
            Topology::Chain(6),
            Topology::Star(6),
            Topology::Cycle(5),
            Topology::star_chain(8),
            Topology::Clique(5),
        ] {
            let g = graph_for(topo);
            let n = g.len();
            // A fixed non-trivial permutation: rotate by 1, then swap
            // the first two images.
            let mut perm: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
            perm.swap(0, 1);
            let p = permute_graph(&g, &perm);
            assert_eq!(graph_hash(&g), graph_hash(&p), "{topo}");
        }
    }

    #[test]
    fn hash_is_invariant_under_edge_declaration_order() {
        let g = graph_for(Topology::Star(7));
        let mut edges: Vec<JoinEdge> = g.edges().to_vec();
        edges.reverse();
        let r = JoinGraph::new(g.relations().to_vec(), edges);
        assert_eq!(graph_hash(&g), graph_hash(&r));
    }

    #[test]
    fn hash_distinguishes_topologies_and_labels() {
        let chain = graph_for(Topology::Chain(6));
        let star = graph_for(Topology::Star(6));
        let cycle = graph_for(Topology::Cycle(6));
        assert_ne!(graph_hash(&chain), graph_hash(&star));
        assert_ne!(graph_hash(&chain), graph_hash(&cycle));
        assert_ne!(graph_hash(&star), graph_hash(&cycle));

        // Changing one join column changes the hash.
        let mut edges: Vec<JoinEdge> = chain.edges().to_vec();
        edges[0] = JoinEdge::new(
            ColRef::new(0, ColId(23)),
            ColRef::new(1, edges[0].right.col),
        );
        let relabelled = JoinGraph::new(chain.relations().to_vec(), edges);
        assert_ne!(graph_hash(&chain), graph_hash(&relabelled));
    }

    #[test]
    fn filters_contribute_order_independently() {
        let mut a = graph_for(Topology::Chain(4));
        let mut b = graph_for(Topology::Chain(4));
        let p1 = Predicate::new(ColRef::new(1, ColId(9)), PredOp::Lt, 50);
        let p2 = Predicate::new(ColRef::new(2, ColId(8)), PredOp::Eq, 7);
        a.add_filter(p1);
        a.add_filter(p2);
        b.add_filter(p2);
        b.add_filter(p1);
        assert_eq!(graph_hash(&a), graph_hash(&b));

        let mut c = graph_for(Topology::Chain(4));
        c.add_filter(p1);
        assert_ne!(graph_hash(&a), graph_hash(&c), "missing filter");

        let mut d = graph_for(Topology::Chain(4));
        d.add_filter(Predicate::new(ColRef::new(1, ColId(9)), PredOp::Lt, 51));
        d.add_filter(p2);
        assert_ne!(graph_hash(&a), graph_hash(&d), "different constant");
    }

    #[test]
    fn directional_edge_labels_are_not_conflated() {
        // a.c0 = b.c1 vs a.c1 = b.c0: same column multiset, different
        // attachment — must hash differently.
        let g1 = JoinGraph::new(
            vec![RelId(0), RelId(1)],
            vec![JoinEdge::new(
                ColRef::new(0, ColId(0)),
                ColRef::new(1, ColId(1)),
            )],
        );
        let g2 = JoinGraph::new(
            vec![RelId(0), RelId(1)],
            vec![JoinEdge::new(
                ColRef::new(0, ColId(1)),
                ColRef::new(1, ColId(0)),
            )],
        );
        assert_ne!(graph_hash(&g1), graph_hash(&g2));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_permutations() {
        let g = graph_for(Topology::Chain(3));
        let _ = permute_graph(&g, &[0, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "one label per node")]
    fn wl_hash_validates_label_lengths() {
        let g = graph_for(Topology::Chain(3));
        let labels = WlLabels {
            node_labels: vec![0; 2],
            edge_labels: vec![(0, 0); 2],
        };
        let _ = wl_hash(&g, &labels);
    }
}
