//! Local selection predicates (`WHERE col ⊕ constant`).
//!
//! The paper's benchmark queries are pure join queries, but a usable
//! optimizer must handle selections; they are implemented end-to-end
//! (estimation, access-path choice, execution) as a documented
//! extension. Predicates are attached to the join graph — they are
//! part of the query's relational structure, exactly like join edges —
//! and pushed down into the scans by the enumerators.

use std::fmt;

use crate::graph::ColRef;

/// Comparison operator of a selection predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredOp {
    /// `col = v`
    Eq,
    /// `col < v`
    Lt,
    /// `col <= v`
    Le,
    /// `col > v`
    Gt,
    /// `col >= v`
    Ge,
}

impl PredOp {
    /// Evaluate the comparison.
    #[inline]
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            PredOp::Eq => lhs == rhs,
            PredOp::Lt => lhs < rhs,
            PredOp::Le => lhs <= rhs,
            PredOp::Gt => lhs > rhs,
            PredOp::Ge => lhs >= rhs,
        }
    }

    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            PredOp::Eq => "=",
            PredOp::Lt => "<",
            PredOp::Le => "<=",
            PredOp::Gt => ">",
            PredOp::Ge => ">=",
        }
    }
}

impl fmt::Display for PredOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A single-column selection `column ⊕ value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Filtered column.
    pub column: ColRef,
    /// Comparison operator.
    pub op: PredOp,
    /// Constant operand (a value of the column's integer domain).
    pub value: i64,
}

impl Predicate {
    /// Construct a predicate.
    pub fn new(column: ColRef, op: PredOp, value: i64) -> Self {
        Predicate { column, op, value }
    }

    /// Whether a tuple value satisfies the predicate.
    #[inline]
    pub fn matches(&self, value: i64) -> bool {
        self.op.eval(value, self.value)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n{}.{} {} {}",
            self.column.node, self.column.col, self.op, self.value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::ColId;

    #[test]
    fn operators_evaluate_correctly() {
        assert!(PredOp::Eq.eval(5, 5));
        assert!(!PredOp::Eq.eval(5, 6));
        assert!(PredOp::Lt.eval(4, 5));
        assert!(!PredOp::Lt.eval(5, 5));
        assert!(PredOp::Le.eval(5, 5));
        assert!(PredOp::Gt.eval(6, 5));
        assert!(PredOp::Ge.eval(5, 5));
        assert!(!PredOp::Ge.eval(4, 5));
    }

    #[test]
    fn predicate_matches_tuple_values() {
        let p = Predicate::new(ColRef::new(2, ColId(3)), PredOp::Le, 100);
        assert!(p.matches(100));
        assert!(p.matches(-5));
        assert!(!p.matches(101));
    }

    #[test]
    fn display_is_sql_like() {
        let p = Predicate::new(ColRef::new(1, ColId(0)), PredOp::Gt, 42);
        assert_eq!(p.to_string(), "n1.c0 > 42");
        assert_eq!(PredOp::Le.to_string(), "<=");
    }
}
