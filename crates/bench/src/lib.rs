//! # sdp-bench — Criterion benchmarks per paper table/figure
//!
//! Each bench target regenerates the *timing* dimension of one paper
//! table; the full tables (quality classes, memory, plans costed) are
//! produced by the `sdp-experiments` binary in `sdp-harness`.
//!
//! | bench target | paper artifact |
//! |---|---|
//! | `table_1_2_star_chain_overheads` | Table 1.2 / 1.4 — optimization time per technique on star-chains |
//! | `table_2_1_dp_chain_vs_star` | Table 2.1 — DP cost growth, chain vs star |
//! | `table_2_3_skyline_options` | Table 2.3 — Option 1 vs Option 2 (vs strong skyline) |
//! | `table_3_2_star_overheads` | Table 3.2 — per-technique time on pure stars |
//! | `table_3_3_scaleup` | Table 3.3 — large-star optimization time |
//! | `table_3_6_local_vs_global` | Table 3.6 — local vs global pruning effort |
//! | `figure_1_2_quality_vs_effort` | Figure 1.2 — effort axis per technique |
//! | `skyline_kernels` | substrate: BNL vs SFS vs pairwise union vs k-dominant |
//! | `scaleup_threads` | extension: enumeration thread scale-up on large stars |
//! | `plan_cache` | extension: service-layer cold miss vs warm hit vs coalesced requests |

#![warn(missing_docs)]

use sdp_catalog::Catalog;
use sdp_core::{Algorithm, OptimizedPlan, Optimizer};
use sdp_query::{Query, QueryGenerator, Topology};

/// Build a deterministic query instance on the paper catalog.
pub fn paper_query(catalog: &Catalog, topology: Topology, seed: u64, k: u64) -> Query {
    QueryGenerator::new(catalog, topology, seed).instance(k)
}

/// Optimize, panicking on infeasibility (bench configurations are
/// chosen feasible).
pub fn optimize(catalog: &Catalog, query: &Query, algorithm: Algorithm) -> OptimizedPlan {
    Optimizer::new(catalog)
        .optimize(query, algorithm)
        .expect("bench configuration must be feasible")
}

/// [`optimize`] with an explicit enumeration thread count, for the
/// thread scale-up benchmark.
pub fn optimize_with_threads(
    catalog: &Catalog,
    query: &Query,
    algorithm: Algorithm,
    threads: usize,
) -> OptimizedPlan {
    Optimizer::new(catalog)
        .with_parallelism(threads)
        .optimize(query, algorithm)
        .expect("bench configuration must be feasible")
}
