//! Substrate micro-benchmarks: the skyline kernels SDP's pruning is
//! built on, at SDP-partition-like sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdp_skyline::{
    k_dominant_skyline, pairwise_union_skyline, skyline_bnl, skyline_dnc, skyline_sfs,
};

fn random_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..3).map(|_| rng.gen_range(0.0..1e6)).collect())
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("skyline_kernels");
    for n in [64usize, 512, 4096] {
        let pts = random_points(n, 42);
        g.bench_with_input(BenchmarkId::new("bnl", n), &pts, |b, p| {
            b.iter(|| skyline_bnl(p).len())
        });
        g.bench_with_input(BenchmarkId::new("sfs", n), &pts, |b, p| {
            b.iter(|| skyline_sfs(p).len())
        });
        g.bench_with_input(BenchmarkId::new("pairwise_union", n), &pts, |b, p| {
            b.iter(|| pairwise_union_skyline(p).len())
        });
        g.bench_with_input(BenchmarkId::new("dnc", n), &pts, |b, p| {
            b.iter(|| skyline_dnc(p).len())
        });
        if n <= 512 {
            g.bench_with_input(BenchmarkId::new("k_dominant_2", n), &pts, |b, p| {
                b.iter(|| k_dominant_skyline(p, 2).len())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
