//! Plan-cache request-path throughput: cold miss (full enumeration)
//! vs warm hit (fingerprint + sharded-LRU probe) vs coalesced
//! concurrent requests, on star and star-chain workloads.
//!
//! The cold/warm gap is the service layer's whole value proposition:
//! a warm hit replaces an enumeration costing thousands of plans with
//! one WL fingerprint pass and one shard-mutex probe. The coalesced
//! case replays 8 concurrent identical requests against a cleared
//! cache — at most one enumeration runs, the other seven block on its
//! flight. See EXPERIMENTS.md for recorded results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::paper_query;
use sdp_catalog::Catalog;
use sdp_core::Algorithm;
use sdp_query::Topology;
use sdp_service::{OptimizerService, PlanSource, ServiceConfig, ServiceRequest};
use std::sync::{Arc, Barrier};

fn service(catalog: &Catalog) -> OptimizerService {
    OptimizerService::new(
        catalog.clone(),
        ServiceConfig {
            cache_capacity: 256,
            cache_shards: 4,
            parallelism: Some(1),
            enumerator: None,
            ..ServiceConfig::default()
        },
    )
}

fn bench(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let mut g = c.benchmark_group("plan_cache");
    g.sample_size(10);

    for topo in [Topology::Star(9), Topology::star_chain(9)] {
        let query = paper_query(&catalog, topo, 11, 0);
        let request = ServiceRequest::query(query).with_algorithm(Algorithm::Dp);

        // Cold miss: epoch-bump between iterations so every request
        // re-enumerates (the bump itself is two atomics and a sweep of
        // a one-entry cache — noise against an enumeration).
        let svc = service(&catalog);
        g.bench_with_input(
            BenchmarkId::new("cold_miss", topo.label()),
            &request,
            |b, req| {
                b.iter(|| {
                    svc.bump_stats_epoch();
                    let resp = svc.get_plan(req).unwrap();
                    assert_eq!(resp.source, PlanSource::Fresh);
                    resp.plan.cost
                })
            },
        );

        // Warm hit: first request seeds the cache, every iteration is
        // a fingerprint + probe.
        let svc = service(&catalog);
        svc.get_plan(&request).unwrap();
        g.bench_with_input(
            BenchmarkId::new("warm_hit", topo.label()),
            &request,
            |b, req| {
                b.iter(|| {
                    let resp = svc.get_plan(req).unwrap();
                    assert_eq!(resp.plans_costed, 0);
                    resp.plan.cost
                })
            },
        );

        // Coalesced: 8 clients fire the same request at a cleared
        // cache; one leads, seven coalesce (or hit, if they lose the
        // race to the leader's completion).
        let svc = Arc::new(service(&catalog));
        g.bench_with_input(
            BenchmarkId::new("coalesced_8", topo.label()),
            &request,
            |b, req| {
                b.iter(|| {
                    svc.bump_stats_epoch(); // clear so one enumeration runs
                    let barrier = Arc::new(Barrier::new(8));
                    std::thread::scope(|scope| {
                        for _ in 0..8 {
                            let (svc, barrier) = (Arc::clone(&svc), Arc::clone(&barrier));
                            scope.spawn(move || {
                                barrier.wait();
                                svc.get_plan(req).unwrap().plan.cost
                            });
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
