//! Enumeration-strategy comparison: candidate-pair generation cost in
//! isolation (over a pre-built exhaustive survivor table) and
//! end-to-end optimization, LevelScan versus DPccp versus DPconv,
//! across the four canonical topologies.
//!
//! Infeasible combinations are omitted rather than sampled thin:
//! exhaustive DP on Clique(15)/Clique(20) (~3^n pairs) and Star(20)
//! does not complete in benchmark time under any pair-generation
//! strategy — the bottleneck is costing, not generation. See
//! EXPERIMENTS.md for the quality-versus-effort table these numbers
//! feed.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::paper_query;
use sdp_catalog::Catalog;
use sdp_core::dp::run_levels_with;
use sdp_core::{Algorithm, Budget, EnumContext, EnumeratorKind, LevelScan, Optimizer};
use sdp_cost::CostModel;
use sdp_query::{Query, RelSet, Topology};

/// (topology, sizes) pairs where the exhaustive table itself is cheap
/// enough to rebuild in a bench harness.
fn generation_cases() -> Vec<(&'static str, Topology)> {
    vec![
        ("chain_10", Topology::Chain(10)),
        ("chain_15", Topology::Chain(15)),
        ("chain_20", Topology::Chain(20)),
        ("cycle_10", Topology::Cycle(10)),
        ("cycle_15", Topology::Cycle(15)),
        ("cycle_20", Topology::Cycle(20)),
        ("star_10", Topology::Star(10)),
        ("star_15", Topology::Star(15)),
        ("clique_10", Topology::Clique(10)),
    ]
}

fn bench_generation(c: &mut Criterion) {
    let catalog = Catalog::extended(32);
    let model = CostModel::with_defaults(&catalog);
    let mut g = c.benchmark_group("enumeration_pairs");
    g.sample_size(10);
    for (label, topo) in generation_cases() {
        let query: Query = paper_query(&catalog, topo, 1, 0);
        let n = query.num_relations();
        let mut ctx = EnumContext::new(&query, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        for i in 0..n {
            ctx.ensure_base_group(i);
        }
        let atoms: Vec<RelSet> = (0..n).map(RelSet::single).collect();
        let mut scan = LevelScan;
        let table = run_levels_with(&mut ctx, &atoms, n, None, &mut scan).unwrap();
        for kind in [EnumeratorKind::LevelScan, EnumeratorKind::Dpccp] {
            g.bench_with_input(BenchmarkId::new(kind.label(), label), &table, |b, table| {
                let mut e = kind.build();
                e.prepare(&ctx, &atoms, n);
                b.iter(|| {
                    let mut total = 0usize;
                    for s in 2..=n {
                        total += e.level_pairs(&ctx, table, s).len();
                    }
                    black_box(total)
                })
            });
        }
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let catalog = Catalog::extended(32);
    let mut g = c.benchmark_group("enumeration_e2e");
    g.sample_size(10);
    for (label, topo) in generation_cases() {
        let query = paper_query(&catalog, topo, 1, 0);
        for kind in [
            EnumeratorKind::LevelScan,
            EnumeratorKind::Dpccp,
            EnumeratorKind::DpConv,
        ] {
            let optimizer = Optimizer::new(&catalog).with_enumerator(kind);
            g.bench_with_input(BenchmarkId::new(kind.label(), label), &query, |b, q| {
                b.iter(|| optimizer.optimize(q, Algorithm::Dp).unwrap().cost)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_generation, bench_end_to_end);
criterion_main!(benches);
