//! Table 3.3 — optimization time on very large stars (the maximum
//! scale-up experiment's time column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::{optimize, paper_query};
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, SdpConfig};
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::extended(64);
    let mut g = c.benchmark_group("table_3_3_scaleup");
    g.sample_size(10);
    for n in [24usize, 32, 48] {
        let query = paper_query(&catalog, Topology::Star(n), 7, 0);
        g.bench_with_input(BenchmarkId::new("SDP", n), &query, |b, q| {
            b.iter(|| optimize(&catalog, q, Algorithm::Sdp(SdpConfig::paper())).cost)
        });
        if n <= 32 {
            g.bench_with_input(BenchmarkId::new("IDP4", n), &query, |b, q| {
                b.iter(|| optimize(&catalog, q, Algorithm::Idp { k: 4 }).cost)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
