//! Warm-restart value proposition (ISSUE 7, satellite 6): the
//! first-request latency of a freshly *restarted* daemon, with and
//! without a durable plan store to warm-fill from.
//!
//! Each iteration measures the whole restart path the operator
//! experiences — service construction (including segment replay for
//! the warm case) plus the first `get_plan`. Cold pays a full
//! enumeration; warm pays a segment-log replay, codec decode and one
//! cache probe. `warm_fill_only` isolates the replay itself so the
//! crossover point (how many cached plans a replay is worth) can be
//! read directly. See EXPERIMENTS.md § warm restart for recorded
//! numbers.

use std::path::PathBuf;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::paper_query;
use sdp_catalog::Catalog;
use sdp_core::Algorithm;
use sdp_query::Topology;
use sdp_service::{OptimizerService, PlanSource, ServiceConfig, ServiceRequest};

fn service(catalog: &Catalog) -> OptimizerService {
    OptimizerService::new(
        catalog.clone(),
        ServiceConfig {
            cache_capacity: 256,
            cache_shards: 4,
            parallelism: Some(1),
            enumerator: None,
            ..ServiceConfig::default()
        },
    )
}

/// A store directory pre-populated with `distinct` optimized plans,
/// exactly as a prior daemon run would leave it.
fn populated_dir(catalog: &Catalog, distinct: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "sdp-bench-warm-restart-{}-{distinct}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let svc = service(catalog).with_store(&dir).unwrap();
    for k in 0..distinct {
        let query = paper_query(catalog, Topology::Star(9), 11, k);
        svc.get_plan(&ServiceRequest::query(query).with_algorithm(Algorithm::Dp))
            .unwrap();
    }
    svc.flush_store();
    dir
}

fn bench(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let mut g = c.benchmark_group("warm_restart");
    g.sample_size(10);

    // Cold restart: no persistent tier, first request enumerates.
    let query = paper_query(&catalog, Topology::Star(9), 11, 0);
    let request = ServiceRequest::query(query).with_algorithm(Algorithm::Dp);
    g.bench_function("cold_first_request", |b| {
        b.iter(|| {
            let svc = service(&catalog);
            let resp = svc.get_plan(black_box(&request)).unwrap();
            assert_eq!(resp.source, PlanSource::Fresh);
            resp.plan.root.cost
        })
    });

    // Warm restart: replay `distinct` persisted plans, then serve the
    // first request from the warm-filled cache.
    for distinct in [1u64, 8, 32] {
        let dir = populated_dir(&catalog, distinct);
        g.bench_with_input(
            BenchmarkId::new("warm_first_request", distinct),
            &distinct,
            |b, _| {
                b.iter(|| {
                    let svc = service(&catalog).with_store(&dir).unwrap();
                    let resp = svc.get_plan(black_box(&request)).unwrap();
                    assert_eq!(resp.source, PlanSource::Cache);
                    assert!(svc.store_counters().snapshot().warm_hits > 0);
                    resp.plan.root.cost
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("warm_fill_only", distinct),
            &distinct,
            |b, _| {
                b.iter(|| {
                    let svc = service(&catalog).with_store(&dir).unwrap();
                    svc.store_counters().snapshot().warm_fills
                })
            },
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
