//! Observability overhead guard: the flight recorder and the Q-error
//! instrumentation must each cost < 2 % on the paths that pay for
//! them when enabled, and nothing on the paths that don't.
//!
//! Three comparisons, each a baseline/instrumented pair on the same
//! workload:
//!
//! * `request_path` / `fresh_path`: requests through the service with
//!   a `NullSink` tracer vs a `FlightRecorder` sink (ring only, no
//!   durable log — the log write is I/O, measured by the smoke, not a
//!   CPU overhead question). Both columns pay span construction, so
//!   the delta isolates the recorder. The warm hit is the worst case
//!   (one projected event against microseconds of work); the fresh
//!   path is what the 2 % budget is judged on.
//! * `execute_path`: `execute()` vs `execute_observed()` on a
//!   materialized star-chain join — the observed variant pays one
//!   post-order `NodeObservation` push (two `String` clones and a
//!   detail render) per plan node.
//! * `aggregation`: folding a realistic observation batch into the
//!   `QErrorObservatory` — not a baseline pair, just a ceiling check
//!   that aggregation stays far below execution cost.
//!
//! The plain-`execute` column doubles as the `--no-default-features`
//! discipline check: observation is threaded as an `Option` that the
//! un-observed path never constructs, so the baseline column here IS
//! the uninstrumented cost. Recorded results live in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::paper_query;
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, Optimizer};
use sdp_engine::{execute, execute_observed, scaled_catalog, Database};
use sdp_obs::{FlightRecorder, Observation, QErrorObservatory, DEFAULT_FLIGHT_CAPACITY};
use sdp_query::{QueryGenerator, Topology};
use sdp_service::{OptimizerService, ServiceConfig, ServiceRequest};
use sdp_trace::{NullSink, TraceSink, Tracer};
use std::sync::Arc;

/// Both columns attach a tracer so both pay span construction — that
/// cost belongs to the tracing guard (EXPERIMENTS.md, PR 5), not this
/// one. The baseline drops events in a `NullSink`; the instrumented
/// column projects them through the `FlightRecorder`, so the delta is
/// exactly the recorder's filter + projection + ring push.
fn service(catalog: &Catalog, recorder: Option<Arc<FlightRecorder>>) -> OptimizerService {
    let config = ServiceConfig {
        cache_capacity: 64,
        cache_shards: 4,
        parallelism: Some(1),
        enumerator: None,
        ..ServiceConfig::default()
    };
    let sink: Arc<dyn TraceSink> = match recorder {
        Some(recorder) => recorder,
        None => Arc::new(NullSink),
    };
    OptimizerService::new(catalog.clone(), config).with_tracer(Tracer::new(sink))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);

    // Warm-hit request path: one fingerprint pass + one shard probe,
    // with and without a flight-recorder sink projecting the event.
    let catalog = Catalog::paper();
    let query = paper_query(&catalog, Topology::star_chain(9), 11, 0);
    for (label, recorder) in [
        ("baseline", None),
        (
            "flight_recorder",
            Some(Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))),
        ),
    ] {
        let svc = service(&catalog, recorder);
        let request = ServiceRequest::query(query.clone()).with_algorithm(Algorithm::Dp);
        svc.get_plan(&request).expect("warm fill");
        g.bench_with_input(
            BenchmarkId::new("request_path", label),
            &request,
            |b, req| b.iter(|| svc.get_plan(req).expect("warm hit")),
        );
    }

    // Fresh-optimization path: the realistic per-request cost the
    // 2 % budget is measured against — a full enumeration with the
    // recorder projecting its request event vs without.
    for (label, recorder) in [
        ("baseline", None),
        (
            "flight_recorder",
            Some(Arc::new(FlightRecorder::new(DEFAULT_FLIGHT_CAPACITY))),
        ),
    ] {
        let svc = service(&catalog, recorder);
        let request = ServiceRequest::query(query.clone()).with_algorithm(Algorithm::Dp);
        g.bench_with_input(BenchmarkId::new("fresh_path", label), &request, |b, req| {
            b.iter(|| {
                svc.bump_stats_epoch();
                svc.get_plan(req).expect("fresh optimization").plan.cost
            })
        });
    }

    // Execution path: the same plan over the same materialized data,
    // plain vs observed.
    let exec_catalog = scaled_catalog(8, 200, 11);
    let db = Database::generate(&exec_catalog, 11);
    let exec_query = QueryGenerator::new(&exec_catalog, Topology::star_chain(6), 11).instance(0);
    let plan = Optimizer::new(&exec_catalog)
        .optimize(&exec_query, Algorithm::Dp)
        .expect("feasible");
    g.bench_function(BenchmarkId::new("execute_path", "baseline"), |b| {
        b.iter(|| execute(&plan.root, &exec_query, &exec_catalog, &db).expect("executes"))
    });
    g.bench_function(BenchmarkId::new("execute_path", "observed"), |b| {
        b.iter(|| execute_observed(&plan.root, &exec_query, &exec_catalog, &db).expect("executes"))
    });

    // Aggregation ceiling: folding one executed plan's worth of
    // observations (11 nodes) into a warm observatory.
    let (_, nodes) =
        execute_observed(&plan.root, &exec_query, &exec_catalog, &db).expect("executes");
    let batch: Vec<Observation> = nodes
        .iter()
        .map(|n| Observation {
            fingerprint: 0x5eed,
            path: n.path.clone(),
            kind: n.kind.clone(),
            detail: n.detail.clone(),
            estimated: n.estimated,
            actual: n.actual,
        })
        .collect();
    g.bench_function(BenchmarkId::new("aggregation", "observe_plan"), |b| {
        let mut observatory = QErrorObservatory::new();
        b.iter(|| {
            observatory.observe_all(&batch);
            observatory.observed()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
