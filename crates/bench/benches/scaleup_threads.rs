//! Thread scale-up of the parallel level-wise enumerator: SDP on
//! large stars at 1, 2, 4 and all available worker threads. The
//! chosen plan is bit-identical at every thread count (asserted
//! here), so the sweep isolates pure wall-clock scaling of the
//! shard-and-merge level loop and the parallel skyline pruning.
//!
//! Interpreting the numbers requires knowing the host's core count
//! (`std::thread::available_parallelism`): on a single-core runner
//! every thread count serializes onto one CPU and the sweep measures
//! the (small) coordination overhead instead of speed-up. See
//! EXPERIMENTS.md for recorded results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::{optimize_with_threads, paper_query};
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, SdpConfig};
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::extended(64);
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut counts = vec![1usize, 2, 4];
    if !counts.contains(&available) {
        counts.push(available);
    }

    let mut g = c.benchmark_group("scaleup_threads");
    g.sample_size(10);
    for n in [25usize, 45] {
        let query = paper_query(&catalog, Topology::Star(n), 7, 0);
        let baseline =
            optimize_with_threads(&catalog, &query, Algorithm::Sdp(SdpConfig::paper()), 1);
        for &t in &counts {
            let plan =
                optimize_with_threads(&catalog, &query, Algorithm::Sdp(SdpConfig::paper()), t);
            assert_eq!(
                plan.cost.to_bits(),
                baseline.cost.to_bits(),
                "thread count changed the chosen plan"
            );
            g.bench_with_input(
                BenchmarkId::new(format!("SDP/star{n}"), t),
                &query,
                |b, q| {
                    b.iter(|| {
                        optimize_with_threads(&catalog, q, Algorithm::Sdp(SdpConfig::paper()), t)
                            .cost
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
