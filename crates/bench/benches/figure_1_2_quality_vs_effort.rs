//! Figure 1.2 — the effort axis of the quality/effort trade-off:
//! per-technique optimization time on the reference Star-Chain-15.

use criterion::{criterion_group, criterion_main, Criterion};
use sdp_bench::{optimize, paper_query};
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, SdpConfig};
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let query = paper_query(&catalog, Topology::star_chain(15), 0x5d9_2007, 0);
    let mut g = c.benchmark_group("figure_1_2_effort");
    g.sample_size(10);
    for (alg, label) in [
        (Algorithm::Dp, "DP"),
        (Algorithm::Idp { k: 4 }, "IDP4"),
        (Algorithm::Idp { k: 7 }, "IDP7"),
        (Algorithm::Sdp(SdpConfig::paper()), "SDP"),
        (Algorithm::Goo, "GOO"),
    ] {
        g.bench_function(label, |b| b.iter(|| optimize(&catalog, &query, alg).cost));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
