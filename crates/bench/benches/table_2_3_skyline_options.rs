//! Table 2.3 — skyline Option 1 (full vector) vs Option 2 (pairwise
//! union) vs the future-work strong skyline, as SDP pruning functions.

use criterion::{criterion_group, criterion_main, Criterion};
use sdp_bench::{optimize, paper_query};
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, Partitioning, SdpConfig, SkylineOption};
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let query = paper_query(&catalog, Topology::star_chain(15), 0x5d9_2007, 0);
    let mut g = c.benchmark_group("table_2_3_skyline_options");
    g.sample_size(10);
    for (label, skyline) in [
        ("option1_full_vector", SkylineOption::FullVector),
        ("option2_pairwise_union", SkylineOption::PairwiseUnion),
        ("strong_2_dominant", SkylineOption::KDominant(2)),
    ] {
        let alg = Algorithm::Sdp(SdpConfig {
            partitioning: Partitioning::RootHub,
            skyline,
        });
        g.bench_function(label, |b| b.iter(|| optimize(&catalog, &query, alg).cost));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
