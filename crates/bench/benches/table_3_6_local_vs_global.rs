//! Table 3.6 — localized (hub-partitioned) versus global skyline
//! pruning: the effort side of the ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use sdp_bench::{optimize, paper_query};
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, Partitioning, SdpConfig, SkylineOption};
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let query = paper_query(&catalog, Topology::star_chain(20), 0x5d9_2007, 0);
    let mut g = c.benchmark_group("table_3_6_local_vs_global");
    g.sample_size(10);
    for (label, partitioning) in [
        ("local_root_hub", Partitioning::RootHub),
        ("global", Partitioning::Global),
        ("parent_hub", Partitioning::ParentHub),
    ] {
        let alg = Algorithm::Sdp(SdpConfig {
            partitioning,
            skyline: SkylineOption::PairwiseUnion,
        });
        g.bench_function(label, |b| b.iter(|| optimize(&catalog, &query, alg).cost));
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
