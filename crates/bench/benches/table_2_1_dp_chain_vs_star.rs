//! Table 2.1 — exhaustive DP's cost growth on chains versus stars,
//! the observation motivating localized pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::{optimize, paper_query};
use sdp_catalog::Catalog;
use sdp_core::Algorithm;
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::extended(32);
    let mut g = c.benchmark_group("table_2_1_dp");
    g.sample_size(10);
    for n in [8usize, 12, 16, 20, 24, 28] {
        let query = paper_query(&catalog, Topology::Chain(n), 1, 0);
        g.bench_with_input(BenchmarkId::new("chain", n), &query, |b, q| {
            b.iter(|| optimize(&catalog, q, Algorithm::Dp).cost)
        });
    }
    for n in [8usize, 12, 14] {
        let query = paper_query(&catalog, Topology::Star(n), 1, 0);
        g.bench_with_input(BenchmarkId::new("star", n), &query, |b, q| {
            b.iter(|| optimize(&catalog, q, Algorithm::Dp).cost)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
