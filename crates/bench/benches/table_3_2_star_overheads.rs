//! Table 3.2 — optimization time per technique on pure stars
//! (feasible configurations only).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdp_bench::{optimize, paper_query};
use sdp_catalog::Catalog;
use sdp_core::{Algorithm, SdpConfig};
use sdp_query::Topology;

fn bench(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let mut g = c.benchmark_group("table_3_2_star");
    g.sample_size(10);
    for n in [15usize, 20, 23] {
        let query = paper_query(&catalog, Topology::Star(n), 0x5d9_2007, 0);
        let mut algs = vec![
            (Algorithm::Idp { k: 4 }, "IDP4"),
            (Algorithm::Sdp(SdpConfig::paper()), "SDP"),
        ];
        if n <= 15 {
            algs.insert(0, (Algorithm::Dp, "DP"));
        }
        if n <= 20 {
            algs.push((Algorithm::Idp { k: 7 }, "IDP7"));
        }
        for (alg, label) in algs {
            g.bench_with_input(BenchmarkId::new(label, n), &query, |b, q| {
                b.iter(|| optimize(&catalog, q, alg).cost)
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
