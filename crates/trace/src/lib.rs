//! # sdp-trace — structured tracing for the optimizer stack
//!
//! A zero-dependency span/event layer shared by `sdp-core` and
//! `sdp-service`. Design constraints, in order:
//!
//! 1. **Determinism.** The optimizer's parallel enumeration is
//!    bit-identical at any thread count (PR 1's shard-merge
//!    discipline), and traces must be too: the *canonical* rendering
//!    of a trace ([`canonical_dump`]) is byte-identical at
//!    `SDP_THREADS=1` and `4` for the same query and fault schedule.
//!    Two rules make that hold: wall-clock timestamps live in a
//!    dedicated [`Event::wall_micros`] slot that canonical rendering
//!    ignores, and events produced on worker threads are staged in
//!    per-thread [`EventBuffer`]s that the coordinating thread drains
//!    in deterministic (chunk/creation) order at level barriers —
//!    never raced into a shared sink.
//! 2. **Near-zero cost when disabled.** A [`Tracer`] over the no-op
//!    [`NullSink`] (or no sink at all) answers [`Tracer::enabled`]
//!    with `false` from an inlined `Option`/bool check, and every
//!    emission site builds its payload behind that check
//!    ([`Tracer::emit_with`]), so a disabled build pays one branch per
//!    site. `sdp-core` additionally gates its instrumentation behind a
//!    `trace` cargo feature for a provably zero-cost opt-out.
//! 3. **No dependencies.** Events render themselves to the canonical
//!    line format and to `chrome://tracing`-compatible JSON
//!    ([`chrome_trace`]) with hand-rolled, fully deterministic
//!    formatting — no serde.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A single field value attached to an [`Event`].
///
/// The canonical rendering of every variant is deterministic:
/// integers and booleans print exactly, strings print verbatim, and
/// floats print via Rust's shortest-roundtrip `{:?}` formatting so
/// bit-identical floats always render to identical bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, sizes, set bitmaps).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (costs, cardinalities). Rendered via `{:?}`.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Text (labels, error messages, fingerprints).
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

impl Value {
    /// The value as an unsigned integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, when it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

/// One structured trace event: a static name plus ordered key/value
/// fields, with an optional wall-clock stamp.
///
/// `wall_micros` (microseconds since the emitting [`Tracer`]'s epoch)
/// is deliberately *outside* `fields`: it is the only
/// non-deterministic part of an event, used by [`chrome_trace`] for
/// timeline placement and ignored by [`Event::canonical`] so
/// determinism tests can compare dumps byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name, e.g. `"level"` or `"degrade"`.
    pub name: &'static str,
    /// Ordered key/value payload. Order is part of the canonical form.
    pub fields: Vec<(&'static str, Value)>,
    /// Microseconds since the tracer epoch at emission. Zero until the
    /// event passes through [`Tracer::emit`]. Non-canonical.
    pub wall_micros: u64,
}

impl Event {
    /// Start a new event with no fields.
    pub fn new(name: &'static str) -> Event {
        Event {
            name,
            fields: Vec::new(),
            wall_micros: 0,
        }
    }

    /// Append a field (builder style). Field order is preserved and is
    /// part of the canonical rendering.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Event {
        self.fields.push((key, value.into()));
        self
    }

    /// The first value recorded under `key`, if any — the lookup sink
    /// adapters (e.g. the flight recorder) use to project events into
    /// typed records without scanning `fields` by hand.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Deterministic one-line rendering: `name key=value key=value`.
    /// Excludes [`Event::wall_micros`].
    pub fn canonical(&self) -> String {
        let mut line = String::from(self.name);
        for (key, value) in &self.fields {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            line.push_str(&value.to_string());
        }
        line
    }
}

/// Destination for trace events. Implementations must be cheap to
/// probe via [`TraceSink::enabled`]: emission sites check it before
/// building payloads.
pub trait TraceSink: Send + Sync {
    /// Accept one event. Called only when [`TraceSink::enabled`] is
    /// true (probing and recording race benignly; sinks must tolerate
    /// records after flipping to disabled).
    fn record(&self, event: Event);

    /// Whether this sink currently wants events. Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: discards everything, reports itself disabled, so
/// emission sites skip payload construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// In-memory sink: a bounded ring of events (oldest dropped first)
/// behind a mutex, with a dropped-event counter.
#[derive(Debug, Default)]
pub struct MemorySink {
    inner: Mutex<Ring>,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Default for Ring {
    fn default() -> Self {
        Ring {
            events: VecDeque::new(),
            capacity: usize::MAX,
            dropped: 0,
        }
    }
}

impl MemorySink {
    /// Unbounded sink (bounded only by memory).
    pub fn unbounded() -> MemorySink {
        MemorySink::default()
    }

    /// Ring sink holding at most `capacity` events; older events are
    /// dropped (and counted) once full.
    pub fn with_capacity(capacity: usize) -> MemorySink {
        MemorySink {
            inner: Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Copy of all buffered events, in arrival order.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.iter().cloned().collect()
    }

    /// Drain and return all buffered events, in arrival order.
    pub fn take(&self) -> Vec<Event> {
        self.inner.lock().unwrap().events.drain(..).collect()
    }

    /// Number of events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: Event) {
        let mut ring = self.inner.lock().unwrap();
        if ring.events.len() >= ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }
}

/// Fans each event out to every inner sink (cloning the event).
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Tee over the given sinks. An empty tee is permanently disabled.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl fmt::Debug for TeeSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TeeSink")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: Event) {
        for sink in &self.sinks {
            if sink.enabled() {
                sink.record(event.clone());
            }
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }
}

/// Cloneable emission handle: an optional shared sink plus the epoch
/// wall timestamps are measured from.
///
/// A disabled tracer ([`Tracer::disabled`], also [`Default`]) carries
/// no sink; [`Tracer::enabled`] is then a single `Option` check and
/// [`Tracer::emit_with`] never runs its closure, which is what makes
/// instrumented-but-untraced runs near-free.
#[derive(Clone)]
pub struct Tracer {
    sink: Option<Arc<dyn TraceSink>>,
    epoch: Instant,
}

impl Tracer {
    /// Tracer feeding the given sink, with its epoch set to now.
    pub fn new(sink: Arc<dyn TraceSink>) -> Tracer {
        Tracer {
            sink: Some(sink),
            epoch: Instant::now(),
        }
    }

    /// Tracer with no sink: every probe is false, every emit a no-op.
    pub fn disabled() -> Tracer {
        Tracer {
            sink: None,
            epoch: Instant::now(),
        }
    }

    /// Whether events would currently reach a sink.
    #[inline]
    pub fn enabled(&self) -> bool {
        match &self.sink {
            Some(sink) => sink.enabled(),
            None => false,
        }
    }

    /// Microseconds since this tracer's epoch (for staging events on
    /// worker threads whose emission is deferred to a barrier).
    pub fn wall_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record `event`, stamping [`Event::wall_micros`] if unset.
    pub fn emit(&self, mut event: Event) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                if event.wall_micros == 0 {
                    event.wall_micros = self.wall_micros();
                }
                sink.record(event);
            }
        }
    }

    /// Build and record an event only if a sink wants it. This is the
    /// preferred emission form: the closure (and thus all payload
    /// allocation) is skipped entirely when tracing is off.
    #[inline]
    pub fn emit_with(&self, build: impl FnOnce() -> Event) {
        if self.enabled() {
            self.emit(build());
        }
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Per-thread staging buffer for events whose *emission order* must be
/// decided later, on the coordinating thread.
///
/// Worker threads push `(key, event)` pairs as they go; at the level
/// barrier the coordinator drains each buffer in shard (chunk) order
/// and forwards events keyed by items the shard actually owns —
/// exactly the discipline `sdp-core` uses to merge `LevelShard`s, so
/// the forwarded sequence matches what a sequential run emits inline.
///
/// The buffer is a bounded ring: once `capacity` is reached the oldest
/// staged event is dropped and counted. Dropping breaks the
/// determinism guarantee (a sequential run would have emitted the
/// event), so callers size buffers generously and surface
/// [`EventBuffer::dropped`] when nonzero.
#[derive(Debug)]
pub struct EventBuffer {
    events: VecDeque<(u64, Event)>,
    capacity: usize,
    dropped: u64,
}

impl Default for EventBuffer {
    /// An unbounded buffer, same as [`EventBuffer::new`].
    fn default() -> Self {
        EventBuffer::new()
    }
}

impl EventBuffer {
    /// Unbounded buffer.
    pub fn new() -> EventBuffer {
        EventBuffer {
            events: VecDeque::new(),
            capacity: usize::MAX,
            dropped: 0,
        }
    }

    /// Buffer holding at most `capacity` staged events.
    pub fn with_capacity(capacity: usize) -> EventBuffer {
        EventBuffer {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Stage an event under a caller-chosen key (e.g. a relation-set
    /// bitmap). Oldest events are dropped once the ring is full.
    pub fn push(&mut self, key: u64, event: Event) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((key, event));
    }

    /// Drain all staged events in push order.
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, Event)> + '_ {
        self.events.drain(..)
    }

    /// Number of staged events dropped due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Number of currently staged events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no staged events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Render events to the canonical dump: one [`Event::canonical`] line
/// per event, `\n`-separated, with a trailing newline when non-empty.
/// Byte-identical across thread counts for deterministic traces.
pub fn canonical_dump(events: &[Event]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.canonical());
        out.push('\n');
    }
    out
}

fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn json_value_into(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => out.push_str(&format!("{v:?}")),
        Value::F64(v) => {
            // NaN / infinities are not valid JSON numbers.
            out.push('"');
            out.push_str(&format!("{v:?}"));
            out.push('"');
        }
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(v) => {
            out.push('"');
            json_escape_into(out, v);
            out.push('"');
        }
    }
}

/// Render events as a `chrome://tracing` / Perfetto-compatible JSON
/// array of instant events (`"ph":"i"`), with `ts` taken from each
/// event's wall stamp and fields under `args`.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("[\n");
    for (i, event) in events.iter().enumerate() {
        out.push_str("  {\"name\":\"");
        json_escape_into(&mut out, event.name);
        out.push_str("\",\"ph\":\"i\",\"s\":\"p\",\"pid\":1,\"tid\":1,\"ts\":");
        out.push_str(&event.wall_micros.to_string());
        out.push_str(",\"args\":{");
        for (j, (key, value)) in event.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape_into(&mut out, key);
            out.push_str("\":");
            json_value_into(&mut out, value);
        }
        out.push_str("}}");
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_line_excludes_wall_stamp() {
        let mut a = Event::new("level").with("n", 3u64).with("cost", 1.5f64);
        let mut b = a.clone();
        a.wall_micros = 10;
        b.wall_micros = 99;
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), "level n=3 cost=1.5");
    }

    #[test]
    fn field_lookup_and_value_accessors() {
        let ev = Event::new("request")
            .with("fingerprint", "ab12")
            .with("plans_costed", 7u64);
        assert_eq!(
            ev.field("fingerprint").and_then(Value::as_str),
            Some("ab12")
        );
        assert_eq!(ev.field("plans_costed").and_then(Value::as_u64), Some(7));
        assert_eq!(ev.field("plans_costed").and_then(Value::as_str), None);
        assert!(ev.field("missing").is_none());
    }

    #[test]
    fn null_sink_reports_disabled() {
        let tracer = Tracer::new(Arc::new(NullSink));
        assert!(!tracer.enabled());
        let mut built = false;
        tracer.emit_with(|| {
            built = true;
            Event::new("never")
        });
        assert!(!built);
    }

    #[test]
    fn memory_sink_records_in_order() {
        let sink = Arc::new(MemorySink::unbounded());
        let tracer = Tracer::new(Arc::clone(&sink) as Arc<dyn TraceSink>);
        assert!(tracer.enabled());
        tracer.emit(Event::new("a"));
        tracer.emit(Event::new("b").with("k", "v"));
        let events = sink.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].canonical(), "b k=v");
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn memory_sink_ring_drops_oldest() {
        let sink = MemorySink::with_capacity(2);
        sink.record(Event::new("a"));
        sink.record(Event::new("b"));
        sink.record(Event::new("c"));
        let names: Vec<_> = sink.snapshot().iter().map(|e| e.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn tee_fans_out_and_skips_disabled() {
        let a = Arc::new(MemorySink::unbounded());
        let b = Arc::new(MemorySink::unbounded());
        let tee = TeeSink::new(vec![
            Arc::clone(&a) as Arc<dyn TraceSink>,
            Arc::new(NullSink) as Arc<dyn TraceSink>,
            Arc::clone(&b) as Arc<dyn TraceSink>,
        ]);
        assert!(tee.enabled());
        tee.record(Event::new("x"));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert!(!TeeSink::new(Vec::new()).enabled());
    }

    #[test]
    fn event_buffer_ring_semantics() {
        let mut buf = EventBuffer::with_capacity(2);
        buf.push(1, Event::new("a"));
        buf.push(2, Event::new("b"));
        buf.push(3, Event::new("c"));
        assert_eq!(buf.dropped(), 1);
        let drained: Vec<_> = buf.drain().map(|(k, e)| (k, e.name)).collect();
        assert_eq!(drained, vec![(2, "b"), (3, "c")]);
        assert!(buf.is_empty());
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let mut ev = Event::new("q\"uote")
            .with("s", "a\\b\n")
            .with("f", f64::INFINITY)
            .with("n", 7u64)
            .with("flag", true);
        ev.wall_micros = 42;
        let json = chrome_trace(&[ev]);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"name\":\"q\\\"uote\""));
        assert!(json.contains("\"ts\":42"));
        assert!(json.contains("\"s\":\"a\\\\b\\n\""));
        assert!(json.contains("\"f\":\"inf\""));
        assert!(json.contains("\"n\":7"));
        assert!(json.contains("\"flag\":true"));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn canonical_dump_lines() {
        let events = vec![Event::new("a"), Event::new("b").with("x", 1u64)];
        assert_eq!(canonical_dump(&events), "a\nb x=1\n");
        assert_eq!(canonical_dump(&[]), "");
    }
}
