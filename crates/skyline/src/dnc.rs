//! Divide-and-conquer skyline (Börzsönyi et al.'s D&C algorithm).
//!
//! Split on the median of the first dimension, compute both halves'
//! skylines recursively, then eliminate the right-half (higher-value)
//! candidates dominated by left-half skyline members. Asymptotically
//! `O(n log^{d-2} n)` for fixed dimensionality; in this codebase it
//! exists to cross-validate the BNL/SFS kernels and to serve larger
//! inputs in the benches.

use crate::dominates;

/// Compute the skyline via divide and conquer, returning ascending
/// indices into `points`.
pub fn skyline_dnc(points: &[Vec<f64>]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    let mut out = dnc(points, &mut idx);
    out.sort_unstable();
    out
}

fn dnc(points: &[Vec<f64>], idx: &mut [usize]) -> Vec<usize> {
    if idx.len() <= 8 {
        // Base case: windowed BNL over the indices.
        let mut window: Vec<usize> = Vec::new();
        'next: for &i in idx.iter() {
            let mut k = 0;
            while k < window.len() {
                if dominates(&points[window[k]], &points[i]) {
                    continue 'next;
                }
                if dominates(&points[i], &points[window[k]]) {
                    window.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            window.push(i);
        }
        return window;
    }

    // Split on the median of dimension 0.
    let mid = idx.len() / 2;
    idx.select_nth_unstable_by(mid, |&a, &b| {
        points[a][0]
            .partial_cmp(&points[b][0])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let (lo, hi) = idx.split_at_mut(mid);
    let left = dnc(points, lo);
    let right = dnc(points, hi);

    // Right-half members survive only if no left-half skyline member
    // dominates them (left can never be dominated by right on dim 0…
    // except for ties, which the dominance test itself resolves).
    let mut merged = left.clone();
    'cand: for &r in &right {
        for &l in &left {
            if dominates(&points[l], &points[r]) {
                continue 'cand;
            }
        }
        merged.push(r);
    }
    // Ties on dim 0 can also let a right member dominate a left one.
    let snapshot = merged.clone();
    merged.retain(|&m| {
        !snapshot
            .iter()
            .any(|&o| o != m && dominates(&points[o], &points[m]))
    });
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{skyline_naive, skyline_sfs};

    #[test]
    fn agrees_with_oracle_on_fixed_sets() {
        let pts = vec![
            vec![3.0, 1.0, 2.0],
            vec![1.0, 3.0, 9.0],
            vec![2.0, 2.0, 1.0],
            vec![4.0, 4.0, 4.0],
            vec![0.5, 5.0, 0.5],
            vec![0.5, 5.0, 0.4],
        ];
        assert_eq!(skyline_dnc(&pts), skyline_naive(&pts));
    }

    #[test]
    fn handles_empty_and_small() {
        assert!(skyline_dnc(&[]).is_empty());
        assert_eq!(skyline_dnc(&[vec![1.0, 2.0]]), vec![0]);
    }

    #[test]
    fn large_random_set_matches_sfs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let pts: Vec<Vec<f64>> = (0..2000)
            .map(|_| (0..3).map(|_| rng.gen_range(0.0..1000.0)).collect())
            .collect();
        assert_eq!(skyline_dnc(&pts), skyline_sfs(&pts));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::skyline_naive;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn dnc_matches_naive(
            pts in prop::collection::vec(prop::collection::vec(0.0f64..100.0, 2..=4), 0..80)
        ) {
            // Mixed dimensionality is invalid; force all rows to the
            // first row's dimension.
            let Some(d) = pts.first().map(|p| p.len()) else {
                prop_assert!(skyline_dnc(&pts).is_empty());
                return Ok(());
            };
            let pts: Vec<Vec<f64>> = pts
                .into_iter()
                .map(|mut p| {
                    p.resize(d, 50.0);
                    p
                })
                .collect();
            prop_assert_eq!(skyline_dnc(&pts), skyline_naive(&pts));
        }
    }
}
