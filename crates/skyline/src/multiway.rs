//! The paper's disjunctive multiway skyline ("Option 2").
//!
//! "We compute a disjunctive multiway skyline on pairwise combinations
//! of the RCS attributes in the feature vector. That is, we first find
//! the skyline set of JCRs based on their RC values, then the skyline
//! set on the CS values, and finally the skyline set on the RS values.
//! The JCRs featured in the three skylines are unioned, and all
//! remaining JCRs are pruned."
//!
//! The implementation generalizes to any dimensionality: the union of
//! the skylines of all `C(d, 2)` two-attribute projections. Because a
//! point on the full-space skyline is on at least one pairwise
//! skyline *only sometimes*, the pairwise union is **not** a superset
//! of the full skyline in general for d > 3 — but for the paper's
//! d = 3 it prunes strictly more aggressively than the full-vector
//! skyline ("Option 1") while retaining every 2-D-optimal trade-off,
//! which is exactly the behaviour Table 2.3 reports.

use crate::dominates_on;

/// Skyline of `points` projected onto the given dimensions, returned
/// as ascending indices into `points`.
pub fn projected_skyline(points: &[Vec<f64>], dims: &[usize]) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'next: for (i, p) in points.iter().enumerate() {
        let mut k = 0;
        while k < window.len() {
            let w = &points[window[k]];
            if dominates_on(w, p, dims) {
                continue 'next;
            }
            if dominates_on(p, w, dims) {
                window.swap_remove(k);
            } else {
                k += 1;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// The union of the skylines of every two-attribute projection —
/// SDP's "Option 2" pruning function. Returns ascending indices; an
/// object survives iff it appears in at least one pairwise skyline.
pub fn pairwise_union_skyline(points: &[Vec<f64>]) -> Vec<usize> {
    let Some(first) = points.first() else {
        return Vec::new();
    };
    let d = first.len();
    if d <= 2 {
        return projected_skyline(points, &(0..d).collect::<Vec<_>>());
    }
    let mut survivor = vec![false; points.len()];
    for a in 0..d {
        for b in a + 1..d {
            for i in projected_skyline(points, &[a, b]) {
                survivor[i] = true;
            }
        }
    }
    (0..points.len()).filter(|&i| survivor[i]).collect()
}

/// Number of points below which [`pairwise_union_skyline_threaded`]
/// falls back to the sequential scan — spawning threads costs more
/// than the window scans save on small partitions.
const PARALLEL_POINT_THRESHOLD: usize = 64;

/// [`pairwise_union_skyline`] with the independent two-attribute
/// projections computed on concurrent threads (for the paper's d = 3,
/// the RC, CS and RS skylines run in parallel). The survivor union is
/// order-independent, so the result is identical to the sequential
/// function for every input. Falls back to the sequential scan when
/// `threads <= 1`, the input is small, or `d <= 2` (a single
/// projection — nothing to overlap).
pub fn pairwise_union_skyline_threaded(points: &[Vec<f64>], threads: usize) -> Vec<usize> {
    let d = points.first().map_or(0, |p| p.len());
    if threads <= 1 || d <= 2 || points.len() < PARALLEL_POINT_THRESHOLD {
        return pairwise_union_skyline(points);
    }
    let projections: Vec<[usize; 2]> = (0..d)
        .flat_map(|a| (a + 1..d).map(move |b| [a, b]))
        .collect();
    let per_projection: Vec<Vec<usize>> = std::thread::scope(|scope| {
        let handles: Vec<_> = projections
            .iter()
            .map(|dims| scope.spawn(move || projected_skyline(points, dims)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("projection skyline panicked"))
            .collect()
    });
    let mut survivor = vec![false; points.len()];
    for winners in per_projection {
        for i in winners {
            survivor[i] = true;
        }
    }
    (0..points.len()).filter(|&i| survivor[i]).collect()
}

/// Which pairwise skylines each object belongs to, for the paper's
/// Table 2.2-style reporting. Returns, for each projection (in
/// lexicographic `(a, b)` order), the ascending member indices.
pub fn pairwise_skyline_membership(points: &[Vec<f64>]) -> Vec<(Vec<usize>, Vec<usize>)> {
    let d = points.first().map_or(0, |p| p.len());
    let mut out = Vec::new();
    for a in 0..d {
        for b in a + 1..d {
            out.push((vec![a, b], projected_skyline(points, &[a, b])));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    /// The paper's Table 2.2: Prune Group 1 = {123, 125, 135, 145,
    /// 156} with feature vectors [R, C, S]. Expected: survivors are
    /// 123, 125, 145, 156; JCR 135 is pruned. (Indices 0..5 in that
    /// order.)
    fn table_2_2() -> Vec<Vec<f64>> {
        vec![
            vec![187_638.0, 49_386.0, 3.9e-5],  // 123
            vec![122_879.0, 52_132.0, 1.0e-5],  // 125
            vec![242_620.0, 56_021.0, 1.0e-5],  // 135
            vec![241_562.0, 55_388.0, 6.65e-6], // 145
            vec![385_375.0, 52_632.0, 4.5e-6],  // 156
        ]
    }

    #[test]
    fn reproduces_paper_table_2_2_survivors() {
        let pts = table_2_2();
        let survivors = pairwise_union_skyline(&pts);
        assert_eq!(survivors, vec![0, 1, 3, 4], "135 must be pruned");
    }

    #[test]
    fn reproduces_paper_table_2_2_membership() {
        let pts = table_2_2();
        let membership = pairwise_skyline_membership(&pts);
        // Projections come out as RC=[0,1], RS=[0,2], CS=[1,2].
        let rc = &membership[0].1;
        let rs = &membership[1].1;
        let cs = &membership[2].1;
        // Paper's Y-marks: RC = {123, 125}; CS = {123, 125, 156};
        // RS = {125, 145, 156}.
        assert_eq!(rc, &vec![0, 1]);
        assert_eq!(cs, &vec![0, 1, 4]);
        assert_eq!(rs, &vec![1, 3, 4]);
    }

    #[test]
    fn two_dimensional_input_falls_back_to_plain_skyline() {
        let pts = vec![vec![1.0, 2.0], vec![2.0, 1.0], vec![3.0, 3.0]];
        assert_eq!(pairwise_union_skyline(&pts), skyline_naive(&pts));
    }

    #[test]
    fn empty_input() {
        assert!(pairwise_union_skyline(&[]).is_empty());
        assert!(pairwise_skyline_membership(&[]).is_empty());
    }

    #[test]
    fn union_prunes_at_least_as_much_as_each_projection_keeps() {
        let pts = table_2_2();
        let union = pairwise_union_skyline(&pts);
        for (_, members) in pairwise_skyline_membership(&pts) {
            for m in members {
                assert!(union.contains(&m));
            }
        }
    }

    #[test]
    fn threaded_union_matches_sequential() {
        // Deterministic pseudo-random cloud (xorshift), large enough
        // to clear the parallel threshold.
        let mut state = 0x2545F491_4F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<Vec<f64>> = (0..500)
            .map(|_| vec![next() * 1e6, next() * 1e5, next()])
            .collect();
        assert_eq!(
            pairwise_union_skyline_threaded(&pts, 4),
            pairwise_union_skyline(&pts)
        );
        // Small inputs and single-thread requests take the sequential
        // path but must agree as well.
        let small = table_2_2();
        assert_eq!(pairwise_union_skyline_threaded(&small, 4), vec![0, 1, 3, 4]);
        assert_eq!(
            pairwise_union_skyline_threaded(&pts, 1),
            pairwise_union_skyline(&pts)
        );
    }

    #[test]
    fn projected_skyline_single_dimension() {
        let pts = vec![vec![5.0, 0.0], vec![3.0, 9.0], vec![3.0, 1.0]];
        assert_eq!(projected_skyline(&pts, &[0]), vec![1, 2]);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::{dominates, skyline_naive};
    use proptest::prelude::*;

    fn arb_points(max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
        prop::collection::vec(prop::collection::vec(0.0f64..100.0, 3..=3), 0..50)
            .prop_filter("cap", move |v| v.len() <= max_len)
    }

    proptest! {
        /// Option 2 prunes at least as hard as Option 1 for d = 3:
        /// every pairwise-union survivor set is a subset of … no —
        /// the documented relation is on *counts observed in the
        /// paper*; the provable property is that every point pruned by
        /// the FULL skyline that survives pairwise must be pairwise-
        /// undominated on some projection. We check the sanity
        /// properties that hold unconditionally:
        #[test]
        fn survivors_are_undominated_on_some_projection(pts in arb_points(50)) {
            let survivors = pairwise_union_skyline(&pts);
            for &i in &survivors {
                let on_some = [(0, 1), (0, 2), (1, 2)].iter().any(|&(a, b)| {
                    !pts.iter().enumerate().any(|(j, p)| {
                        j != i && crate::dominates_on(p, &pts[i], &[a, b])
                    })
                });
                prop_assert!(on_some);
            }
        }

        /// Any point that is fully dominated (3-D) by another point is
        /// also dominated on every projection by that point — so the
        /// pairwise union never retains a fully-dominated point whose
        /// dominator strictly improves every coordinate.
        #[test]
        fn strictly_dominated_points_are_pruned(pts in arb_points(50)) {
            let survivors = pairwise_union_skyline(&pts);
            for (i, p) in pts.iter().enumerate() {
                let strictly_dominated = pts.iter().enumerate().any(|(j, q)| {
                    j != i && q.iter().zip(p).all(|(x, y)| x < y)
                });
                if strictly_dominated {
                    prop_assert!(!survivors.contains(&i));
                }
            }
        }

        /// The global minimum of each single coordinate always
        /// survives (it is on every projection's skyline involving
        /// that coordinate, unless tied — in which case some tied
        /// point survives).
        #[test]
        fn some_coordinate_minimizer_survives(pts in arb_points(50)) {
            prop_assume!(!pts.is_empty());
            let survivors = pairwise_union_skyline(&pts);
            prop_assert!(!survivors.is_empty());
        }

        /// Pairwise union is a subset of the input and sorted.
        #[test]
        fn output_is_sorted_subset(pts in arb_points(50)) {
            let s = pairwise_union_skyline(&pts);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&i| i < pts.len()));
        }

        /// For d = 3 the pairwise union retains no MORE than the
        /// full-vector skyline retains… is false in general; what the
        /// paper relies on is that it retains no point that the full
        /// skyline would prune *and* that is dominated on all three
        /// projections. Cross-check: every full-skyline point kept by
        /// the union is genuinely 3-D undominated.
        #[test]
        fn union_intersect_full_skyline_is_consistent(pts in arb_points(50)) {
            let full = skyline_naive(&pts);
            let union = pairwise_union_skyline(&pts);
            for &i in union.iter().filter(|i| full.contains(i)) {
                for (j, p) in pts.iter().enumerate() {
                    if j != i {
                        prop_assert!(!dominates(p, &pts[i]));
                    }
                }
            }
        }
    }
}
