//! Block-nested-loops skyline.
//!
//! The original skyline algorithm: maintain a window of incomparable
//! candidates; each incoming object is compared against the window,
//! evicting dominated window members and being discarded if itself
//! dominated. With the window held in memory (always the case here —
//! SDP partitions are small) a single pass suffices.

use crate::dominates;

/// Compute the skyline of `points` (minimization on all dimensions),
/// returning indices into `points` in ascending order.
pub fn skyline_bnl(points: &[Vec<f64>]) -> Vec<usize> {
    let mut window: Vec<usize> = Vec::new();
    'next: for (i, p) in points.iter().enumerate() {
        let mut k = 0;
        while k < window.len() {
            let w = &points[window[k]];
            if dominates(w, p) {
                continue 'next; // incoming object dominated
            }
            if dominates(p, w) {
                window.swap_remove(k); // evict dominated member
            } else {
                k += 1;
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    #[test]
    fn matches_oracle_on_small_sets() {
        let pts = vec![
            vec![3.0, 1.0],
            vec![1.0, 3.0],
            vec![2.0, 2.0],
            vec![4.0, 4.0], // dominated by all of the above
            vec![0.5, 5.0],
        ];
        assert_eq!(skyline_bnl(&pts), skyline_naive(&pts));
        assert_eq!(skyline_bnl(&pts), vec![0, 1, 2, 4]);
    }

    #[test]
    fn single_dimension_keeps_minimum_only() {
        let pts = vec![vec![5.0], vec![2.0], vec![9.0], vec![2.0]];
        // Both 2.0s are mutually non-dominating.
        assert_eq!(skyline_bnl(&pts), vec![1, 3]);
    }

    #[test]
    fn all_incomparable_survive() {
        // Anti-chain: strictly decreasing in one dim, increasing in
        // the other.
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (10 - i) as f64]).collect();
        assert_eq!(skyline_bnl(&pts).len(), 10);
    }

    #[test]
    fn totally_ordered_chain_keeps_one() {
        let pts: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        assert_eq!(skyline_bnl(&pts), vec![0]);
    }

    #[test]
    fn empty_input() {
        assert!(skyline_bnl(&[]).is_empty());
    }

    #[test]
    fn later_point_can_evict_earlier_window_members() {
        let pts = vec![vec![5.0, 5.0], vec![6.0, 4.0], vec![1.0, 1.0]];
        assert_eq!(skyline_bnl(&pts), vec![2]);
    }
}
