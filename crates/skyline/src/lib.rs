//! # sdp-skyline — skyline computation substrate
//!
//! SDP's pruning function is built on the *skyline* operator of
//! Börzsönyi, Kossmann and Stocker: given a set of objects described by
//! a feature vector over ordered domains, the skyline is the subset
//! not dominated by any other object (all features minimized here).
//!
//! The paper "assume\[s\] the use of" fast skyline techniques; this
//! crate provides them:
//!
//! * [`bnl::skyline_bnl`] — the classic block-nested-loops algorithm;
//! * [`dnc::skyline_dnc`] — Börzsönyi's divide-and-conquer algorithm;
//! * [`sfs::skyline_sfs`] — sort-filter-skyline, which presorts by an
//!   aggregate monotone score so each object need only be checked
//!   against already-accepted skyline members;
//! * [`multiway::pairwise_union_skyline`] — the paper's "Option 2":
//!   the disjunctive union of the skylines of every 2-attribute
//!   projection of the feature vector (RC ∪ CS ∪ RS for the paper's
//!   three-attribute `[Rows, Cost, Selectivity]` vector);
//! * [`kdominant::k_dominant_skyline`] — the "strong skyline" of the
//!   paper’s future-work reference \[12\] (Chan et al.), where an object
//!   is excluded if some other object dominates it on *some* `k` of
//!   the `d` dimensions;
//! * [`orders`] — interesting-order exclusion partitions (§2.1.4):
//!   per-relation partition membership and the skyline *rescue* pass
//!   that keeps order-producing subplans alive through pruning.
//!
//! All functions return indices into the input slice, preserving input
//! order, so callers can prune their own structures.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bnl;
pub mod dnc;
pub mod kdominant;
pub mod multiway;
pub mod orders;
pub mod sfs;

pub use bnl::skyline_bnl;
pub use dnc::skyline_dnc;
pub use kdominant::k_dominant_skyline;
pub use multiway::{pairwise_union_skyline, pairwise_union_skyline_threaded, projected_skyline};
pub use orders::{exclusion_partition, rescue_order_partition};
pub use sfs::skyline_sfs;

/// Dominance under minimization: `a` dominates `b` iff `a[i] ≤ b[i]`
/// for every dimension and `a[j] < b[j]` for at least one.
///
/// # Panics
/// Debug-asserts equal dimensionality.
#[inline]
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len(), "mismatched feature dimensions");
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b) {
        if x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Dominance restricted to a subset of dimensions (used by the
/// pairwise and k-dominant variants).
#[inline]
pub fn dominates_on(a: &[f64], b: &[f64], dims: &[usize]) -> bool {
    let mut strict = false;
    for &d in dims {
        if a[d] > b[d] {
            return false;
        }
        if a[d] < b[d] {
            strict = true;
        }
    }
    strict
}

/// Reference quadratic skyline used as the test oracle: keep object
/// `i` iff no other object dominates it.
pub fn skyline_naive(points: &[Vec<f64>]) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && dominates(p, &points[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_requires_strict_improvement() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no
        assert!(!dominates(&[1.0, 4.0], &[2.0, 3.0])); // incomparable
        assert!(dominates(&[0.0, 0.0], &[1.0, 1.0]));
    }

    #[test]
    fn dominance_on_projection() {
        let a = [1.0, 9.0, 1.0];
        let b = [2.0, 1.0, 2.0];
        assert!(dominates_on(&a, &b, &[0, 2]));
        assert!(!dominates_on(&a, &b, &[0, 1]));
        assert!(!dominates_on(&a, &b, &[1]));
    }

    #[test]
    fn naive_skyline_on_known_set() {
        // The paper's Table 2.2 feature vectors (R, C, S):
        let pts = vec![
            vec![187_638.0, 49_386.0, 3.9e-5],  // 123
            vec![122_879.0, 52_132.0, 1.0e-5],  // 125
            vec![242_620.0, 56_021.0, 1.0e-5],  // 135
            vec![241_562.0, 55_388.0, 6.65e-6], // 145
            vec![385_375.0, 52_632.0, 4.5e-6],  // 156
        ];
        let sky = skyline_naive(&pts);
        // 135 is dominated in the full 3-D space by 145
        // (241562 ≤ 242620, 55388 ≤ 56021, 6.65e-6 ≤ 1.0e-5).
        assert!(!sky.contains(&2));
        assert!(sky.contains(&0) && sky.contains(&1) && sky.contains(&3) && sky.contains(&4));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(skyline_naive(&[]).is_empty());
        assert_eq!(skyline_naive(&[vec![5.0]]), vec![0]);
    }

    #[test]
    fn duplicates_all_survive() {
        // Equal points do not dominate each other; both stay.
        let pts = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(skyline_naive(&pts).len(), 2);
    }
}
