//! k-dominant ("strong") skyline.
//!
//! The paper's closing line points at "strong skyline" functions
//! (reference \[12\], Chan et al., *Finding k-Dominant Skylines in High
//! Dimensional Space*) as future work. An object `b` is *k-dominated*
//! by `a` if there exists a set of `k` dimensions on which `a`
//! dominates `b` (i.e. `a` is ≤ on those `k` and < on at least one of
//! them). The k-dominant skyline keeps only objects k-dominated by no
//! other object; for `k = d` it coincides with the ordinary skyline,
//! and it shrinks monotonically as `k` decreases.
//!
//! We expose it as an alternative SDP pruning option so the paper's
//! future-work question can be answered empirically (see the
//! `skyline_options` bench).

/// Whether `a` k-dominates `b`: `a` is ≤ `b` on at least `k`
/// dimensions with a strict improvement on at least one of those.
///
/// Equivalently: let `le` = #dimensions where `a ≤ b` and `lt` =
/// #dimensions where `a < b`; then `a` k-dominates `b` iff `le ≥ k`
/// and `lt ≥ 1` and … careful: the k chosen dimensions must include a
/// strict one, which holds iff `lt ≥ 1` and `le ≥ k` (pick the strict
/// dimension plus any `k − 1` other ≤-dimensions; possible because a
/// strict dimension is also a ≤ dimension).
#[inline]
pub fn k_dominates(a: &[f64], b: &[f64], k: usize) -> bool {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(k >= 1 && k <= a.len());
    let mut le = 0usize;
    let mut lt = 0usize;
    for (&x, &y) in a.iter().zip(b) {
        if x <= y {
            le += 1;
            if x < y {
                lt += 1;
            }
        }
    }
    le >= k && lt >= 1
}

/// Compute the k-dominant skyline, returning ascending indices.
///
/// Note that k-dominance is **not transitive**, so the windowed BNL
/// shortcut is unsound; we use the direct quadratic definition, which
/// is fine at SDP partition sizes (tens to hundreds of JCRs).
pub fn k_dominant_skyline(points: &[Vec<f64>], k: usize) -> Vec<usize> {
    (0..points.len())
        .filter(|&i| {
            !points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && k_dominates(p, &points[i], k))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    #[test]
    fn full_k_equals_ordinary_skyline() {
        let pts = vec![
            vec![3.0, 1.0, 2.0],
            vec![1.0, 3.0, 9.0],
            vec![2.0, 2.0, 1.0],
            vec![4.0, 4.0, 4.0],
        ];
        assert_eq!(k_dominant_skyline(&pts, 3), skyline_naive(&pts));
    }

    #[test]
    fn smaller_k_prunes_harder() {
        let pts = vec![
            vec![1.0, 9.0, 9.0],
            vec![9.0, 1.0, 9.0],
            vec![9.0, 9.0, 1.0],
            vec![2.0, 2.0, 2.0],
        ];
        let full = k_dominant_skyline(&pts, 3);
        assert_eq!(full.len(), 4); // all incomparable in 3-D
        let strong = k_dominant_skyline(&pts, 2);
        // (2,2,2) 2-dominates each single-coordinate specialist, and
        // none 2-dominates it back on two dims… each specialist is
        // ≤ on one dim only vs (2,2,2), so cannot 2-dominate.
        assert_eq!(strong, vec![3]);
    }

    #[test]
    fn k_dominance_asymmetry() {
        let a = vec![1.0, 1.0, 9.0];
        let b = vec![2.0, 2.0, 2.0];
        assert!(k_dominates(&a, &b, 2));
        assert!(!k_dominates(&b, &a, 2)); // b is ≤ a on one dim only
    }

    #[test]
    fn k_dominant_skyline_can_be_empty() {
        // Classic cyclic-dominance example: with k = 2 each point is
        // 2-dominated by the next, so nobody survives.
        let pts = vec![
            vec![1.0, 2.0, 3.0],
            vec![3.0, 1.0, 2.0],
            vec![2.0, 3.0, 1.0],
        ];
        assert!(k_dominant_skyline(&pts, 2).is_empty());
    }

    #[test]
    fn equal_points_do_not_dominate() {
        let pts = vec![vec![5.0, 5.0], vec![5.0, 5.0]];
        assert_eq!(k_dominant_skyline(&pts, 2).len(), 2);
        assert!(!k_dominates(&pts[0], &pts[1], 2));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::skyline_naive;
    use proptest::prelude::*;

    fn arb_points() -> impl Strategy<Value = Vec<Vec<f64>>> {
        prop::collection::vec(prop::collection::vec(0.0f64..100.0, 3..=3), 0..40)
    }

    proptest! {
        #[test]
        fn k_dominant_is_subset_of_skyline(pts in arb_points()) {
            let strong = k_dominant_skyline(&pts, 2);
            let sky = skyline_naive(&pts);
            for i in strong {
                prop_assert!(sky.contains(&i));
            }
        }

        #[test]
        fn k_equals_d_matches_skyline(pts in arb_points()) {
            prop_assert_eq!(k_dominant_skyline(&pts, 3), skyline_naive(&pts));
        }

        #[test]
        fn monotone_in_k(pts in arb_points()) {
            let k2 = k_dominant_skyline(&pts, 2);
            let k3 = k_dominant_skyline(&pts, 3);
            for i in k2 {
                prop_assert!(k3.contains(&i));
            }
        }
    }
}
