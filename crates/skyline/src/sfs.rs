//! Sort-filter-skyline (SFS).
//!
//! Chomicki et al.'s refinement of BNL: presort the input by a
//! monotone aggregate (here the coordinate sum) so that no object can
//! be dominated by one appearing *after* it in sorted order. Each
//! object then needs comparing only against the already-accepted
//! skyline, never evicting — a simpler inner loop and better locality
//! for larger partitions.

use crate::dominates;

/// Compute the skyline of `points` via sort-filter-skyline, returning
/// indices into `points` in ascending order.
pub fn skyline_sfs(points: &[Vec<f64>]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    // Sort by coordinate sum: if sum(a) < sum(b) then b cannot
    // dominate a (dominance would force sum(b) ≤ sum(a), with strict
    // inequality somewhere). Ties are broken by index for determinism;
    // tied-sum points cannot dominate each other unless equal, and
    // equal points never dominate.
    order.sort_by(|&a, &b| {
        let sa: f64 = points[a].iter().sum();
        let sb: f64 = points[b].iter().sum();
        sa.partial_cmp(&sb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut skyline: Vec<usize> = Vec::new();
    for &i in &order {
        if !skyline.iter().any(|&s| dominates(&points[s], &points[i])) {
            skyline.push(i);
        }
    }
    skyline.sort_unstable();
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{skyline_bnl, skyline_naive};

    #[test]
    fn agrees_with_bnl_and_oracle() {
        let pts = vec![
            vec![3.0, 1.0, 2.0],
            vec![1.0, 3.0, 9.0],
            vec![2.0, 2.0, 1.0],
            vec![4.0, 4.0, 4.0],
            vec![0.5, 5.0, 0.5],
        ];
        let sfs = skyline_sfs(&pts);
        assert_eq!(sfs, skyline_bnl(&pts));
        assert_eq!(sfs, skyline_naive(&pts));
    }

    #[test]
    fn handles_equal_sums() {
        // (1,3) and (3,1) tie on sum but are incomparable.
        let pts = vec![vec![1.0, 3.0], vec![3.0, 1.0], vec![2.0, 2.0]];
        assert_eq!(skyline_sfs(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn equal_points_both_survive() {
        let pts = vec![vec![2.0, 2.0], vec![2.0, 2.0], vec![1.0, 9.0]];
        assert_eq!(skyline_sfs(&pts), vec![0, 1, 2]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(skyline_sfs(&[]).is_empty());
        assert_eq!(skyline_sfs(&[vec![7.0, 7.0]]), vec![0]);
    }

    #[test]
    fn non_finite_safe_ordering_does_not_panic() {
        // Defensive: NaN sums fall back to Equal ordering; output is
        // still a valid (if arbitrary) subset containing the finite
        // skyline.
        let pts = vec![vec![f64::NAN, 1.0], vec![1.0, 1.0]];
        let s = skyline_sfs(&pts);
        assert!(s.contains(&1));
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::{skyline_bnl, skyline_naive};
    use proptest::prelude::*;

    fn arb_points(max_len: usize, dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
        prop::collection::vec(
            prop::collection::vec(0.0f64..1000.0, dims..=dims),
            0..max_len,
        )
    }

    proptest! {
        #[test]
        fn sfs_matches_naive_2d(pts in arb_points(60, 2)) {
            prop_assert_eq!(skyline_sfs(&pts), skyline_naive(&pts));
        }

        #[test]
        fn sfs_matches_naive_3d(pts in arb_points(60, 3)) {
            prop_assert_eq!(skyline_sfs(&pts), skyline_naive(&pts));
        }

        #[test]
        fn bnl_matches_naive_3d(pts in arb_points(60, 3)) {
            prop_assert_eq!(skyline_bnl(&pts), skyline_naive(&pts));
        }

        #[test]
        fn skyline_is_idempotent(pts in arb_points(40, 3)) {
            let first = skyline_sfs(&pts);
            let reduced: Vec<Vec<f64>> = first.iter().map(|&i| pts[i].clone()).collect();
            let second = skyline_sfs(&reduced);
            // Applying the skyline to its own output removes nothing.
            prop_assert_eq!(second.len(), reduced.len());
        }

        #[test]
        fn skyline_members_are_undominated(pts in arb_points(40, 3)) {
            let sky = skyline_sfs(&pts);
            for &i in &sky {
                for (j, p) in pts.iter().enumerate() {
                    if j != i {
                        prop_assert!(!crate::dominates(p, &pts[i]));
                    }
                }
            }
        }

        #[test]
        fn non_members_are_dominated(pts in arb_points(40, 2)) {
            let sky = skyline_sfs(&pts);
            for (i, p) in pts.iter().enumerate() {
                if !sky.contains(&i) {
                    prop_assert!(pts.iter().any(|q| crate::dominates(q, p)));
                }
            }
        }
    }
}
