//! Interesting-order skyline partitions (paper §2.1.4).
//!
//! The paper keeps order-producing subplans alive by giving each
//! relation `t` that can supply an interesting order its own skyline
//! partition: the JCRs that do *not* contain `t` (and therefore could
//! still join with `t` via an order-preserving method). Any member of
//! that partition's skyline is *rescued* — marked as a survivor even
//! if the hub partitions pruned it — so the cheap-but-ordered frontier
//! is never lost to cost-only dominance.
//!
//! This module hosts the partition mechanics generically: callers
//! provide the feature matrix, the exclusion-partition membership, the
//! current survivor mask, and whichever skyline routine their config
//! selects. Keeping the logic here (rather than inline in the pruner)
//! lets the property tests below pin the rescue invariant — *an
//! interesting-order partition never prunes the order-satisfying
//! skyline member* — against the oracle, independent of the pruner.

/// Indices of the exclusion partition for relation `t`: every object
/// whose relation set does **not** contain `t`, per `contains_t`.
///
/// Returned in ascending index order, so downstream skyline calls see
/// a deterministic sub-matrix regardless of thread count.
pub fn exclusion_partition(len: usize, contains_t: impl Fn(usize) -> bool) -> Vec<usize> {
    (0..len).filter(|&i| !contains_t(i)).collect()
}

/// Rescue the skyline of one interesting-order partition.
///
/// `members` are indices into `features`/`keep` (as produced by
/// [`exclusion_partition`]); `skyline` maps a feature sub-matrix to
/// the indices of its skyline (any of this crate's algorithms, or the
/// pruner's configured variant). Every skyline winner has its `keep`
/// flag forced on; the return value counts how many were newly rescued
/// (i.e. flipped from pruned to kept).
///
/// # Panics
/// Debug-asserts `features` and `keep` agree in length and that
/// `members` is in bounds.
pub fn rescue_order_partition<F>(
    features: &[Vec<f64>],
    members: &[usize],
    keep: &mut [bool],
    skyline: F,
) -> u64
where
    F: FnOnce(&[Vec<f64>]) -> Vec<usize>,
{
    debug_assert_eq!(features.len(), keep.len(), "mask/feature length mismatch");
    debug_assert!(members.iter().all(|&i| i < features.len()));
    if members.is_empty() {
        return 0;
    }
    let part: Vec<Vec<f64>> = members.iter().map(|&i| features[i].clone()).collect();
    let mut rescued = 0u64;
    for w in skyline(&part) {
        let idx = members[w];
        if !keep[idx] {
            keep[idx] = true;
            rescued += 1;
        }
    }
    rescued
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::skyline_naive;

    #[test]
    fn empty_partition_rescues_nothing() {
        let features = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let mut keep = vec![false, false];
        assert_eq!(
            rescue_order_partition(&features, &[], &mut keep, skyline_naive),
            0
        );
        assert_eq!(keep, vec![false, false]);
    }

    #[test]
    fn rescues_pruned_partition_skyline_only() {
        // Object 2 dominates object 0 globally, but 2 contains `t`
        // (it is outside the partition), so 0 is the partition skyline
        // and must come back; 1 is dominated *within* the partition by
        // 0 and stays pruned.
        let features = vec![vec![2.0, 2.0], vec![3.0, 3.0], vec![1.0, 1.0]];
        let mut keep = vec![false, false, true];
        let rescued = rescue_order_partition(&features, &[0, 1], &mut keep, skyline_naive);
        assert_eq!(rescued, 1);
        assert_eq!(keep, vec![true, false, true]);
    }

    #[test]
    fn already_kept_winners_are_not_double_counted() {
        let features = vec![vec![1.0], vec![2.0]];
        let mut keep = vec![true, false];
        let rescued = rescue_order_partition(&features, &[0, 1], &mut keep, skyline_naive);
        assert_eq!(rescued, 0, "winner was already a survivor");
        assert_eq!(keep, vec![true, false]);
    }

    #[test]
    fn exclusion_partition_filters_by_membership() {
        // "Sets" 0..5 where even indices contain t.
        let part = exclusion_partition(5, |i| i % 2 == 0);
        assert_eq!(part, vec![1, 3]);
        assert!(exclusion_partition(4, |_| true).is_empty());
        assert_eq!(exclusion_partition(3, |_| false), vec![0, 1, 2]);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::{dominates, skyline_naive, skyline_sfs};
    use proptest::prelude::*;

    fn arb_case() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<bool>, Vec<bool>)> {
        // Per-object rows of (feature vector, initial keep, contains-t),
        // unzipped so the three columns always agree in length.
        prop::collection::vec(
            (
                prop::collection::vec(0.0f64..1000.0, 3usize),
                any::<bool>(),
                any::<bool>(),
            ),
            1..40,
        )
        .prop_map(|rows| {
            let mut features = Vec::with_capacity(rows.len());
            let mut keep = Vec::with_capacity(rows.len());
            let mut has_t = Vec::with_capacity(rows.len());
            for (f, k, t) in rows {
                features.push(f);
                keep.push(k);
                has_t.push(t);
            }
            (features, keep, has_t)
        })
    }

    proptest! {
        /// The tentpole invariant: after the rescue pass, *no* member
        /// of the interesting-order partition's skyline is pruned —
        /// whatever the hub partitions decided beforehand.
        #[test]
        fn never_prunes_the_order_satisfying_skyline_member(
            (features, mut keep, has_t) in arb_case()
        ) {
            let members = exclusion_partition(features.len(), |i| has_t[i]);
            rescue_order_partition(&features, &members, &mut keep, skyline_sfs);
            for &i in &members {
                let dominated_in_partition = members
                    .iter()
                    .any(|&j| j != i && dominates(&features[j], &features[i]));
                if !dominated_in_partition {
                    prop_assert!(
                        keep[i],
                        "partition skyline member {} was left pruned",
                        i
                    );
                }
            }
        }

        /// Rescue is monotone: it only ever flips `keep` from false to
        /// true, and never touches objects outside the partition.
        #[test]
        fn rescue_is_monotone_and_scoped((features, keep, has_t) in arb_case()) {
            let members = exclusion_partition(features.len(), |i| has_t[i]);
            let before = keep.clone();
            let mut after = keep;
            let rescued =
                rescue_order_partition(&features, &members, &mut after, skyline_naive);
            let mut flips = 0u64;
            for i in 0..before.len() {
                if before[i] && !after[i] {
                    prop_assert!(false, "rescue demoted a survivor at {}", i);
                }
                if !before[i] && after[i] {
                    prop_assert!(members.contains(&i), "rescued non-member {}", i);
                    flips += 1;
                }
            }
            prop_assert_eq!(rescued, flips);
        }

        /// The rescue count and final mask are independent of the
        /// skyline algorithm used (they all compute the same skyline).
        #[test]
        fn rescue_is_algorithm_invariant((features, keep, has_t) in arb_case()) {
            let members = exclusion_partition(features.len(), |i| has_t[i]);
            let mut a = keep.clone();
            let mut b = keep;
            let ra = rescue_order_partition(&features, &members, &mut a, skyline_naive);
            let rb = rescue_order_partition(&features, &members, &mut b, skyline_sfs);
            prop_assert_eq!(ra, rb);
            prop_assert_eq!(a, b);
        }
    }
}
