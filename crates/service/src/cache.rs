//! Sharded LRU plan cache with statistics-epoch invalidation.
//!
//! The cache is a fixed number of independent shards (rounded up to a
//! power of two), each a mutex-guarded slab-backed LRU list plus a
//! hash index. A key is routed to its shard by a splitmix of the key
//! itself, so contention scales with the shard count rather than the
//! request rate, and no lock is ever held across an optimization.
//!
//! Every entry records the statistics epoch it was optimized under.
//! Lookups carry the *current* epoch: an entry from an older epoch is
//! removed on sight and reported as [`Lookup::Stale`], and
//! [`ShardedLru::purge_stale`] sweeps whole shards eagerly after a
//! statistics refresh so memory is not held by unreachable plans.

use std::collections::HashMap;
use std::sync::Mutex;

/// Result of a cache probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lookup<V> {
    /// Present and optimized under the current statistics epoch.
    Hit(V),
    /// Present but optimized under an older epoch; the entry has been
    /// evicted. Carries the evicted value so callers can inspect its
    /// provenance — the service uses this to see which degradation
    /// rung produced the outgoing plan (a stale GOO entry is a
    /// candidate for idle-time re-optimization at a higher rung).
    Stale(V),
    /// Absent.
    Miss,
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry<V> {
    key: u128,
    value: V,
    epoch: u64,
    prev: usize,
    next: usize,
}

#[derive(Debug)]
struct Shard<V> {
    index: HashMap<u128, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    /// Most recently used.
    head: usize,
    /// Least recently used.
    tail: usize,
    capacity: usize,
}

impl<V> Shard<V> {
    fn new(capacity: usize) -> Self {
        Shard {
            index: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    fn remove_slot(&mut self, i: usize) {
        self.unlink(i);
        let key = self.slab[i].key;
        self.index.remove(&key);
        self.free.push(i);
    }
}

/// A sharded, epoch-aware LRU cache keyed by 128-bit fingerprint-
/// derived keys.
#[derive(Debug)]
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    mask: u64,
}

fn shard_of(key: u128) -> u64 {
    // splitmix64 over the folded key: shard choice must not correlate
    // with the WL hash's internal structure.
    let mut z = (key as u64) ^ ((key >> 64) as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<V: Clone> ShardedLru<V> {
    /// Cache holding at most `capacity` entries spread over `shards`
    /// shards (rounded up to a power of two; both floored at 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        let per_shard = capacity.max(1).div_ceil(shards);
        ShardedLru {
            shards: (0..shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            mask: shards as u64 - 1,
        }
    }

    fn shard(&self, key: u128) -> &Mutex<Shard<V>> {
        &self.shards[(shard_of(key) & self.mask) as usize]
    }

    /// Probe for `key` under the current statistics `epoch`, marking
    /// it most recently used on a hit.
    pub fn get(&self, key: u128, epoch: u64) -> Lookup<V> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        let Some(&i) = shard.index.get(&key) else {
            return Lookup::Miss;
        };
        if shard.slab[i].epoch != epoch {
            let stale = shard.slab[i].value.clone();
            shard.remove_slot(i);
            return Lookup::Stale(stale);
        }
        shard.unlink(i);
        shard.push_front(i);
        Lookup::Hit(shard.slab[i].value.clone())
    }

    /// Insert (or refresh) `key`, returning how many entries LRU
    /// capacity pressure evicted.
    pub fn insert(&self, key: u128, value: V, epoch: u64) -> u64 {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        if let Some(&i) = shard.index.get(&key) {
            shard.slab[i].value = value;
            shard.slab[i].epoch = epoch;
            shard.unlink(i);
            shard.push_front(i);
            return 0;
        }
        let i = match shard.free.pop() {
            Some(i) => {
                shard.slab[i] = Entry {
                    key,
                    value,
                    epoch,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                shard.slab.push(Entry {
                    key,
                    value,
                    epoch,
                    prev: NIL,
                    next: NIL,
                });
                shard.slab.len() - 1
            }
        };
        shard.index.insert(key, i);
        shard.push_front(i);
        let mut evicted = 0;
        while shard.index.len() > shard.capacity {
            let lru = shard.tail;
            debug_assert_ne!(lru, NIL, "over-capacity shard with empty LRU list");
            shard.remove_slot(lru);
            evicted += 1;
        }
        evicted
    }

    /// Evict every entry not optimized under `epoch`, returning the
    /// evicted `(key, value)` pairs so the caller can keep them around
    /// — the service shelves them for stale-serve degraded mode
    /// instead of letting the plans vanish at the epoch bump. The
    /// order is deterministic (sorted by key) so downstream policies
    /// that trim the harvest behave identically across runs.
    pub fn purge_stale(&self, epoch: u64) -> Vec<(u128, V)> {
        let mut purged = Vec::new();
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard poisoned");
            let stale: Vec<usize> = shard
                .index
                .values()
                .copied()
                .filter(|&i| shard.slab[i].epoch != epoch)
                .collect();
            for i in stale {
                purged.push((shard.slab[i].key, shard.slab[i].value.clone()));
                shard.remove_slot(i);
            }
        }
        purged.sort_by_key(|(key, _)| *key);
        purged
    }

    /// Current number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").index.len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards actually allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_and_lru_order() {
        // One shard, capacity 2, to make eviction order observable.
        let cache: ShardedLru<&'static str> = ShardedLru::new(2, 1);
        assert_eq!(cache.get(1, 0), Lookup::Miss);
        assert_eq!(cache.insert(1, "one", 0), 0);
        assert_eq!(cache.insert(2, "two", 0), 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert_eq!(cache.get(1, 0), Lookup::Hit("one"));
        assert_eq!(cache.insert(3, "three", 0), 1);
        assert_eq!(cache.get(2, 0), Lookup::Miss, "LRU entry evicted");
        assert_eq!(cache.get(1, 0), Lookup::Hit("one"));
        assert_eq!(cache.get(3, 0), Lookup::Hit("three"));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn epoch_mismatch_is_stale_and_evicts() {
        let cache: ShardedLru<u32> = ShardedLru::new(8, 2);
        cache.insert(7, 70, 0);
        assert_eq!(cache.get(7, 0), Lookup::Hit(70));
        assert_eq!(
            cache.get(7, 1),
            Lookup::Stale(70),
            "stale probe surfaces the outgoing value"
        );
        assert_eq!(cache.get(7, 1), Lookup::Miss, "stale entry removed");
        cache.insert(7, 71, 1);
        assert_eq!(cache.get(7, 1), Lookup::Hit(71));
    }

    #[test]
    fn purge_sweeps_only_stale_entries() {
        let cache: ShardedLru<u32> = ShardedLru::new(64, 4);
        for k in 0..10u128 {
            cache.insert(k, k as u32, 0);
        }
        for k in 10..14u128 {
            cache.insert(k, k as u32, 1);
        }
        let purged = cache.purge_stale(1);
        assert_eq!(purged.len(), 10);
        // The harvest carries the evicted values, sorted by key.
        assert_eq!(purged[0], (0, 0));
        assert_eq!(purged[9], (9, 9));
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.get(12, 1), Lookup::Hit(12));
    }

    #[test]
    fn reinsert_refreshes_in_place() {
        let cache: ShardedLru<u32> = ShardedLru::new(4, 1);
        cache.insert(5, 50, 0);
        assert_eq!(cache.insert(5, 51, 0), 0);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(5, 0), Lookup::Hit(51));
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache: ShardedLru<u32> = ShardedLru::new(100, 3);
        assert_eq!(cache.shard_count(), 4);
        let cache: ShardedLru<u32> = ShardedLru::new(100, 0);
        assert_eq!(cache.shard_count(), 1);
    }

    #[test]
    fn capacity_is_enforced_across_shards() {
        let cache: ShardedLru<u32> = ShardedLru::new(16, 4);
        for k in 0..200u128 {
            cache.insert(k, k as u32, 0);
        }
        // Each of the 4 shards holds at most ceil(16/4) = 4 entries.
        assert!(cache.len() <= 16, "len {} exceeds capacity", cache.len());
        assert!(!cache.is_empty());
    }
}
