//! The resident optimizer service: fingerprint → cache → single
//! flight → enumeration.
//!
//! [`OptimizerService`] is the shared, `Send + Sync` heart of the
//! daemon. Its request path holds no lock across an enumeration:
//!
//! 1. snapshot the catalog (`RwLock<Arc<Catalog>>` — statistics
//!    refreshes swap a new `Arc` in without blocking in-flight
//!    optimizations, which keep planning against their snapshot);
//! 2. bind the request (SQL text through `sdp-sql`, or a programmatic
//!    [`Query`]) and compute its [`Fingerprint`];
//! 3. probe the sharded LRU under the snapshot's statistics epoch;
//! 4. on a miss, join the single-flight for the key: the leader runs
//!    the enumeration (strategy from [`crate::select::choose`] unless
//!    the request pins one) and publishes; waiters block and receive
//!    the same plan;
//! 5. record hit/miss/coalesced/evicted counters and per-strategy
//!    latency into `sdp-metrics`.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use sdp_catalog::{AnalyzedRelation, Catalog};
use sdp_core::{
    Algorithm, DegradeReason, EnumeratorKind, GovernedFailure, GovernedPlan, Governor, OptError,
    Optimizer, PlanNode, Rung,
};
use sdp_metrics::{
    CountersSnapshot, GovernorCounters, GovernorSnapshot, MetricsReport, OverloadCounters,
    RungLatencies, ServiceCounters, StoreCounters, StrategyLatencies,
};
use sdp_query::canon::stable_hash;
use sdp_query::Query;
use sdp_sql::SqlError;
use sdp_store::{
    DeadLetterQueue, DlqDegradation, DlqErrorKind, DlqRecord, PlanRecord, PlanStore, StoreError,
    StoreOptions,
};
use sdp_trace::{Event, Tracer};

use crate::cache::{Lookup, ShardedLru};
use crate::durable::StoreHandle;
use crate::fingerprint::{fingerprint_query, Fingerprint};
use crate::select;
use crate::singleflight::{Flight, SingleFlight};

/// Tuning for one [`OptimizerService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum cached plans (spread over the shards).
    pub cache_capacity: usize,
    /// Number of cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Enumeration parallelism override; `None` inherits the
    /// optimizer default (`SDP_THREADS` env or machine parallelism).
    pub parallelism: Option<usize>,
    /// Pair-enumeration strategy override; `None` inherits the
    /// optimizer default (`SDP_ENUMERATOR` env or `LevelScan`).
    pub enumerator: Option<sdp_core::EnumeratorKind>,
    /// Consecutive ladder-exhaustion / leader-panic failures on one
    /// fingerprint before its circuit breaker opens (0 disables the
    /// breaker entirely).
    pub breaker_threshold: u32,
    /// While a breaker is open, every Nth arrival is admitted as a
    /// half-open recovery probe (counted, never wall-clock; floored
    /// at 1, where every arrival probes).
    pub breaker_probe_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 1024,
            cache_shards: 8,
            parallelism: None,
            enumerator: None,
            breaker_threshold: 3,
            breaker_probe_every: 4,
        }
    }
}

/// How a request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanSource {
    /// The request led an enumeration.
    Fresh,
    /// Served from the plan cache.
    Cache,
    /// Coalesced onto another request's in-flight enumeration.
    Coalesced,
    /// Served from the stale shelf under admission pressure: a plan
    /// optimized under an older statistics epoch, handed back as a
    /// degraded answer instead of shedding the request outright.
    Stale,
}

/// A plan as stored in (and served from) the cache.
#[derive(Debug, Clone)]
pub struct CachedPlan {
    /// Root of the chosen physical plan.
    pub root: Arc<PlanNode>,
    /// Estimated plan cost.
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Strategy that produced the plan (display label).
    pub strategy: String,
    /// The degradation-ladder rung that produced the plan; `None` for
    /// off-ladder strategies (II/SA). A cached `Some(Rung::Goo)` entry
    /// marks a degraded plan the daemon could re-optimize at a higher
    /// rung when idle.
    pub rung: Option<Rung>,
    /// Ladder descents taken while producing the plan (0 = the
    /// requested strategy finished within its budget).
    pub degradations: u64,
    /// The query's structural fingerprint.
    pub fingerprint: Fingerprint,
    /// Statistics epoch the plan was optimized under.
    pub stats_epoch: u64,
    /// Whether this entry was pre-populated from the durable store at
    /// startup (a *warm* entry) rather than optimized by this process.
    pub warm: bool,
}

/// One optimization request: a query (by text or by value) plus an
/// optional pinned strategy and per-request resource limits.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    spec: QuerySpec,
    algorithm: Option<Algorithm>,
    deadline: Option<Duration>,
    memory_budget: Option<u64>,
    #[cfg(feature = "testkit")]
    faults: Option<sdp_testkit::FaultPlan>,
}

#[derive(Debug, Clone)]
enum QuerySpec {
    Sql(String),
    Query(Query),
}

impl ServiceRequest {
    /// Request optimization of a SQL string.
    pub fn sql(text: impl Into<String>) -> Self {
        ServiceRequest {
            spec: QuerySpec::Sql(text.into()),
            algorithm: None,
            deadline: None,
            memory_budget: None,
            #[cfg(feature = "testkit")]
            faults: None,
        }
    }

    /// Request optimization of an already-bound query.
    pub fn query(query: Query) -> Self {
        ServiceRequest {
            spec: QuerySpec::Query(query),
            algorithm: None,
            deadline: None,
            memory_budget: None,
            #[cfg(feature = "testkit")]
            faults: None,
        }
    }

    /// Pin the enumeration strategy instead of letting the
    /// topology-aware selector choose.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Set a total optimization deadline for this request; the
    /// governor slices it across the degradation ladder. Time spent
    /// queued in the daemon counts against it.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the memory-model budget for this request, in bytes.
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = Some(bytes);
        self
    }

    /// The request's deadline, if any.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Install a deterministic fault schedule for this request's
    /// enumeration (test builds only).
    #[cfg(feature = "testkit")]
    pub fn with_fault_plan(mut self, faults: sdp_testkit::FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Charge queue-wait time against the deadline: a request that
    /// waited in the daemon's queue has that much less time left to
    /// optimize. No-op when no deadline is set.
    pub(crate) fn shrink_deadline(&mut self, elapsed: Duration) {
        if let Some(d) = self.deadline.as_mut() {
            *d = d.saturating_sub(elapsed);
        }
    }
}

/// A served plan plus provenance.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The plan (shared with the cache).
    pub plan: CachedPlan,
    /// How the request was satisfied.
    pub source: PlanSource,
    /// Plan alternatives costed *by this request* — zero unless
    /// [`PlanSource::Fresh`].
    pub plans_costed: u64,
}

/// Why admission control shed a request before optimization ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The daemon's bounded admission queue was full at submit.
    QueueFull,
    /// The deadline remaining after charged queue-wait was below the
    /// cheapest rung's floor — the run could only have timed out.
    DeadlineExpired,
}

impl ShedReason {
    /// Short display label (used in trace events).
    pub fn label(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::DeadlineExpired => "deadline-expired",
        }
    }
}

/// Request-path errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The SQL front-end rejected the request text.
    Sql(SqlError),
    /// The enumeration failed (budget, disconnected graph, …).
    Opt(OptError),
    /// The single-flight leader panicked and the bounded
    /// retry-with-degradation policy was exhausted (the panic payload
    /// message is preserved). The flight is abandoned, so waiters
    /// retry rather than hang.
    LeaderPanicked(String),
    /// Admission control shed the request without optimizing —
    /// deterministic load shedding, not a fault.
    Shed(ShedReason),
    /// The fingerprint's circuit breaker was open and this arrival was
    /// not a scheduled half-open probe; the rejection is serialized to
    /// the dead-letter queue.
    BreakerOpen {
        /// Consecutive failures recorded when the breaker opened.
        failures: u32,
    },
    /// A daemon worker died before replying — an internal error,
    /// distinct from a clean [`ServiceError::Shutdown`].
    WorkerDied,
    /// The daemon shut down before answering.
    Shutdown,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Sql(e) => write!(f, "sql: {e}"),
            ServiceError::Opt(e) => write!(f, "optimizer: {e}"),
            ServiceError::LeaderPanicked(msg) => write!(f, "leader panicked: {msg}"),
            ServiceError::Shed(reason) => write!(f, "shed: {}", reason.label()),
            ServiceError::BreakerOpen { failures } => {
                write!(f, "circuit breaker open ({failures} consecutive failures)")
            }
            ServiceError::WorkerDied => write!(f, "daemon worker died before replying"),
            ServiceError::Shutdown => write!(f, "service shut down"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Per-fingerprint circuit-breaker state. Keyed by the *raw*
/// fingerprint rather than the plan key: a query that poisons the
/// ladder does so regardless of the pinned strategy or enumerator, so
/// every variant trips — and recovers — together.
#[derive(Debug)]
struct Breaker {
    entries: Mutex<HashMap<u128, BreakerEntry>>,
    /// Number of fingerprints with tracked failure state; lets the
    /// request hot path skip the lock while everything is healthy.
    tracked: AtomicU64,
    threshold: u32,
    probe_every: u64,
}

#[derive(Debug, Default)]
struct BreakerEntry {
    consecutive_failures: u32,
    open: bool,
    arrivals_while_open: u64,
}

/// Admission decision for one arrival.
enum BreakerVerdict {
    /// Closed (or untracked): proceed normally.
    Proceed,
    /// Open, but this arrival is the scheduled half-open probe.
    Probe,
    /// Open: fail fast without optimizing.
    Reject {
        /// Consecutive failures recorded when the breaker opened.
        failures: u32,
    },
}

/// What a recorded success meant for the fingerprint's breaker.
enum BreakerSuccess {
    /// No state was tracked (the common healthy path).
    Untracked,
    /// A closed entry's failure streak was reset.
    Reset,
    /// An *open* breaker closed — the half-open probe succeeded.
    Recovered,
}

impl Breaker {
    fn new(threshold: u32, probe_every: u64) -> Self {
        Breaker {
            entries: Mutex::new(HashMap::new()),
            tracked: AtomicU64::new(0),
            threshold,
            probe_every: probe_every.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u128, BreakerEntry>> {
        self.entries.lock().expect("breaker lock poisoned")
    }

    /// Gate one arrival. Open breakers count arrivals and admit every
    /// `probe_every`-th one as a half-open probe — a logical clock, so
    /// the decision sequence is identical across thread counts.
    fn admit(&self, fp: u128) -> BreakerVerdict {
        if self.tracked.load(Ordering::Relaxed) == 0 {
            return BreakerVerdict::Proceed;
        }
        let mut entries = self.lock();
        match entries.get_mut(&fp) {
            Some(entry) if entry.open => {
                entry.arrivals_while_open += 1;
                if entry.arrivals_while_open % self.probe_every == 0 {
                    BreakerVerdict::Probe
                } else {
                    BreakerVerdict::Reject {
                        failures: entry.consecutive_failures,
                    }
                }
            }
            _ => BreakerVerdict::Proceed,
        }
    }

    /// Record a ladder-exhaustion / leader-panic failure. Returns the
    /// consecutive-failure count when *this* failure tripped the
    /// breaker open (exactly at the threshold), `None` otherwise.
    fn record_failure(&self, fp: u128) -> Option<u32> {
        if self.threshold == 0 {
            return None;
        }
        let mut entries = self.lock();
        let entry = entries.entry(fp).or_insert_with(|| {
            self.tracked.fetch_add(1, Ordering::Relaxed);
            BreakerEntry::default()
        });
        entry.consecutive_failures += 1;
        if !entry.open && entry.consecutive_failures >= self.threshold {
            entry.open = true;
            entry.arrivals_while_open = 0;
            Some(entry.consecutive_failures)
        } else {
            None
        }
    }

    /// Record a served plan for the fingerprint, clearing any tracked
    /// failure streak.
    fn record_success(&self, fp: u128) -> BreakerSuccess {
        if self.tracked.load(Ordering::Relaxed) == 0 {
            return BreakerSuccess::Untracked;
        }
        let mut entries = self.lock();
        match entries.remove(&fp) {
            Some(entry) => {
                self.tracked.fetch_sub(1, Ordering::Relaxed);
                if entry.open {
                    BreakerSuccess::Recovered
                } else {
                    BreakerSuccess::Reset
                }
            }
            None => BreakerSuccess::Untracked,
        }
    }
}

impl From<SqlError> for ServiceError {
    fn from(e: SqlError) -> Self {
        ServiceError::Sql(e)
    }
}

impl From<OptError> for ServiceError {
    fn from(e: OptError) -> Self {
        ServiceError::Opt(e)
    }
}

/// The shared optimizer service. `Arc` it and hand clones of the
/// `Arc` to every worker thread.
#[derive(Debug)]
pub struct OptimizerService {
    catalog: RwLock<Arc<Catalog>>,
    cache: ShardedLru<CachedPlan>,
    flights: SingleFlight<u128, CachedPlan>,
    counters: ServiceCounters,
    latencies: StrategyLatencies,
    governor_counters: GovernorCounters,
    rung_latencies: RungLatencies,
    store_counters: Arc<StoreCounters>,
    store: Option<StoreHandle>,
    dlq: Option<Mutex<DeadLetterQueue>>,
    tracer: Tracer,
    /// The effective pair-enumeration strategy, resolved once at
    /// construction (config override or `SDP_ENUMERATOR`): part of the
    /// plan-cache key, so it must not drift between requests.
    enumerator: EnumeratorKind,
    /// Overload-control counters: sheds, stale serves, breaker
    /// transitions, queue/in-flight gauges.
    overload: OverloadCounters,
    /// Epoch-evicted plans parked for stale-serve degraded mode,
    /// keyed like the cache and bounded at the cache capacity.
    stale_shelf: Mutex<HashMap<u128, CachedPlan>>,
    breaker: Breaker,
    config: ServiceConfig,
    #[cfg(feature = "testkit")]
    store_faults: Option<sdp_testkit::FaultPlan>,
}

/// Fingerprints render as fixed-width hex in trace events so they can
/// be grepped and joined across the request lifecycle.
fn fp_hex(fp: Fingerprint) -> String {
    format!("{:032x}", fp.0)
}

/// Render a panic payload as a message, as `std::panic::catch_unwind`
/// hands it back.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Cache/flight key: the fingerprint folded with the strategy *and*
/// the active pair enumerator, so a pinned `Dp` request and the
/// selector's `Sdp` choice for the same query occupy distinct entries,
/// and plans enumerated under `Dpccp` never satisfy a `LevelScan`
/// session (the enumerators may legitimately produce different plans
/// at equal cost). `Algorithm` carries `f64` tuning and is
/// deliberately not `Hash`, so its `Debug` rendering (which shows
/// every tuning field) stands in as the hashable identity — which is
/// also what lets the durable store reconstruct identical keys at warm
/// restart from the persisted rendering ([`plan_key_repr`]).
fn plan_key(fp: Fingerprint, algorithm: Algorithm, enumerator: EnumeratorKind) -> u128 {
    plan_key_repr(fp, &format!("{algorithm:?}"), enumerator)
}

/// [`plan_key`] on a pre-rendered strategy identity — the form the
/// warm-restart fill uses, since persisted records carry the rendering
/// rather than the (non-`Hash`) `Algorithm` value.
fn plan_key_repr(fp: Fingerprint, algo_repr: &str, enumerator: EnumeratorKind) -> u128 {
    let mut words = [0u64; 4];
    for (i, chunk) in algo_repr.as_bytes().chunks(8).enumerate() {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words[i % 4] ^= u64::from_le_bytes(w).rotate_left((i / 4) as u32);
    }
    words[3] ^= (enumerator.stable_tag() as u64) << 56;
    let algo_hash = stable_hash(0x61_6c_67_6f, &words) as u128;
    fp.0 ^ (algo_hash | (algo_hash << 64))
}

impl OptimizerService {
    /// Service over an initial catalog with the given tuning.
    pub fn new(catalog: Catalog, config: ServiceConfig) -> Self {
        let enumerator = config.enumerator.unwrap_or_else(EnumeratorKind::from_env);
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_probe_every);
        OptimizerService {
            catalog: RwLock::new(Arc::new(catalog)),
            cache: ShardedLru::new(config.cache_capacity, config.cache_shards),
            flights: SingleFlight::new(),
            counters: ServiceCounters::new(),
            latencies: StrategyLatencies::new(),
            governor_counters: GovernorCounters::new(),
            rung_latencies: RungLatencies::new(),
            store_counters: Arc::new(StoreCounters::default()),
            store: None,
            dlq: None,
            tracer: Tracer::disabled(),
            enumerator,
            overload: OverloadCounters::new(),
            stale_shelf: Mutex::new(HashMap::new()),
            breaker,
            config,
            #[cfg(feature = "testkit")]
            store_faults: None,
        }
    }

    /// Service with default tuning.
    pub fn with_defaults(catalog: Catalog) -> Self {
        OptimizerService::new(catalog, ServiceConfig::default())
    }

    /// Attach a trace sink: request-lifecycle events (cache outcome,
    /// degradations, errors) flow to it, and — when the `trace`
    /// feature is on — so do the optimizer's enumeration spans.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The service's tracer (disabled unless one was attached).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach the durable plan store under `dir` with default tuning.
    /// See [`with_store_options`](Self::with_store_options).
    pub fn with_store(self, dir: &Path) -> Result<Self, StoreError> {
        self.with_store_options(dir, StoreOptions::default())
    }

    /// Attach the durable plan store under `dir`: replay its segments
    /// (dropping records from other statistics epochs), pre-populate
    /// the plan cache with the live records as *warm* entries, and
    /// start the write-behind thread that persists every fresh plan.
    ///
    /// Call after [`with_tracer`](Self::with_tracer) so the
    /// `warm_start` event reaches the sink, and before the service is
    /// shared. Warm entries satisfy requests like any cached plan and
    /// additionally count `store_warm_hits`.
    pub fn with_store_options(
        mut self,
        dir: &Path,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let epoch = self.catalog().stats_epoch();
        #[allow(unused_mut)]
        let (mut store, records, stats) =
            PlanStore::open(dir, epoch, options, Arc::clone(&self.store_counters))?;
        #[cfg(feature = "testkit")]
        if let Some(faults) = self.store_faults.take() {
            store.inject_faults(faults);
        }
        for record in &records {
            let key = plan_key_repr(
                Fingerprint(record.fingerprint),
                &record.algo_repr,
                record.enumerator,
            );
            let plan = CachedPlan {
                root: Arc::clone(&record.root),
                cost: record.cost,
                rows: record.rows,
                strategy: record.strategy.clone(),
                rung: record.rung,
                degradations: record.degradations,
                fingerprint: Fingerprint(record.fingerprint),
                stats_epoch: record.stats_epoch,
                warm: true,
            };
            self.cache.insert(key, plan, epoch);
            self.store_counters.record_warm_fill();
        }
        self.tracer.emit_with(|| {
            Event::new("warm_start")
                .with("live", stats.live)
                .with("stale_dropped", stats.stale_dropped)
                .with("torn", stats.recovery.truncated_bytes)
                .with("epoch", epoch)
        });
        self.store = Some(StoreHandle::spawn(store, Arc::clone(&self.store_counters)));
        Ok(self)
    }

    /// Attach a dead-letter queue under `dir`: requests that exhaust
    /// the degradation ladder or exhaust the leader-panic retry are
    /// serialized there (query canon, fault context, degradation
    /// history) for offline replay via `sdp-service replay --dlq`.
    pub fn with_dlq(mut self, dir: &Path) -> Result<Self, StoreError> {
        let (dlq, _, _) = DeadLetterQueue::open(dir)?;
        self.store_counters.set_dlq_depth(dlq.len() as u64);
        self.dlq = Some(Mutex::new(dlq));
        Ok(self)
    }

    /// Arm a deterministic crash point in the durable store (consumed
    /// by the next [`with_store_options`](Self::with_store_options)
    /// call). Test builds only.
    #[cfg(feature = "testkit")]
    pub fn with_store_faults(mut self, faults: sdp_testkit::FaultPlan) -> Self {
        self.store_faults = Some(faults);
        self
    }

    /// Block until every plan enqueued to the write-behind store has
    /// been applied to the segment log. No-op without a store.
    pub fn flush_store(&self) {
        if let Some(store) = &self.store {
            store.flush();
        }
    }

    /// Durable-store and DLQ counters (live handle; all zeros when no
    /// store is attached).
    pub fn store_counters(&self) -> &StoreCounters {
        &self.store_counters
    }

    /// Current dead-letter queue depth (0 without a DLQ).
    pub fn dlq_depth(&self) -> usize {
        self.dlq
            .as_ref()
            .map(|d| d.lock().expect("dlq lock poisoned").len())
            .unwrap_or(0)
    }

    /// One-call snapshot of every metric family the service owns, for
    /// the exposition endpoints (`prometheus_text`, `--metrics-json`).
    pub fn metrics_report(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.snapshot(),
            governor: self.governor_counters.snapshot(),
            strategies: self.latencies.snapshot(),
            rungs: self.rung_latencies.snapshot(),
            alloc: sdp_metrics::alloc::snapshot(),
            store: self.store_counters.snapshot(),
            overload: self.overload.snapshot(),
            cached_plans: self.cache.len() as u64,
            // The service itself never executes plans; Q-error series
            // are merged in by callers that run an observed-execution
            // pass (`sdp-service replay --qerror`).
            qerror: std::collections::BTreeMap::new(),
        }
    }

    /// Overload-control counters (sheds, stale serves, breaker
    /// transitions, queue gauges) — live handle; the daemon records
    /// its admission decisions here.
    pub fn overload_counters(&self) -> &OverloadCounters {
        &self.overload
    }

    /// The current catalog snapshot.
    pub fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog.read().expect("catalog lock poisoned"))
    }

    /// Request counters (live handle).
    pub fn counters(&self) -> &ServiceCounters {
        &self.counters
    }

    /// Snapshot of the request counters.
    pub fn counters_snapshot(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    /// Per-strategy enumeration latencies.
    pub fn latencies(&self) -> &StrategyLatencies {
        &self.latencies
    }

    /// Governor counters (degradations by reason, timeouts, leader
    /// retries) — live handle.
    pub fn governor_counters(&self) -> &GovernorCounters {
        &self.governor_counters
    }

    /// Snapshot of the governor counters.
    pub fn governor_snapshot(&self) -> GovernorSnapshot {
        self.governor_counters.snapshot()
    }

    /// Per-rung enumeration latency histograms.
    pub fn rung_latencies(&self) -> &RungLatencies {
        &self.rung_latencies
    }

    /// Number of plans currently cached.
    pub fn cached_plans(&self) -> usize {
        self.cache.len()
    }

    /// Serialize a failed request into the dead-letter queue (no-op
    /// without one). Only replayable faults land here: resource
    /// exhaustion at the bottom of the ladder, cancellation, and
    /// exhausted leader-panic retries — semantic errors (disconnected
    /// graph, empty query) would fail identically on replay.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_dead_letter(
        &self,
        catalog: &Catalog,
        query: &Query,
        fingerprint: Fingerprint,
        request: &ServiceRequest,
        error_kind: DlqErrorKind,
        error: String,
        degradations: &[sdp_core::DegradeEvent],
    ) {
        let Some(dlq) = &self.dlq else { return };
        let record = DlqRecord {
            fingerprint: fingerprint.0,
            stats_epoch: catalog.stats_epoch(),
            enumerator: self.enumerator,
            algorithm: request.algorithm,
            error_kind,
            error: error.clone(),
            degradations: degradations
                .iter()
                .map(|e| DlqDegradation {
                    from: e.from,
                    to: e.to,
                    reason: e.reason,
                })
                .collect(),
            deadline_ms: request.deadline.map(|d| d.as_millis() as u64),
            memory_bytes: request.memory_budget,
            sql: sdp_sql::render_sql(catalog, query),
            query: query.clone(),
        };
        match dlq.lock().expect("dlq lock poisoned").enqueue(record) {
            Ok(()) => {
                self.store_counters.record_dlq_enqueued();
                self.tracer.emit_with(|| {
                    Event::new("dlq_enqueue")
                        .with("fingerprint", fp_hex(fingerprint))
                        .with("kind", error_kind.label())
                        .with("error", error.clone())
                });
            }
            Err(_) => self.store_counters.record_write_error(),
        }
    }

    /// Park an epoch-evicted plan on the stale shelf (bounded at the
    /// cache capacity) so stale-serve degraded mode can hand it back
    /// under admission pressure.
    fn shelve(&self, key: u128, plan: CachedPlan) {
        let mut shelf = self.stale_shelf.lock().expect("stale shelf poisoned");
        if shelf.len() < self.config.cache_capacity || shelf.contains_key(&key) {
            shelf.insert(key, plan);
        }
    }

    fn note_breaker_failure(&self, fingerprint: Fingerprint) {
        if let Some(failures) = self.breaker.record_failure(fingerprint.0) {
            self.overload.record_breaker_trip();
            self.tracer.emit_with(|| {
                Event::new("breaker_open")
                    .with("fingerprint", fp_hex(fingerprint))
                    .with("failures", u64::from(failures))
            });
        }
    }

    fn note_breaker_success(&self, fingerprint: Fingerprint) {
        if let BreakerSuccess::Recovered = self.breaker.record_success(fingerprint.0) {
            self.overload.record_breaker_recovery();
            self.tracer
                .emit_with(|| Event::new("breaker_close").with("fingerprint", fp_hex(fingerprint)));
        }
    }

    /// Degraded-mode lookup: serve the request from the stale shelf —
    /// a plan optimized under an older statistics epoch — without
    /// enumerating. Returns `None` when the request can't be bound or
    /// nothing is shelved for its key; the daemon tries this before
    /// shedding under admission pressure.
    pub fn serve_stale(&self, request: &ServiceRequest) -> Option<ServiceResponse> {
        let catalog = self.catalog();
        let query = match &request.spec {
            QuerySpec::Sql(text) => sdp_sql::parse_query(&catalog, text).ok()?,
            QuerySpec::Query(q) => q.clone(),
        };
        let algorithm = request.algorithm.unwrap_or_else(|| select::choose(&query));
        let fingerprint = fingerprint_query(&catalog, &query);
        let key = plan_key(fingerprint, algorithm, self.enumerator);
        let plan = self
            .stale_shelf
            .lock()
            .expect("stale shelf poisoned")
            .get(&key)
            .cloned()?;
        self.overload.record_served_stale();
        self.tracer.emit_with(|| {
            Event::new("served_stale")
                .with("fingerprint", fp_hex(fingerprint))
                .with("rung", plan.strategy.clone())
                .with("stats_epoch", plan.stats_epoch)
        });
        Some(ServiceResponse {
            plan,
            source: PlanSource::Stale,
            plans_costed: 0,
        })
    }

    /// Serve one request: bind, fingerprint, probe the cache, and
    /// enumerate (or coalesce) on a miss.
    pub fn get_plan(&self, request: &ServiceRequest) -> Result<ServiceResponse, ServiceError> {
        let catalog = self.catalog();
        let query = match &request.spec {
            QuerySpec::Sql(text) => sdp_sql::parse_query(&catalog, text)?,
            QuerySpec::Query(q) => q.clone(),
        };
        let algorithm = request.algorithm.unwrap_or_else(|| select::choose(&query));
        let fingerprint = fingerprint_query(&catalog, &query);
        let key = plan_key(fingerprint, algorithm, self.enumerator);
        let epoch = catalog.stats_epoch();

        // Circuit-breaker gate: a fingerprint that exhausted the
        // ladder `breaker_threshold` times in a row fails fast here
        // (straight into the DLQ) instead of burning another full
        // ladder walk. Every `breaker_probe_every`-th arrival is
        // admitted as the half-open recovery probe.
        match self.breaker.admit(fingerprint.0) {
            BreakerVerdict::Proceed => {}
            BreakerVerdict::Probe => {
                self.overload.record_breaker_probe();
                self.tracer.emit_with(|| {
                    Event::new("breaker_probe").with("fingerprint", fp_hex(fingerprint))
                });
            }
            BreakerVerdict::Reject { failures } => {
                self.overload.record_breaker_rejection();
                self.tracer.emit_with(|| {
                    Event::new("breaker_reject")
                        .with("fingerprint", fp_hex(fingerprint))
                        .with("failures", u64::from(failures))
                });
                self.enqueue_dead_letter(
                    &catalog,
                    &query,
                    fingerprint,
                    request,
                    DlqErrorKind::BreakerOpen,
                    format!("circuit breaker open ({failures} consecutive failures)"),
                    &[],
                );
                return Err(ServiceError::BreakerOpen { failures });
            }
        }

        loop {
            match self.cache.get(key, epoch) {
                Lookup::Hit(plan) => {
                    self.counters.record_hit();
                    self.note_breaker_success(fingerprint);
                    if plan.warm {
                        self.store_counters.record_warm_hit();
                    }
                    self.tracer.emit_with(|| {
                        Event::new("request")
                            .with("fingerprint", fp_hex(fingerprint))
                            .with("outcome", "hit")
                            .with("warm", u64::from(plan.warm))
                            .with("rung", plan.strategy.clone())
                            .with("enumerator", self.enumerator.label())
                            .with("digest", format!("{:016x}", plan.root.structural_digest()))
                            // Deadline attainment by *presence*, never
                            // remaining time: a served request with a
                            // deadline met it. Wall-clock margins would
                            // break cross-thread-count trace diffs.
                            .with(
                                "deadline",
                                if request.deadline().is_some() {
                                    "met"
                                } else {
                                    "none"
                                },
                            )
                    });
                    return Ok(ServiceResponse {
                        plan,
                        source: PlanSource::Cache,
                        plans_costed: 0,
                    });
                }
                // The evicted value is parked on the stale shelf: under
                // admission pressure the daemon hands it back (tagged
                // [`PlanSource::Stale`]) rather than shedding the
                // request outright.
                Lookup::Stale(stale) => {
                    self.counters.add_stale_evicted(1);
                    self.shelve(key, stale);
                    self.tracer.emit_with(|| {
                        Event::new("cache_stale")
                            .with("fingerprint", fp_hex(fingerprint))
                            .with("epoch", epoch)
                    });
                }
                Lookup::Miss => {}
            }

            match self.flights.join(key) {
                Flight::Leader(token) => {
                    let started = Instant::now();
                    let mut optimizer = Optimizer::new(&catalog);
                    #[cfg(feature = "trace")]
                    {
                        optimizer = optimizer.with_tracer(self.tracer.clone());
                    }
                    if let Some(threads) = self.config.parallelism {
                        optimizer = optimizer.with_parallelism(threads);
                    }
                    if let Some(kind) = self.config.enumerator {
                        optimizer = optimizer.with_enumerator(kind);
                    }
                    let mut governor = Governor::new();
                    if let Some(deadline) = request.deadline {
                        governor = governor.with_deadline(deadline);
                    }
                    if let Some(bytes) = request.memory_budget {
                        governor = governor.with_memory_budget(bytes);
                    }
                    #[cfg(feature = "testkit")]
                    let faults = request.faults.clone();
                    #[cfg(feature = "testkit")]
                    if let Some(plan) = faults.clone() {
                        governor = governor.with_fault_plan(plan);
                    }

                    // Bounded retry-with-degradation: a panicking
                    // leader gets exactly one retry, one rung cheaper.
                    // Optimizer errors are NOT retried here — the
                    // governor already walked the ladder for those —
                    // and they drop the token, abandoning the flight
                    // so waiters retry and surface them themselves.
                    let mut attempt = algorithm;
                    let mut retried = false;
                    let governed: GovernedPlan = loop {
                        let attempt_now = attempt;
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            #[cfg(feature = "testkit")]
                            if let Some(faults) = &faults {
                                if faults.take_leader_panic(&attempt_now.label()) {
                                    panic!("injected leader panic ({})", attempt_now.label());
                                }
                            }
                            optimizer.optimize_governed_full(&query, attempt_now, &governor)
                        }));
                        match run {
                            Ok(Ok(governed)) => break governed,
                            Ok(Err(GovernedFailure {
                                error: e,
                                degradations,
                            })) => {
                                if matches!(e, OptError::TimedOut { .. }) {
                                    self.governor_counters.record_timeout();
                                }
                                self.tracer.emit_with(|| {
                                    Event::new("request_error")
                                        .with("fingerprint", fp_hex(fingerprint))
                                        .with("rung", attempt_now.label())
                                        .with("error", format!("{e}"))
                                });
                                // A resource failure here means the
                                // *bottom* rung was exhausted (the
                                // governor already walked the ladder):
                                // dead-letter it for offline replay.
                                let kind = match &e {
                                    OptError::TimedOut { .. } => Some(DlqErrorKind::Timeout),
                                    OptError::MemoryExhausted { .. } => Some(DlqErrorKind::Memory),
                                    OptError::Cancelled => Some(DlqErrorKind::Cancelled),
                                    _ => None,
                                };
                                if let Some(kind) = kind {
                                    self.enqueue_dead_letter(
                                        &catalog,
                                        &query,
                                        fingerprint,
                                        request,
                                        kind,
                                        format!("{e}"),
                                        &degradations,
                                    );
                                    // Only replayable exhaustion feeds
                                    // the breaker — a semantic error
                                    // is not a poison signal.
                                    self.note_breaker_failure(fingerprint);
                                }
                                return Err(e.into());
                            }
                            Err(payload) => {
                                let next =
                                    Rung::for_algorithm(attempt_now).and_then(|r| r.next_down());
                                match next {
                                    Some(rung) if !retried => {
                                        retried = true;
                                        self.governor_counters.record_leader_retry();
                                        self.tracer.emit_with(|| {
                                            Event::new("leader_retry")
                                                .with("fingerprint", fp_hex(fingerprint))
                                                .with("from", attempt_now.label())
                                                .with("to", rung.label())
                                        });
                                        attempt = rung.algorithm();
                                    }
                                    _ => {
                                        let message = panic_message(payload.as_ref());
                                        self.tracer.emit_with(|| {
                                            Event::new("request_error")
                                                .with("fingerprint", fp_hex(fingerprint))
                                                .with("rung", attempt_now.label())
                                                .with(
                                                    "error",
                                                    format!("leader panicked: {message}"),
                                                )
                                        });
                                        self.enqueue_dead_letter(
                                            &catalog,
                                            &query,
                                            fingerprint,
                                            request,
                                            DlqErrorKind::LeaderPanicked,
                                            message.clone(),
                                            &[],
                                        );
                                        self.note_breaker_failure(fingerprint);
                                        return Err(ServiceError::LeaderPanicked(message));
                                    }
                                }
                            }
                        }
                    };

                    for event in &governed.degradations {
                        match event.reason {
                            DegradeReason::Deadline => {
                                self.governor_counters.record_deadline_degradation()
                            }
                            DegradeReason::Memory => {
                                self.governor_counters.record_memory_degradation()
                            }
                            DegradeReason::Cancelled => {
                                self.governor_counters.record_cancel_degradation()
                            }
                        }
                    }
                    let plan = CachedPlan {
                        cost: governed.plan.cost,
                        rows: governed.plan.rows,
                        root: Arc::clone(&governed.plan.root),
                        strategy: governed.rung_label(),
                        rung: governed.rung,
                        degradations: governed.degradations.len() as u64,
                        fingerprint,
                        stats_epoch: epoch,
                        warm: false,
                    };
                    let plans_costed = governed.plan.stats.plans_costed;
                    self.counters.record_miss();
                    self.counters.record_enumeration(plans_costed);
                    let elapsed = started.elapsed();
                    self.latencies.record(&plan.strategy, elapsed);
                    self.rung_latencies.record(
                        governed.rung.map(|r| r.label()).unwrap_or(&plan.strategy),
                        elapsed,
                    );
                    let evicted = self.cache.insert(key, plan.clone(), epoch);
                    self.counters.add_evicted(evicted);
                    // A current-epoch plan supersedes any shelved
                    // stale one for the key.
                    self.stale_shelf
                        .lock()
                        .expect("stale shelf poisoned")
                        .remove(&key);
                    self.note_breaker_success(fingerprint);
                    if let Some(store) = &self.store {
                        // Write-behind: the request returns without
                        // waiting on storage. The record carries the
                        // *requested* strategy's rendering — the key
                        // component — alongside the producing rung.
                        store.write(PlanRecord {
                            fingerprint: fingerprint.0,
                            stats_epoch: epoch,
                            rung: plan.rung,
                            enumerator: self.enumerator,
                            algo_repr: format!("{algorithm:?}"),
                            strategy: plan.strategy.clone(),
                            degradations: plan.degradations,
                            cost: plan.cost,
                            rows: plan.rows,
                            root: Arc::clone(&plan.root),
                        });
                        self.tracer.emit_with(|| {
                            Event::new("store_write")
                                .with("fingerprint", fp_hex(fingerprint))
                                .with("rung", plan.strategy.clone())
                                .with("epoch", epoch)
                        });
                    }
                    self.tracer.emit_with(|| {
                        Event::new("request")
                            .with("fingerprint", fp_hex(fingerprint))
                            .with("outcome", "fresh")
                            .with("rung", plan.strategy.clone())
                            .with("plans_costed", plans_costed)
                            .with("degradations", plan.degradations)
                            .with("enumerator", self.enumerator.label())
                            .with("digest", format!("{:016x}", plan.root.structural_digest()))
                            .with(
                                "deadline",
                                if request.deadline().is_some() {
                                    "met"
                                } else {
                                    "none"
                                },
                            )
                    });
                    token.publish(plan.clone());
                    return Ok(ServiceResponse {
                        plan,
                        source: PlanSource::Fresh,
                        plans_costed,
                    });
                }
                Flight::Coalesced(Some(plan)) => {
                    self.counters.record_coalesced();
                    self.tracer.emit_with(|| {
                        Event::new("request")
                            .with("fingerprint", fp_hex(fingerprint))
                            .with("outcome", "coalesced")
                            .with("rung", plan.strategy.clone())
                            .with("enumerator", self.enumerator.label())
                            .with("digest", format!("{:016x}", plan.root.structural_digest()))
                            .with(
                                "deadline",
                                if request.deadline().is_some() {
                                    "met"
                                } else {
                                    "none"
                                },
                            )
                    });
                    return Ok(ServiceResponse {
                        plan,
                        source: PlanSource::Coalesced,
                        plans_costed: 0,
                    });
                }
                // The leader abandoned (failed or panicked): retry
                // from the cache probe; this caller typically becomes
                // the next leader and observes the error directly.
                Flight::Coalesced(None) => continue,
            }
        }
    }

    /// Install fresh statistics: swaps a new catalog snapshot in
    /// (bumping the statistics epoch atomically with respect to new
    /// requests) and eagerly purges plans optimized under older
    /// epochs. Returns the new epoch.
    pub fn update_stats(&self, analyzed: Vec<AnalyzedRelation>) -> u64 {
        self.swap_catalog(|c| c.replace_stats(analyzed))
    }

    /// Bump the statistics epoch without changing the estimates —
    /// forces re-optimization of everything (an `ANALYZE`-everything
    /// barrier). Returns the new epoch.
    pub fn bump_stats_epoch(&self) -> u64 {
        self.swap_catalog(|c| c.bump_stats_epoch())
    }

    fn swap_catalog(&self, mutate: impl FnOnce(&mut Catalog)) -> u64 {
        let epoch = {
            let mut guard = self.catalog.write().expect("catalog lock poisoned");
            let mut next = (**guard).clone();
            mutate(&mut next);
            let epoch = next.stats_epoch();
            *guard = Arc::new(next);
            epoch
        };
        // Harvest the purge onto the stale shelf: the outgoing plans
        // are exactly what stale-serve degraded mode wants to hand
        // back under admission pressure.
        let purged = self.cache.purge_stale(epoch);
        self.counters.add_stale_evicted(purged.len() as u64);
        for (key, plan) in purged {
            self.shelve(key, plan);
        }
        epoch
    }
}

// The whole point of the service is to be shared across worker
// threads; keep that property machine-checked.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<OptimizerService>();
    assert_send_sync::<ServiceRequest>();
    assert_send_sync::<ServiceResponse>();
    assert_send_sync::<ServiceError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn plan_key_separates_strategies_fingerprints_and_enumerators() {
        let fp1 = Fingerprint(0x1234_5678_9abc_def0);
        let fp2 = Fingerprint(0x0fed_cba9_8765_4321);
        let level = EnumeratorKind::LevelScan;
        assert_eq!(
            plan_key(fp1, Algorithm::Dp, level),
            plan_key(fp1, Algorithm::Dp, level)
        );
        assert_ne!(
            plan_key(fp1, Algorithm::Dp, level),
            plan_key(fp1, Algorithm::Goo, level)
        );
        assert_ne!(
            plan_key(fp1, Algorithm::Idp { k: 4 }, level),
            plan_key(fp1, Algorithm::Idp { k: 7 }, level)
        );
        assert_ne!(
            plan_key(fp1, Algorithm::Dp, level),
            plan_key(fp2, Algorithm::Dp, level)
        );
        // The active enumerator is part of the identity: DPccp and the
        // level scan may produce different (equal-cost) plans, so they
        // must not share cache entries.
        assert_ne!(
            plan_key(fp1, Algorithm::Dp, EnumeratorKind::LevelScan),
            plan_key(fp1, Algorithm::Dp, EnumeratorKind::Dpccp)
        );
        // The repr-based form (used by warm restart) matches exactly.
        assert_eq!(
            plan_key(fp1, Algorithm::Idp { k: 4 }, EnumeratorKind::Dpccp),
            plan_key_repr(
                fp1,
                &format!("{:?}", Algorithm::Idp { k: 4 }),
                EnumeratorKind::Dpccp
            )
        );
    }

    #[test]
    fn sql_and_programmatic_requests_share_an_entry() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Chain(4), 9).instance(0);
        let sql = sdp_sql::render_sql(&catalog, &q);

        let by_text = service.get_plan(&ServiceRequest::sql(&sql)).unwrap();
        assert_eq!(by_text.source, PlanSource::Fresh);
        let by_value = service.get_plan(&ServiceRequest::query(q)).unwrap();
        assert_eq!(by_value.source, PlanSource::Cache);
        assert_eq!(
            by_text.plan.root.structural_digest(),
            by_value.plan.root.structural_digest()
        );
        assert_eq!(by_value.plans_costed, 0);
    }

    #[test]
    fn ordered_requests_never_serve_order_blind_cache_entries() {
        // Regression for the plan-cache key: the requested output
        // order is part of the fingerprint, so an ORDER BY (or GROUP
        // BY) request must never be satisfied by a cached order-blind
        // plan for the same join graph — and vice versa.
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let gen = QueryGenerator::new(&catalog, Topology::Chain(5), 6);
        let unordered = gen.instance(0);
        let ordered = gen.ordered_instance(0);
        let grouped = gen.grouped_instance(0);

        let blind = service
            .get_plan(&ServiceRequest::query(unordered.clone()).with_algorithm(Algorithm::Dp))
            .unwrap();
        assert_eq!(blind.source, PlanSource::Fresh);

        let with_order = service
            .get_plan(&ServiceRequest::query(ordered.clone()).with_algorithm(Algorithm::Dp))
            .unwrap();
        assert_eq!(
            with_order.source,
            PlanSource::Fresh,
            "ordered request must not hit the order-blind entry"
        );
        assert!(
            with_order.plan.root.ordering.is_some(),
            "served plan delivers the requested order"
        );

        let with_group = service
            .get_plan(&ServiceRequest::query(grouped).with_algorithm(Algorithm::Dp))
            .unwrap();
        assert_eq!(
            with_group.source,
            PlanSource::Fresh,
            "grouped request is a third distinct entry"
        );
        assert!(with_group.plan.root.ordering.is_some());
        assert_eq!(service.cached_plans(), 3);

        // Repeats hit their own entries — including the unordered one,
        // which still serves order-blind requests.
        for (q, want_order) in [(ordered, true), (unordered, false)] {
            let again = service
                .get_plan(&ServiceRequest::query(q).with_algorithm(Algorithm::Dp))
                .unwrap();
            assert_eq!(again.source, PlanSource::Cache);
            assert_eq!(again.plan.root.ordering.is_some(), want_order);
        }
    }

    #[test]
    fn sql_errors_surface_without_touching_counters() {
        let service = OptimizerService::with_defaults(Catalog::paper());
        let err = service
            .get_plan(&ServiceRequest::sql("select * from NOWHERE t"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Sql(_)), "{err}");
        assert_eq!(service.counters_snapshot().requests(), 0);
    }

    #[test]
    fn optimizer_errors_abandon_the_flight() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        // Disconnected graph: two relations, no join edge.
        let graph =
            sdp_query::JoinGraph::new(vec![sdp_catalog::RelId(0), sdp_catalog::RelId(1)], vec![]);
        let err = service
            .get_plan(&ServiceRequest::query(Query::new(graph)))
            .unwrap_err();
        assert!(
            matches!(err, ServiceError::Opt(OptError::DisconnectedJoinGraph)),
            "{err}"
        );
        // The abandoned flight must not linger and block later
        // requests for the same key.
        assert_eq!(service.cached_plans(), 0);
    }

    #[test]
    fn pinned_strategy_is_respected_and_keyed_separately() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Star(6), 2).instance(0);

        let goo = service
            .get_plan(&ServiceRequest::query(q.clone()).with_algorithm(Algorithm::Goo))
            .unwrap();
        assert_eq!(goo.plan.strategy, "GOO");
        assert_eq!(goo.source, PlanSource::Fresh);

        // The selector's choice (DP for 6 relations) is a different
        // key: fresh enumeration, not a hit on the GOO entry.
        let auto = service.get_plan(&ServiceRequest::query(q)).unwrap();
        assert_eq!(auto.plan.strategy, "DP");
        assert_eq!(auto.source, PlanSource::Fresh);
        assert_eq!(service.cached_plans(), 2);
    }

    #[test]
    fn ungoverned_requests_record_their_rung() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Chain(5), 3).instance(0);
        let resp = service.get_plan(&ServiceRequest::query(q)).unwrap();
        assert_eq!(resp.plan.rung, Some(Rung::Dp));
        assert_eq!(resp.plan.degradations, 0);
        let snap = service.governor_snapshot();
        assert_eq!(snap.degradations, 0);
        assert_eq!(snap.timeouts, 0);
        // The rung latency table mirrors the strategy table.
        assert!(service.rung_latencies().snapshot().contains_key("DP"));
    }

    #[test]
    fn memory_pressure_degrades_and_is_visible_in_metrics() {
        // Star-13 under a 1 MB model budget: DP blows it, SDP fits
        // (same frontier the core governor test pins down).
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Star(13), 5).instance(0);
        let request = ServiceRequest::query(q)
            .with_algorithm(Algorithm::Dp)
            .with_memory_budget(1 << 20);
        let resp = service.get_plan(&request).unwrap();
        assert_eq!(resp.plan.rung, Some(Rung::Sdp));
        assert_eq!(resp.plan.strategy, "SDP");
        assert_eq!(resp.plan.degradations, 1);
        let snap = service.governor_snapshot();
        assert_eq!(snap.degradations, 1);
        assert_eq!(snap.memory_degradations, 1);
        assert_eq!(snap.deadline_degradations, 0);
        assert_eq!(
            service
                .rung_latencies()
                .snapshot()
                .get("SDP")
                .map(|h| h.count),
            Some(1),
            "latency lands in the producing rung's histogram"
        );
    }

    #[test]
    fn cached_plans_keep_rung_provenance_through_hits_and_staleness() {
        // Regression: a stale probe must surface the evicted entry's
        // value (carrying its rung) instead of discarding it blind.
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Star(6), 4).instance(0);
        let request = ServiceRequest::query(q).with_algorithm(Algorithm::Goo);
        let fresh = service.get_plan(&request).unwrap();
        assert_eq!(fresh.plan.rung, Some(Rung::Goo));

        let hit = service.get_plan(&request).unwrap();
        assert_eq!(hit.source, PlanSource::Cache);
        assert_eq!(hit.plan.rung, Some(Rung::Goo), "hit keeps provenance");

        // Epoch bump purges eagerly; the re-optimized entry carries
        // fresh provenance under the new epoch.
        service.bump_stats_epoch();
        let reopt = service.get_plan(&request).unwrap();
        assert_eq!(reopt.source, PlanSource::Fresh);
        assert_eq!(reopt.plan.rung, Some(Rung::Goo));
        assert_eq!(reopt.plan.stats_epoch, service.catalog().stats_epoch());
    }

    #[test]
    fn off_ladder_strategies_cache_without_a_rung() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Chain(6), 8).instance(0);
        let resp = service
            .get_plan(&ServiceRequest::query(q).with_algorithm(Algorithm::ii()))
            .unwrap();
        assert_eq!(resp.plan.rung, None);
        assert_eq!(resp.plan.degradations, 0);
        // Off-ladder latencies are keyed by their strategy label.
        assert!(service
            .rung_latencies()
            .snapshot()
            .contains_key(&resp.plan.strategy));
    }

    #[test]
    fn request_lifecycle_flows_through_the_tracer() {
        let catalog = Catalog::paper();
        let sink = Arc::new(sdp_trace::MemorySink::unbounded());
        let service = OptimizerService::with_defaults(catalog.clone())
            .with_tracer(Tracer::new(Arc::clone(&sink) as _));
        let q = QueryGenerator::new(&catalog, Topology::Star(13), 5).instance(0);
        let request = ServiceRequest::query(q)
            .with_algorithm(Algorithm::Dp)
            .with_memory_budget(1 << 20);
        service.get_plan(&request).unwrap();
        service.get_plan(&request).unwrap();

        let events = sink.snapshot();
        let outcome = |want: &str| {
            events
                .iter()
                .filter(|e| {
                    e.name == "request"
                        && e.fields
                            .iter()
                            .any(|(k, v)| *k == "outcome" && v.to_string() == want)
                })
                .count()
        };
        assert_eq!(outcome("fresh"), 1);
        assert_eq!(outcome("hit"), 1);
        // The fresh request degraded DP → SDP under the 1 MB budget;
        // the fingerprint field is fixed-width hex on every event.
        assert!(events.iter().any(|e| e.name == "request"
            && e.fields
                .iter()
                .any(|(k, v)| *k == "rung" && v.to_string() == "SDP")));
        for event in events.iter().filter(|e| e.name == "request") {
            let fp = event
                .fields
                .iter()
                .find(|(k, _)| *k == "fingerprint")
                .map(|(_, v)| v.to_string())
                .expect("request events carry a fingerprint");
            assert_eq!(fp.len(), 32, "{fp}");
        }
    }

    #[test]
    fn metrics_report_round_trips_both_formats() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Star(13), 5).instance(0);
        let request = ServiceRequest::query(q)
            .with_algorithm(Algorithm::Dp)
            .with_memory_budget(1 << 20);
        service.get_plan(&request).unwrap();
        service.get_plan(&request).unwrap();

        let report = service.metrics_report();
        assert_eq!(report.counters.hits, 1);
        assert_eq!(report.counters.misses, 1);
        assert_eq!(report.governor.memory_degradations, 1);
        assert_eq!(report.cached_plans, 1);
        assert_eq!(report.rungs["SDP"].count, 1);

        let text = report.prometheus_text();
        assert!(text.contains("sdp_cache_hits_total 1"));
        assert!(text.contains("sdp_degradations_memory_total 1"));
        assert!(text.contains("sdp_rung_latency_seconds_bucket{rung=\"SDP\",le=\"+Inf\"} 1"));
        let json = report.to_json();
        assert!(json.contains("\"requests\": 2"));
        assert!(json.contains("\"memory_degradations\": 1"));
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdp-service-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn warm_restart_serves_bit_identical_plans_and_counts_warm_hits() {
        let dir = temp_dir("warm");
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, Topology::Star(6), 11).instance(0);

        let (digest, cost_bits) = {
            let service = OptimizerService::with_defaults(catalog.clone())
                .with_store(&dir)
                .unwrap();
            let resp = service.get_plan(&ServiceRequest::query(q.clone())).unwrap();
            assert_eq!(resp.source, PlanSource::Fresh);
            assert!(!resp.plan.warm);
            service.flush_store();
            assert_eq!(service.store_counters().snapshot().writes, 1);
            (resp.plan.root.structural_digest(), resp.plan.cost.to_bits())
        }; // service dropped = process "restart"

        let service = OptimizerService::with_defaults(catalog.clone())
            .with_store(&dir)
            .unwrap();
        assert_eq!(service.store_counters().snapshot().warm_fills, 1);
        assert_eq!(service.cached_plans(), 1);
        let resp = service.get_plan(&ServiceRequest::query(q)).unwrap();
        assert_eq!(resp.source, PlanSource::Cache, "warm entry serves the hit");
        assert!(resp.plan.warm);
        assert_eq!(resp.plan.root.structural_digest(), digest, "bit-identical");
        assert_eq!(resp.plan.cost.to_bits(), cost_bits, "costs bit-identical");
        assert_eq!(service.store_counters().snapshot().warm_hits, 1);
    }

    #[test]
    fn epoch_bump_invalidates_the_persisted_tier() {
        let dir = temp_dir("epoch");
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, Topology::Chain(5), 3).instance(0);
        {
            let service = OptimizerService::with_defaults(catalog.clone())
                .with_store(&dir)
                .unwrap();
            service.get_plan(&ServiceRequest::query(q.clone())).unwrap();
            service.flush_store();
        }
        let mut bumped = catalog.clone();
        bumped.bump_stats_epoch();
        let service = OptimizerService::with_defaults(bumped)
            .with_store(&dir)
            .unwrap();
        let snap = service.store_counters().snapshot();
        assert_eq!(snap.warm_fills, 0, "stale records must not warm the cache");
        assert_eq!(snap.stale_dropped, 1);
        let resp = service.get_plan(&ServiceRequest::query(q)).unwrap();
        assert_eq!(resp.source, PlanSource::Fresh, "stale plan re-optimized");
    }

    #[test]
    fn ladder_exhaustion_lands_in_the_dlq_with_its_history() {
        let dir = temp_dir("dlq");
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, Topology::Star(9), 7).instance(0);
        {
            let service = OptimizerService::with_defaults(catalog.clone())
                .with_dlq(&dir)
                .unwrap();
            // A zero-byte memory budget fails every rung down to GOO.
            let err = service
                .get_plan(
                    &ServiceRequest::query(q.clone())
                        .with_algorithm(Algorithm::Dp)
                        .with_memory_budget(0),
                )
                .unwrap_err();
            assert!(
                matches!(err, ServiceError::Opt(OptError::MemoryExhausted { .. })),
                "{err}"
            );
            assert_eq!(service.dlq_depth(), 1);
            assert_eq!(service.store_counters().snapshot().dlq_enqueued, 1);
            assert_eq!(service.store_counters().dlq_depth(), 1);
        }
        // The record survives the restart and carries the full canon.
        let (dlq, _, _) = sdp_store::DeadLetterQueue::open(&dir).unwrap();
        assert_eq!(dlq.len(), 1);
        let record = &dlq.records()[0];
        assert_eq!(record.error_kind, sdp_store::DlqErrorKind::Memory);
        assert_eq!(
            record.degradations.len(),
            3,
            "DP → SDP → IDP → GOO descent history: {:?}",
            record.degradations
        );
        assert_eq!(record.fingerprint, fingerprint_query(&catalog, &q).0);
        assert_eq!(record.memory_bytes, Some(0));
        assert!(record.sql.contains("SELECT"), "{}", record.sql);
        assert_eq!(record.query.graph.relations(), q.graph.relations());
    }

    #[test]
    fn breaker_trips_after_exact_threshold_and_recovers_via_probe() {
        let dir = temp_dir("breaker");
        let catalog = Catalog::paper();
        let service = OptimizerService::new(catalog.clone(), ServiceConfig::default())
            .with_dlq(&dir)
            .unwrap();
        let q = QueryGenerator::new(&catalog, Topology::Star(9), 7).instance(0);
        // A zero-byte memory budget exhausts every rung: poison.
        let poison = ServiceRequest::query(q.clone())
            .with_algorithm(Algorithm::Dp)
            .with_memory_budget(0);

        // K-1 failures leave the breaker closed; arrivals still run.
        for _ in 0..2 {
            let err = service.get_plan(&poison).unwrap_err();
            assert!(matches!(err, ServiceError::Opt(_)), "{err}");
        }
        assert_eq!(service.overload_counters().snapshot().breaker_trips, 0);
        // The Kth consecutive failure trips it.
        service.get_plan(&poison).unwrap_err();
        assert_eq!(service.overload_counters().snapshot().breaker_trips, 1);

        // While open, arrivals for the same *fingerprint* — even a
        // plain request without the poison pin — fail fast into the
        // DLQ without optimizing.
        for i in 1..4u64 {
            let err = service
                .get_plan(&ServiceRequest::query(q.clone()))
                .unwrap_err();
            assert_eq!(
                err,
                ServiceError::BreakerOpen { failures: 3 },
                "arrival {i}"
            );
        }
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.breaker_rejections, 3);
        // 3 ladder exhaustions + 3 breaker rejections, all captured.
        assert_eq!(service.dlq_depth(), 6);

        // The 4th open arrival is the half-open probe: it runs, the
        // plain request succeeds, and the breaker closes.
        let resp = service.get_plan(&ServiceRequest::query(q.clone())).unwrap();
        assert_eq!(resp.source, PlanSource::Fresh);
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.breaker_probes, 1);
        assert_eq!(snap.breaker_recoveries, 1);

        // Closed again: the next arrival serves from cache, and no
        // further rejections accrue.
        let resp = service.get_plan(&ServiceRequest::query(q)).unwrap();
        assert_eq!(resp.source, PlanSource::Cache);
        assert_eq!(service.overload_counters().snapshot().breaker_rejections, 3);
    }

    #[test]
    fn failed_probe_keeps_the_breaker_open() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Star(9), 2).instance(0);
        let poison = ServiceRequest::query(q.clone())
            .with_algorithm(Algorithm::Dp)
            .with_memory_budget(0);
        for _ in 0..3 {
            service.get_plan(&poison).unwrap_err();
        }
        // Walk to the probe slot (arrivals 1-3 rejected, 4th probes);
        // the probe re-runs the poison and fails again.
        for _ in 0..3 {
            service.get_plan(&poison).unwrap_err();
        }
        let err = service.get_plan(&poison).unwrap_err();
        assert!(matches!(err, ServiceError::Opt(_)), "probe ran: {err}");
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.breaker_probes, 1);
        assert_eq!(snap.breaker_recoveries, 0, "failed probe stays open");
        // Next arrival is rejected again: still open.
        let err = service.get_plan(&poison).unwrap_err();
        assert!(matches!(err, ServiceError::BreakerOpen { .. }), "{err}");
    }

    #[test]
    fn epoch_evicted_plans_are_shelved_and_served_stale() {
        let catalog = Catalog::paper();
        let service = OptimizerService::with_defaults(catalog.clone());
        let q = QueryGenerator::new(&catalog, Topology::Chain(5), 3).instance(0);
        let request = ServiceRequest::query(q);
        assert!(
            service.serve_stale(&request).is_none(),
            "nothing shelved yet"
        );

        let fresh = service.get_plan(&request).unwrap();
        let old_epoch = fresh.plan.stats_epoch;
        service.bump_stats_epoch();

        // The eager purge harvested the entry onto the shelf.
        let stale = service.serve_stale(&request).expect("shelved plan");
        assert_eq!(stale.source, PlanSource::Stale);
        assert_eq!(stale.plan.stats_epoch, old_epoch);
        assert_eq!(
            stale.plan.root.structural_digest(),
            fresh.plan.root.structural_digest()
        );
        assert_eq!(stale.plans_costed, 0);
        assert_eq!(service.overload_counters().snapshot().served_stale, 1);

        // A fresh re-optimization under the new epoch unshelves the
        // key: stale-serve must never shadow a current plan.
        let reopt = service.get_plan(&request).unwrap();
        assert_eq!(reopt.source, PlanSource::Fresh);
        assert!(service.serve_stale(&request).is_none());
    }

    #[test]
    fn queue_wait_shrinks_the_deadline() {
        let mut request = ServiceRequest::sql("select 1").with_deadline(Duration::from_secs(10));
        request.shrink_deadline(Duration::from_secs(4));
        assert_eq!(request.deadline(), Some(Duration::from_secs(6)));
        request.shrink_deadline(Duration::from_secs(100));
        assert_eq!(request.deadline(), Some(Duration::ZERO), "saturates");
        let mut bare = ServiceRequest::sql("select 1");
        bare.shrink_deadline(Duration::from_secs(1));
        assert_eq!(bare.deadline(), None, "no deadline, nothing to shrink");
    }
}
