//! Durability glue between the request path and `sdp-store`: the
//! write-behind thread that drains fresh plans into the segment log.
//!
//! The request path never does storage I/O. A fresh plan is cloned
//! into a [`PlanRecord`] and sent down an unbounded channel; one
//! writer thread owns the [`PlanStore`] and applies appends, rotation
//! and compaction in arrival order. Losing a write to a crash is
//! acceptable by design (the store is a cache, the source of truth is
//! re-optimization); blocking an optimization on `fsync` is not.

use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use sdp_metrics::StoreCounters;
use sdp_store::{PlanRecord, PlanStore};

pub(crate) enum StoreMsg {
    Write(Box<PlanRecord>),
    /// Barrier: acked once every message enqueued before it has been
    /// applied to the log.
    Flush(Sender<()>),
}

/// Handle to the write-behind thread. Dropping it closes the channel,
/// drains the queue, and joins the thread — daemon shutdown is a
/// clean flush by construction.
pub(crate) struct StoreHandle {
    tx: Option<Sender<StoreMsg>>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle").finish_non_exhaustive()
    }
}

impl StoreHandle {
    pub(crate) fn spawn(mut store: PlanStore, counters: Arc<StoreCounters>) -> Self {
        let (tx, rx) = channel::<StoreMsg>();
        let thread = std::thread::Builder::new()
            .name("sdp-store-writer".to_string())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        StoreMsg::Write(record) => {
                            if store.append(&record).is_err() {
                                // The durable tier is best-effort;
                                // the plan stays served from memory.
                                counters.record_write_error();
                            }
                        }
                        StoreMsg::Flush(ack) => {
                            let _ = ack.send(());
                        }
                    }
                }
            })
            .expect("spawning store writer");
        StoreHandle {
            tx: Some(tx),
            thread: Some(thread),
        }
    }

    pub(crate) fn write(&self, record: PlanRecord) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(StoreMsg::Write(Box::new(record)));
        }
    }

    /// Block until every previously enqueued write has hit the log.
    pub(crate) fn flush(&self) {
        if let Some(tx) = &self.tx {
            let (ack, done) = channel();
            if tx.send(StoreMsg::Flush(ack)).is_ok() {
                let _ = done.recv();
            }
        }
    }
}

impl Drop for StoreHandle {
    fn drop(&mut self) {
        self.tx.take(); // close the channel; the writer drains and exits
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}
