//! Query fingerprinting: the plan cache's structural key.
//!
//! Two optimization requests must share a cache entry exactly when the
//! optimizer would treat them identically: same multiset of relations
//! with the same statistics, joined pairwise on the same columns,
//! filtered by the same predicates, with the same interesting-order
//! request. Declaration order — of the `FROM` list, the `WHERE`
//! conjuncts, the filters — is presentation, not structure, so it must
//! not influence the key.
//!
//! The fingerprint is a Weisfeiler–Leman hash ([`sdp_query::canon`])
//! of the join graph under *semantic* labels:
//!
//! * **node label** — the bound relation id, its tuple count, the
//!   sorted multiset of local filter digests (column statistics +
//!   operator + constant), and order/group markers when the query's
//!   `ORDER BY` / `GROUP BY` land on this node (distinct positions, so
//!   an ordered, a grouped, and an unordered request never collide);
//! * **directional edge label** — per endpoint: own column, own
//!   distinct count, peer column, peer distinct count. Distinct counts
//!   are what the paper's equi-join selectivity `1/max(d₁,d₂)` is made
//!   of, so "selectivities" are in the key without ever materializing
//!   a float division.
//!
//! Statistics enter the labels from the catalog *snapshot* used for
//! the request, so a statistics refresh changes the fingerprints of
//! affected queries as well as the statistics epoch — stale entries
//! are unreachable even before the epoch purge evicts them.

use sdp_catalog::Catalog;
use sdp_query::canon::{self, stable_hash, StableHasher, WlLabels};
use sdp_query::Query;

/// An order-independent 128-bit structural hash of a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

fn column_distinct(catalog: &Catalog, rel: sdp_catalog::RelId, col: sdp_catalog::ColId) -> u64 {
    catalog
        .stats(rel)
        .ok()
        .and_then(|s| s.column(col))
        .map(|c| c.n_distinct.to_bits())
        .unwrap_or(0)
}

/// Compute the fingerprint of `query` under `catalog`'s current
/// statistics.
pub fn fingerprint_query(catalog: &Catalog, query: &Query) -> Fingerprint {
    let graph = &query.graph;
    let node_labels: Vec<u64> = (0..graph.len())
        .map(|v| {
            let rel = graph.relation(v);
            let tuples = catalog
                .stats(rel)
                .map(|s| s.relation.tuples.to_bits())
                .unwrap_or(0);
            let mut filters: Vec<u64> = graph
                .filters_on(v)
                .map(|f| {
                    stable_hash(
                        0x66_70_66_6c,
                        &[
                            f.column.col.0 as u64,
                            column_distinct(catalog, rel, f.column.col),
                            canon::pred_op_tag(f.op),
                            f.value as u64,
                        ],
                    )
                })
                .collect();
            filters.sort_unstable();
            let order_marker = match query.order_by {
                Some(o) if o.column.node == v => 1 + o.column.col.0 as u64,
                _ => 0,
            };
            let group_marker = match query.group_by {
                Some(g) if g.column.node == v => 1 + g.column.col.0 as u64,
                _ => 0,
            };
            let mut h = StableHasher::new(0x6670_6e64);
            h.write_u64(rel.0 as u64);
            h.write_u64(tuples);
            h.write_u64(order_marker);
            h.write_u64(group_marker);
            for f in filters {
                h.write_u64(f);
            }
            h.finish()
        })
        .collect();

    let edge_labels: Vec<(u64, u64)> = graph
        .edges()
        .iter()
        .map(|e| {
            let side = |own: sdp_query::ColRef, peer: sdp_query::ColRef| {
                stable_hash(
                    0x6670_6564,
                    &[
                        own.col.0 as u64,
                        column_distinct(catalog, graph.relation(own.node), own.col),
                        peer.col.0 as u64,
                        column_distinct(catalog, graph.relation(peer.node), peer.col),
                    ],
                )
            };
            (side(e.left, e.right), side(e.right, e.left))
        })
        .collect();

    Fingerprint(canon::wl_hash(
        graph,
        &WlLabels {
            node_labels,
            edge_labels,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_query::canon::permute_graph;
    use sdp_query::{ColRef, QueryGenerator, Topology};

    #[test]
    fn fingerprint_ignores_declaration_order() {
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, Topology::star_chain(9), 3)
            .with_filter_probability(0.5)
            .ordered_instance(0);
        let base = fingerprint_query(&catalog, &q);

        // Rotate the node indices and remap the order column.
        let n = q.graph.len();
        let perm: Vec<usize> = (0..n).map(|i| (i + 3) % n).collect();
        let mut permuted = sdp_query::Query::new(permute_graph(&q.graph, &perm));
        if let Some(o) = q.order_by {
            permuted = permuted.with_order_by(ColRef::new(perm[o.column.node], o.column.col));
        }
        if let Some(g) = q.group_by {
            permuted = permuted.with_group_by(ColRef::new(perm[g.column.node], g.column.col));
        }
        assert_eq!(base, fingerprint_query(&catalog, &permuted));
    }

    #[test]
    fn fingerprint_sees_orders_and_stats() {
        let catalog = Catalog::paper();
        let gen = QueryGenerator::new(&catalog, Topology::Star(7), 5);
        let unordered = gen.instance(0);
        let ordered = gen.ordered_instance(0);
        let grouped = gen.grouped_instance(0);
        assert_ne!(
            fingerprint_query(&catalog, &unordered),
            fingerprint_query(&catalog, &ordered),
            "order marker must be part of the key"
        );
        // GROUP BY shares the optimizer's order target with ORDER BY
        // on the same column, but the requests are not interchangeable
        // — the markers sit at distinct label positions.
        assert_ne!(
            fingerprint_query(&catalog, &unordered),
            fingerprint_query(&catalog, &grouped),
            "group marker must be part of the key"
        );
        assert_ne!(
            fingerprint_query(&catalog, &ordered),
            fingerprint_query(&catalog, &grouped),
            "ordered and grouped requests must not collide"
        );

        // Doubling one relation's tuple count changes the key.
        let mut restated = catalog.clone();
        let mut analyzed: Vec<_> = restated
            .relations()
            .iter()
            .map(sdp_catalog::AnalyzedRelation::analyze)
            .collect();
        let rel = unordered.graph.relation(0);
        analyzed[rel.0 as usize].relation.tuples *= 2.0;
        restated.replace_stats(analyzed);
        assert_ne!(
            fingerprint_query(&catalog, &unordered),
            fingerprint_query(&restated, &unordered),
            "tuple counts must be part of the key"
        );
    }

    #[test]
    fn display_is_fixed_width_hex() {
        assert_eq!(Fingerprint(0).to_string().len(), 32);
        assert_eq!(Fingerprint(0xff).to_string(), format!("{:032x}", 0xffu32));
    }
}
