//! Single-flight deduplication of concurrent identical requests.
//!
//! When several threads ask for the same (fingerprint, strategy) key
//! at once, exactly one — the **leader** — runs the enumeration; the
//! rest — **waiters** — block on the leader's flight and receive a
//! clone of its result. The protocol:
//!
//! 1. [`SingleFlight::join`] locks the in-flight map. No entry → the
//!    caller becomes leader and holds a [`LeaderToken`].
//! 2. An existing entry → the caller clones the flight's `Arc` slot,
//!    releases the map lock, and parks on the slot's condvar.
//! 3. The leader publishes `Some(value)` via
//!    [`LeaderToken::publish`], which wakes all waiters and retires
//!    the key from the map.
//! 4. If the leader's enumeration fails — or the leader panics — the
//!    token's `Drop` publishes `None` instead. Waiters receiving
//!    `None` know the flight was **abandoned** and retry from the top
//!    (typically becoming the next leader and surfacing the error
//!    themselves), so no thread ever hangs on a dead flight.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug)]
enum SlotState<V> {
    Pending,
    Done(Option<V>),
}

#[derive(Debug)]
struct Slot<V> {
    state: Mutex<SlotState<V>>,
    cv: Condvar,
}

/// Coalesces concurrent calls with equal keys onto one execution.
#[derive(Debug)]
pub struct SingleFlight<K, V> {
    inflight: Mutex<HashMap<K, Arc<Slot<V>>>>,
}

/// The caller's role for one [`SingleFlight::join`].
#[derive(Debug)]
pub enum Flight<'f, K: Eq + Hash + Clone, V> {
    /// This caller runs the work and must publish (or drop) the
    /// token.
    Leader(LeaderToken<'f, K, V>),
    /// Another caller ran the work; `Some` carries its result, `None`
    /// means the flight was abandoned and the caller should retry.
    Coalesced(Option<V>),
}

/// Proof of leadership for one key; publishing (or dropping) it
/// completes the flight.
#[derive(Debug)]
pub struct LeaderToken<'f, K: Eq + Hash + Clone, V> {
    owner: &'f SingleFlight<K, V>,
    key: K,
    slot: Arc<Slot<V>>,
    published: bool,
}

impl<K: Eq + Hash + Clone, V: Clone> Default for SingleFlight<K, V> {
    fn default() -> Self {
        SingleFlight {
            inflight: Mutex::new(HashMap::new()),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SingleFlight<K, V> {
    /// Fresh coalescer with no flights.
    pub fn new() -> Self {
        SingleFlight::default()
    }

    /// Join the flight for `key`: become its leader or wait for the
    /// current leader's result.
    pub fn join(&self, key: K) -> Flight<'_, K, V> {
        let slot = {
            let mut inflight = self.inflight.lock().expect("in-flight map poisoned");
            match inflight.get(&key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(SlotState::Pending),
                        cv: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&slot));
                    return Flight::Leader(LeaderToken {
                        owner: self,
                        key,
                        slot,
                        published: false,
                    });
                }
            }
        };
        let mut state = slot.state.lock().expect("flight slot poisoned");
        while matches!(*state, SlotState::Pending) {
            state = slot.cv.wait(state).expect("flight slot poisoned");
        }
        match &*state {
            SlotState::Done(result) => Flight::Coalesced(result.clone()),
            SlotState::Pending => unreachable!("waited out of Pending"),
        }
    }

    /// Number of keys currently in flight (diagnostics/tests).
    pub fn inflight_len(&self) -> usize {
        self.inflight.lock().expect("in-flight map poisoned").len()
    }

    fn complete(&self, key: &K, slot: &Slot<V>, result: Option<V>) {
        // Retire the key first so late joiners start a fresh flight
        // instead of reading this (possibly abandoned) one.
        self.inflight
            .lock()
            .expect("in-flight map poisoned")
            .remove(key);
        let mut state = slot.state.lock().expect("flight slot poisoned");
        *state = SlotState::Done(result);
        slot.cv.notify_all();
    }
}

impl<K: Eq + Hash + Clone, V: Clone> LeaderToken<'_, K, V> {
    /// Hand the leader's result to every waiter and retire the
    /// flight.
    pub fn publish(mut self, value: V) {
        self.published = true;
        self.owner.complete(&self.key, &self.slot, Some(value));
    }
}

impl<K: Eq + Hash + Clone, V> Drop for LeaderToken<'_, K, V> {
    fn drop(&mut self) {
        if !self.published {
            // Leader failed or panicked before publishing: abandon the
            // flight so waiters retry instead of hanging.
            let mut inflight = self.owner.inflight.lock().expect("in-flight map poisoned");
            inflight.remove(&self.key);
            drop(inflight);
            let mut state = self.slot.state.lock().expect("flight slot poisoned");
            *state = SlotState::Done(None);
            self.slot.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Barrier;

    #[test]
    fn sole_caller_leads_and_publishes() {
        let sf: SingleFlight<u64, String> = SingleFlight::new();
        match sf.join(1) {
            Flight::Leader(token) => token.publish("done".into()),
            Flight::Coalesced(_) => panic!("first caller must lead"),
        }
        assert_eq!(sf.inflight_len(), 0);
        // The key is retired, so the next caller leads a new flight.
        assert!(matches!(sf.join(1), Flight::Leader(_)));
    }

    #[test]
    fn concurrent_joins_elect_one_leader() {
        let sf: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let executions = Arc::new(AtomicU64::new(0));
        let barrier = Arc::new(Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let (sf, executions, barrier) = (sf.clone(), executions.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    loop {
                        match sf.join(42) {
                            Flight::Leader(token) => {
                                executions.fetch_add(1, Ordering::SeqCst);
                                // Give waiters time to pile onto this
                                // flight.
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                token.publish(99);
                                return 99;
                            }
                            Flight::Coalesced(Some(v)) => return v,
                            Flight::Coalesced(None) => continue,
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one leader");
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn dropped_token_abandons_the_flight() {
        let sf: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let token = match sf.join(7) {
            Flight::Leader(t) => t,
            Flight::Coalesced(_) => unreachable!(),
        };
        let waiter = {
            let sf = sf.clone();
            std::thread::spawn(move || match sf.join(7) {
                Flight::Coalesced(result) => result,
                Flight::Leader(_) => panic!("leader already elected"),
            })
        };
        // Let the waiter park, then abandon.
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(token);
        assert_eq!(waiter.join().unwrap(), None, "abandonment wakes waiters");
        assert_eq!(sf.inflight_len(), 0);
    }

    #[test]
    fn panicking_leader_does_not_strand_waiters() {
        let sf: Arc<SingleFlight<u64, u64>> = Arc::new(SingleFlight::new());
        let leader = {
            let sf = sf.clone();
            std::thread::spawn(move || {
                let _token = match sf.join(3) {
                    Flight::Leader(t) => t,
                    Flight::Coalesced(_) => unreachable!(),
                };
                std::thread::sleep(std::time::Duration::from_millis(20));
                panic!("leader dies mid-flight");
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        let result = match sf.join(3) {
            Flight::Coalesced(r) => r,
            Flight::Leader(_) => panic!("flight should exist"),
        };
        assert_eq!(result, None);
        assert!(leader.join().is_err(), "leader panicked as arranged");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf: SingleFlight<u64, u64> = SingleFlight::new();
        let t1 = match sf.join(1) {
            Flight::Leader(t) => t,
            Flight::Coalesced(_) => unreachable!(),
        };
        let t2 = match sf.join(2) {
            Flight::Leader(t) => t,
            Flight::Coalesced(_) => unreachable!(),
        };
        assert_eq!(sf.inflight_len(), 2);
        t1.publish(10);
        t2.publish(20);
        assert_eq!(sf.inflight_len(), 0);
    }
}
