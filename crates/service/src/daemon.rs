//! The multi-threaded daemon front: a worker pool draining a request
//! queue into the shared [`OptimizerService`].
//!
//! Clients [`submit`](Daemon::submit) requests and hold a [`Ticket`]
//! — a one-shot receiver for the response — or call
//! [`execute`](Daemon::execute) to block inline. Workers are plain
//! `std::thread`s sharing one `mpsc` receiver behind a mutex: the
//! queue is the only coordination point, and the expensive part
//! (enumeration) is already deduplicated downstream by the service's
//! single-flight layer, so a fancier queue would buy nothing.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::service::{OptimizerService, ServiceError, ServiceRequest, ServiceResponse};

type Reply = Result<ServiceResponse, ServiceError>;
struct Job {
    request: ServiceRequest,
    reply: Sender<Reply>,
    /// When the request entered the queue; queue-wait is charged
    /// against the request's deadline before the worker optimizes.
    submitted: Instant,
}

/// A running optimizer daemon: worker threads over a shared service.
pub struct Daemon {
    service: Arc<OptimizerService>,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

/// Claim on a submitted request's eventual response.
#[derive(Debug)]
pub struct Ticket(Receiver<Reply>);

impl Ticket {
    /// Block until the daemon answers. [`ServiceError::Shutdown`] if
    /// the daemon stopped before serving the request.
    pub fn wait(self) -> Reply {
        self.0.recv().unwrap_or(Err(ServiceError::Shutdown))
    }
}

impl Daemon {
    /// Start `workers` threads (floored at 1) over the shared
    /// service.
    pub fn spawn(service: Arc<OptimizerService>, workers: usize) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                std::thread::Builder::new()
                    .name(format!("sdp-service-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = rx.lock().expect("daemon queue poisoned");
                            rx.recv()
                        };
                        let Ok(mut job) = job else {
                            return; // queue closed: daemon shut down
                        };
                        // The deadline is end-to-end: time spent
                        // queued is time the optimizer doesn't get.
                        let waited = job.submitted.elapsed();
                        job.request.shrink_deadline(waited);
                        service.tracer().emit_with(|| {
                            sdp_trace::Event::new("queue_wait")
                                .with("wait_micros", waited.as_micros() as u64)
                        });
                        // A client that dropped its ticket just
                        // doesn't hear the answer.
                        let _ = job.reply.send(service.get_plan(&job.request));
                    })
                    .expect("spawning daemon worker")
            })
            .collect();
        Daemon {
            service,
            queue: Some(tx),
            workers,
        }
    }

    /// The shared service (for counters, statistics updates, …).
    pub fn service(&self) -> &Arc<OptimizerService> {
        &self.service
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a request; the returned [`Ticket`] resolves to its
    /// response.
    pub fn submit(&self, request: ServiceRequest) -> Ticket {
        let (reply, rx) = channel();
        let job = Job {
            request,
            reply,
            submitted: Instant::now(),
        };
        self.queue
            .as_ref()
            .expect("daemon already shut down")
            .send(job)
            .expect("daemon workers all exited");
        Ticket(rx)
    }

    /// Submit and block for the response.
    pub fn execute(&self, request: ServiceRequest) -> Reply {
        self.submit(request).wait()
    }

    /// Drain the queue, join every worker, and flush the durable
    /// store (if one is attached) so every served plan has reached the
    /// segment log before the process exits.
    pub fn shutdown(mut self) {
        self.queue = None; // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.service.flush_store();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.queue = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.service.flush_store();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::PlanSource;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn daemon_serves_submissions_across_workers() {
        let catalog = Catalog::paper();
        let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
        let daemon = Daemon::spawn(service, 3);
        assert_eq!(daemon.workers(), 3);

        let gen = QueryGenerator::new(&catalog, Topology::Chain(4), 5);
        let tickets: Vec<Ticket> = (0..6)
            .map(|k| daemon.submit(ServiceRequest::query(gen.instance(k % 2))))
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(responses.len(), 6);

        // Two distinct queries → exactly two enumerations, however
        // the six requests were interleaved.
        let snap = daemon.service().counters_snapshot();
        assert_eq!(snap.enumerations, 2);
        assert_eq!(snap.requests(), 6);
        daemon.shutdown();
    }

    #[test]
    fn execute_blocks_inline_and_errors_propagate() {
        let service = Arc::new(OptimizerService::with_defaults(Catalog::paper()));
        let daemon = Daemon::spawn(service, 1);
        let ok = daemon
            .execute(ServiceRequest::sql(
                "select * from R1 a, R2 b where a.c0 = b.c1",
            ))
            .unwrap();
        assert_eq!(ok.source, PlanSource::Fresh);
        let err = daemon
            .execute(ServiceRequest::sql("select * from"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Sql(_)), "{err}");
    }

    #[test]
    fn shutdown_joins_workers() {
        let service = Arc::new(OptimizerService::with_defaults(Catalog::paper()));
        let daemon = Daemon::spawn(service, 2);
        daemon.shutdown(); // must not hang
    }
}
