//! The multi-threaded daemon front: a worker pool draining a request
//! queue into the shared [`OptimizerService`], with overload control.
//!
//! Clients [`submit`](Daemon::submit) requests and hold a [`Ticket`]
//! — a one-shot receiver for the response — or call
//! [`execute`](Daemon::execute) to block inline. Workers are plain
//! `std::thread`s sharing one `mpsc` receiver behind a mutex: the
//! queue is the only coordination point, and the expensive part
//! (enumeration) is already deduplicated downstream by the service's
//! single-flight layer, so a fancier queue would buy nothing.
//!
//! # Overload control
//!
//! [`DaemonConfig`] bounds the daemon against bursts:
//!
//! * **Bounded admission** — with a queue capacity set, a submission
//!   that finds the queue full is answered immediately: from the
//!   stale shelf when a previous-epoch plan exists for the query
//!   ([`PlanSource::Stale`](crate::PlanSource::Stale)), else shed
//!   with [`ServiceError::Shed`]`(QueueFull)`. Nothing blocks.
//! * **Deadline-aware shedding** — queue-wait is charged against the
//!   request's deadline when a worker picks it up; if what remains is
//!   at or below the cheapest rung's floor
//!   ([`sdp_core::CHEAPEST_RUNG_FLOOR`]), the run could only time
//!   out, so the worker sheds it (stale-serve first, same as above)
//!   instead of burning the optimizer on a lost cause.
//!
//! Admission decisions are deterministic in *submission order*: the
//! queue-depth gauge is incremented at submit and released only after
//! a dequeued job passes the [`pause`](Daemon::pause) gate, so a
//! paused daemon's admit/shed sequence for a burst depends only on
//! the order of `submit` calls — not on worker count or scheduling.
//! The differential batteries lean on this to compare decision
//! sequences across `SDP_THREADS` settings bit-for-bit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sdp_core::CHEAPEST_RUNG_FLOOR;

use crate::service::{OptimizerService, ServiceError, ServiceRequest, ServiceResponse, ShedReason};

type Reply = Result<ServiceResponse, ServiceError>;
struct Job {
    request: ServiceRequest,
    reply: Sender<Reply>,
    /// When the request entered the queue; queue-wait is charged
    /// against the request's deadline before the worker optimizes.
    submitted: Instant,
    /// Arrival sequence number (counts every submission, shed or
    /// admitted) — the logical clock chaos schedules key on.
    seq: u64,
}

/// Tuning for one [`Daemon`]: worker count plus overload-control
/// policy. [`Daemon::spawn`] uses [`DaemonConfig::new`] defaults —
/// an unbounded queue, deadline shedding at the cheapest rung's
/// floor, and stale-serve enabled.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    workers: usize,
    queue_capacity: Option<usize>,
    shed_floor: Option<Duration>,
    stale_serve: bool,
    #[cfg(feature = "testkit")]
    chaos: Option<sdp_testkit::ChaosSchedule>,
}

impl DaemonConfig {
    /// Config for `workers` threads (floored at 1) with default
    /// overload policy: no queue bound, deadline shedding at
    /// [`CHEAPEST_RUNG_FLOOR`], stale-serve on.
    pub fn new(workers: usize) -> Self {
        DaemonConfig {
            workers: workers.max(1),
            queue_capacity: None,
            shed_floor: Some(CHEAPEST_RUNG_FLOOR),
            stale_serve: true,
            #[cfg(feature = "testkit")]
            chaos: None,
        }
    }

    /// Bound the admission queue at `capacity` jobs (floored at 1);
    /// submissions beyond it are answered immediately (stale-serve or
    /// shed) instead of queueing.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = Some(capacity.max(1));
        self
    }

    /// Shed dequeued jobs whose remaining deadline (after charged
    /// queue-wait) is at or below `floor` instead of running them.
    pub fn with_shed_floor(mut self, floor: Duration) -> Self {
        self.shed_floor = Some(floor);
        self
    }

    /// Never shed on deadline: dequeued jobs always run, however
    /// little deadline remains (the governor still times them out).
    pub fn without_deadline_shedding(mut self) -> Self {
        self.shed_floor = None;
        self
    }

    /// Shed outright under pressure instead of consulting the stale
    /// shelf first.
    pub fn without_stale_serve(mut self) -> Self {
        self.stale_serve = false;
        self
    }

    /// Install a deterministic chaos schedule: virtual queue-wait
    /// overrides and scripted worker kills, keyed by arrival sequence
    /// number. Test builds only.
    #[cfg(feature = "testkit")]
    pub fn with_chaos(mut self, chaos: sdp_testkit::ChaosSchedule) -> Self {
        self.chaos = Some(chaos);
        self
    }
}

/// Pause gate + shutdown mode shared by every worker.
#[derive(Debug, Default)]
struct Gate {
    state: Mutex<GateState>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct GateState {
    paused: bool,
    draining: bool,
}

impl Gate {
    /// Block while paused. Returns whether the daemon is draining
    /// (shutdown_now): the caller then refuses its job instead of
    /// running it.
    fn wait_until_open(&self) -> bool {
        let mut state = self.state.lock().expect("daemon gate poisoned");
        while state.paused && !state.draining {
            state = self.cond.wait(state).expect("daemon gate poisoned");
        }
        state.draining
    }

    fn pause(&self) {
        self.state.lock().expect("daemon gate poisoned").paused = true;
    }

    fn resume(&self) {
        self.state.lock().expect("daemon gate poisoned").paused = false;
        self.cond.notify_all();
    }

    fn drain(&self) {
        self.state.lock().expect("daemon gate poisoned").draining = true;
        self.cond.notify_all();
    }
}

/// Guarantees every dequeued job gets an answer: if the worker dies
/// (panics) between dequeue and reply, the drop handler sends
/// [`ServiceError::WorkerDied`] — an internal error, deliberately
/// distinct from a clean [`ServiceError::Shutdown`] — and releases
/// the in-flight gauge.
struct ReplyGuard<'a> {
    reply: Option<Sender<Reply>>,
    overload: &'a sdp_metrics::OverloadCounters,
}

impl ReplyGuard<'_> {
    fn complete(mut self, result: Reply) {
        if let Some(reply) = self.reply.take() {
            // A client that dropped its ticket just doesn't hear the
            // answer.
            let _ = reply.send(result);
        }
    }
}

impl Drop for ReplyGuard<'_> {
    fn drop(&mut self) {
        if let Some(reply) = self.reply.take() {
            let _ = reply.send(Err(ServiceError::WorkerDied));
        }
        self.overload.job_finished();
    }
}

/// A running optimizer daemon: worker threads over a shared service.
pub struct Daemon {
    service: Arc<OptimizerService>,
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    gate: Arc<Gate>,
    /// Arrival counter: every submission gets a sequence number,
    /// admitted or not.
    seq: AtomicU64,
    queue_capacity: Option<usize>,
    stale_serve: bool,
}

/// Claim on a submitted request's eventual response.
#[derive(Debug)]
pub struct Ticket(Receiver<Reply>);

impl Ticket {
    /// Block until the daemon answers. Requests a clean shutdown
    /// declined are answered [`ServiceError::Shutdown`] by the daemon
    /// itself; a closed channel *without* an answer means the serving
    /// worker died mid-request and surfaces as
    /// [`ServiceError::WorkerDied`].
    pub fn wait(self) -> Reply {
        self.0.recv().unwrap_or(Err(ServiceError::WorkerDied))
    }
}

impl Daemon {
    /// Start `workers` threads (floored at 1) over the shared service
    /// with default overload policy (see [`DaemonConfig::new`]).
    pub fn spawn(service: Arc<OptimizerService>, workers: usize) -> Self {
        Daemon::with_config(service, DaemonConfig::new(workers))
    }

    /// Start a daemon with explicit overload-control tuning.
    pub fn with_config(service: Arc<OptimizerService>, config: DaemonConfig) -> Self {
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let gate = Arc::new(Gate::default());
        let shed_floor = config.shed_floor;
        let stale_serve = config.stale_serve;
        #[cfg(feature = "testkit")]
        let chaos = config.chaos.clone();
        let workers = (0..config.workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                let gate = Arc::clone(&gate);
                #[cfg(feature = "testkit")]
                let chaos = chaos.clone();
                std::thread::Builder::new()
                    .name(format!("sdp-service-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let rx = rx.lock().expect("daemon queue poisoned");
                            rx.recv()
                        };
                        let Ok(mut job) = job else {
                            return; // queue closed: daemon shut down
                        };
                        // Hold dequeued work at the pause gate *before*
                        // releasing its queue slot, so a paused
                        // daemon's admission decisions depend only on
                        // submission order (see module docs).
                        let draining = gate.wait_until_open();
                        let overload = service.overload_counters();
                        overload.queue_left();
                        if draining {
                            let _ = job.reply.send(Err(ServiceError::Shutdown));
                            continue;
                        }
                        // The deadline is end-to-end: time spent
                        // queued is time the optimizer doesn't get. A
                        // chaos schedule substitutes a virtual wait so
                        // shed decisions replay deterministically.
                        #[allow(unused_mut)]
                        let mut waited = job.submitted.elapsed();
                        #[cfg(feature = "testkit")]
                        if let Some(w) = chaos.as_ref().and_then(|c| c.queue_wait(job.seq)) {
                            waited = w;
                        }
                        job.request.shrink_deadline(waited);
                        service.tracer().emit_with(|| {
                            sdp_trace::Event::new("queue_wait")
                                .with("seq", job.seq)
                                .with("wait_micros", waited.as_micros() as u64)
                        });
                        // Deadline-aware shedding: at or below the
                        // cheapest rung's floor, even GOO can't finish
                        // — answer now instead of timing out later.
                        let expired = match (shed_floor, job.request.deadline()) {
                            (Some(floor), Some(remaining)) => remaining <= floor,
                            _ => false,
                        };
                        if expired {
                            if stale_serve {
                                if let Some(resp) = service.serve_stale(&job.request) {
                                    let _ = job.reply.send(Ok(resp));
                                    continue;
                                }
                            }
                            overload.record_shed_deadline();
                            service.tracer().emit_with(|| {
                                sdp_trace::Event::new("shed")
                                    .with("seq", job.seq)
                                    .with("reason", ShedReason::DeadlineExpired.label())
                            });
                            let _ = job
                                .reply
                                .send(Err(ServiceError::Shed(ShedReason::DeadlineExpired)));
                            continue;
                        }
                        overload.job_started();
                        let guard = ReplyGuard {
                            reply: Some(job.reply),
                            overload,
                        };
                        #[cfg(feature = "testkit")]
                        if let Some(c) = &chaos {
                            if c.take_worker_kill(job.seq) {
                                panic!("injected worker kill (seq {})", job.seq);
                            }
                        }
                        guard.complete(service.get_plan(&job.request));
                    })
                    .expect("spawning daemon worker")
            })
            .collect();
        Daemon {
            service,
            queue: Some(tx),
            workers,
            gate,
            seq: AtomicU64::new(0),
            queue_capacity: config.queue_capacity,
            stale_serve: config.stale_serve,
        }
    }

    /// The shared service (for counters, statistics updates, …).
    pub fn service(&self) -> &Arc<OptimizerService> {
        &self.service
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Hold workers at the gate: dequeued jobs neither run nor
    /// release their queue slot until [`resume`](Daemon::resume).
    /// Lets tests and burst generators build a queue of known depth
    /// so admission decisions are a pure function of submission
    /// order.
    pub fn pause(&self) {
        self.gate.pause();
    }

    /// Reopen the gate; paused workers proceed.
    pub fn resume(&self) {
        self.gate.resume();
    }

    /// Enqueue a request; the returned [`Ticket`] resolves to its
    /// response. With a bounded queue, a submission that finds it
    /// full is answered immediately — from the stale shelf when
    /// possible, else [`ServiceError::Shed`]`(QueueFull)` — and the
    /// ticket resolves without ever queueing.
    pub fn submit(&self, request: ServiceRequest) -> Ticket {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let overload = self.service.overload_counters();
        let (reply, rx) = channel();
        if let Some(cap) = self.queue_capacity {
            if overload.queue_depth() >= cap as u64 {
                if self.stale_serve {
                    if let Some(resp) = self.service.serve_stale(&request) {
                        let _ = reply.send(Ok(resp));
                        return Ticket(rx);
                    }
                }
                overload.record_shed_queue_full();
                self.service.tracer().emit_with(|| {
                    sdp_trace::Event::new("shed")
                        .with("seq", seq)
                        .with("reason", ShedReason::QueueFull.label())
                });
                let _ = reply.send(Err(ServiceError::Shed(ShedReason::QueueFull)));
                return Ticket(rx);
            }
        }
        overload.queue_entered();
        let job = Job {
            request,
            reply,
            submitted: Instant::now(),
            seq,
        };
        self.queue
            .as_ref()
            .expect("daemon already shut down")
            .send(job)
            .expect("daemon workers all exited");
        Ticket(rx)
    }

    /// Submit and block for the response.
    pub fn execute(&self, request: ServiceRequest) -> Reply {
        self.submit(request).wait()
    }

    /// Drain the queue, join every worker, and flush the durable
    /// store (if one is attached) so every served plan has reached the
    /// segment log before the process exits. Queued jobs are *served*:
    /// every outstanding [`Ticket`] resolves to a real answer. A
    /// paused daemon is resumed first.
    pub fn shutdown(mut self) {
        self.gate.resume();
        self.queue = None; // close the channel; workers drain and exit
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.service.flush_store();
    }

    /// Immediate shutdown: jobs already being optimized finish, but
    /// queued-but-unserved jobs are answered
    /// [`ServiceError::Shutdown`] without running. Every outstanding
    /// [`Ticket`] still resolves.
    pub fn shutdown_now(mut self) {
        self.gate.drain();
        self.queue = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.service.flush_store();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.gate.resume();
        self.queue = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.service.flush_store();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::PlanSource;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn daemon_serves_submissions_across_workers() {
        let catalog = Catalog::paper();
        let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
        let daemon = Daemon::spawn(service, 3);
        assert_eq!(daemon.workers(), 3);

        let gen = QueryGenerator::new(&catalog, Topology::Chain(4), 5);
        let tickets: Vec<Ticket> = (0..6)
            .map(|k| daemon.submit(ServiceRequest::query(gen.instance(k % 2))))
            .collect();
        let responses: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert_eq!(responses.len(), 6);

        // Two distinct queries → exactly two enumerations, however
        // the six requests were interleaved.
        let snap = daemon.service().counters_snapshot();
        assert_eq!(snap.enumerations, 2);
        assert_eq!(snap.requests(), 6);
        daemon.shutdown();
    }

    #[test]
    fn execute_blocks_inline_and_errors_propagate() {
        let service = Arc::new(OptimizerService::with_defaults(Catalog::paper()));
        let daemon = Daemon::spawn(service, 1);
        let ok = daemon
            .execute(ServiceRequest::sql(
                "select * from R1 a, R2 b where a.c0 = b.c1",
            ))
            .unwrap();
        assert_eq!(ok.source, PlanSource::Fresh);
        let err = daemon
            .execute(ServiceRequest::sql("select * from"))
            .unwrap_err();
        assert!(matches!(err, ServiceError::Sql(_)), "{err}");
    }

    #[test]
    fn shutdown_joins_workers() {
        let service = Arc::new(OptimizerService::with_defaults(Catalog::paper()));
        let daemon = Daemon::spawn(service, 2);
        daemon.shutdown(); // must not hang
    }

    #[test]
    fn bounded_queue_sheds_deterministically_when_paused() {
        let catalog = Catalog::paper();
        let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
        let daemon = Daemon::with_config(
            Arc::clone(&service),
            DaemonConfig::new(1)
                .with_queue_capacity(2)
                .without_stale_serve(),
        );
        daemon.pause();
        let gen = QueryGenerator::new(&catalog, Topology::Chain(4), 5);
        let tickets: Vec<Ticket> = (0..8)
            .map(|k| daemon.submit(ServiceRequest::query(gen.instance(k))))
            .collect();
        daemon.resume();
        let replies: Vec<Reply> = tickets.into_iter().map(Ticket::wait).collect();
        // Exactly the first `capacity` submissions were admitted; the
        // rest shed at submit, whatever the worker was doing.
        for reply in &replies[..2] {
            assert!(reply.is_ok(), "{reply:?}");
        }
        for reply in &replies[2..] {
            assert_eq!(
                reply.as_ref().unwrap_err(),
                &ServiceError::Shed(ShedReason::QueueFull)
            );
        }
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.shed_queue_full, 6);
        assert_eq!(snap.queue_depth_hwm, 2);
        assert_eq!(snap.queue_depth, 0, "drained");
        daemon.shutdown();
    }

    #[test]
    fn expired_deadlines_are_shed_not_optimized() {
        let catalog = Catalog::paper();
        let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
        let daemon = Daemon::spawn(Arc::clone(&service), 1);
        let q = QueryGenerator::new(&catalog, Topology::Chain(4), 5).instance(0);
        // A zero deadline is below the cheapest rung's floor by the
        // time any worker sees it: deterministic shed.
        let err = daemon
            .execute(ServiceRequest::query(q).with_deadline(Duration::ZERO))
            .unwrap_err();
        assert_eq!(err, ServiceError::Shed(ShedReason::DeadlineExpired));
        let snap = service.overload_counters().snapshot();
        assert_eq!(snap.shed_deadline, 1);
        assert_eq!(
            service.governor_snapshot().timeouts,
            0,
            "the optimizer never ran"
        );
        daemon.shutdown();
    }

    #[test]
    fn graceful_shutdown_serves_queued_work() {
        let catalog = Catalog::paper();
        let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
        let daemon = Daemon::spawn(service, 1);
        daemon.pause();
        let gen = QueryGenerator::new(&catalog, Topology::Chain(4), 5);
        let tickets: Vec<Ticket> = (0..4)
            .map(|k| daemon.submit(ServiceRequest::query(gen.instance(k % 2))))
            .collect();
        daemon.shutdown(); // resumes, drains, joins
        for t in tickets {
            let reply = t.wait();
            assert!(reply.is_ok(), "{reply:?}");
        }
    }

    #[test]
    fn shutdown_now_answers_queued_work_with_shutdown() {
        let catalog = Catalog::paper();
        let service = Arc::new(OptimizerService::with_defaults(catalog.clone()));
        let daemon = Daemon::spawn(Arc::clone(&service), 2);
        daemon.pause();
        let gen = QueryGenerator::new(&catalog, Topology::Chain(4), 5);
        let tickets: Vec<Ticket> = (0..4)
            .map(|k| daemon.submit(ServiceRequest::query(gen.instance(k))))
            .collect();
        daemon.shutdown_now();
        for t in tickets {
            assert_eq!(t.wait().unwrap_err(), ServiceError::Shutdown);
        }
        // The queue gauge is released even for refused jobs.
        assert_eq!(service.overload_counters().snapshot().queue_depth, 0);
    }
}
