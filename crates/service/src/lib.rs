//! # sdp-service — the resident optimizer daemon
//!
//! The paper's heuristics exist because real optimizers run inside
//! long-lived server processes where optimization time is a tax on
//! every query. This crate packages the `sdp-core` enumerators as such
//! a process component:
//!
//! * [`fingerprint`] — canonicalizes each request into an
//!   order-independent structural hash of its join graph, predicates,
//!   statistics and interesting orders, so isomorphic queries collide
//!   (a Weisfeiler–Leman hash over [`sdp_query::canon`]);
//! * [`cache`] — a sharded LRU plan cache whose entries carry the
//!   statistics epoch they were optimized under; bumping the catalog
//!   epoch atomically invalidates stale plans;
//! * [`singleflight`] — concurrent identical requests coalesce onto
//!   one enumeration: a leader optimizes, waiters share its plan;
//! * [`select`] — a topology-aware strategy selector (DP for small
//!   queries, SDP for hub-bearing graphs, IDP for large hub-free
//!   ones, GOO beyond that) driven by `sdp-query` hub detection;
//! * [`service`] — [`OptimizerService`], the `Send + Sync` request
//!   path tying the above together over a swappable catalog snapshot,
//!   with counters and per-strategy latencies in `sdp-metrics`.
//!   Requests may carry a deadline and memory budget; the leader runs
//!   under `sdp-core`'s resource governor, degrading down the
//!   DP → SDP → IDP(4) → GOO ladder instead of failing, and a leader
//!   that *panics* is retried exactly once, one rung cheaper;
//! * [`daemon`] — a worker-pool front ([`Daemon`]) that serves
//!   requests from plain threads, charging queue-wait time against
//!   each request's deadline. Shutdown flushes the durable store;
//! * **overload control** — [`DaemonConfig`] bounds the admission
//!   queue (full queue → immediate [`ServiceError::Shed`]) and sheds
//!   dequeued jobs whose remaining deadline can't cover even the
//!   cheapest rung; under pressure, fingerprints with an
//!   epoch-evicted plan on the *stale shelf* are served that plan
//!   (tagged [`PlanSource::Stale`]) instead of being shed. A
//!   per-fingerprint circuit breaker opens after
//!   `breaker_threshold` consecutive ladder exhaustions: arrivals
//!   fail fast into the DLQ ([`ServiceError::BreakerOpen`]) and
//!   every `breaker_probe_every`-th arrival probes for recovery —
//!   all decisions are counted, never wall-clock, so they replay
//!   bit-identically across thread counts;
//! * **durability** — attach an `sdp-store` plan store with
//!   [`OptimizerService::with_store`]: fresh plans are persisted from
//!   a write-behind thread, and on the next startup the segment log is
//!   replayed (stale-epoch records dropped) to pre-populate the cache
//!   with *warm* entries. [`OptimizerService::with_dlq`] adds a
//!   dead-letter queue: requests that exhaust the degradation ladder
//!   or the leader-panic retry are serialized (query canon, fault
//!   context, degradation history) for offline `replay --dlq`.
//!
//! Attach an `sdp_trace::Tracer` with
//! [`OptimizerService::with_tracer`] and the whole request lifecycle
//! becomes observable: cache outcome per fingerprint, queue waits,
//! governor degradations, leader retries and per-request errors, plus
//! (with the default `trace` feature) the optimizer's own enumeration
//! spans. [`OptimizerService::metrics_report`] snapshots every counter
//! family into an `sdp_metrics::MetricsReport` for Prometheus-text or
//! JSON exposition.
//!
//! The `sdp-service` binary's `replay` subcommand generates a
//! workload, replays it through a daemon, and reports throughput plus
//! cache behaviour; `--trace` dumps a chrome://tracing-compatible
//! event file and `--metrics-json` the full metrics report.
//!
//! ```
//! use sdp_catalog::Catalog;
//! use sdp_service::{OptimizerService, PlanSource, ServiceRequest};
//!
//! let service = OptimizerService::with_defaults(Catalog::paper());
//! let req = ServiceRequest::sql("SELECT * FROM R1 a, R2 b WHERE a.c0 = b.c1");
//! let first = service.get_plan(&req).unwrap();
//! assert_eq!(first.source, PlanSource::Fresh);
//! let second = service.get_plan(&req).unwrap();
//! assert_eq!(second.source, PlanSource::Cache);
//! assert_eq!(second.plans_costed, 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod daemon;
mod durable;
pub mod fingerprint;
pub mod select;
pub mod service;
pub mod singleflight;

pub use cache::{Lookup, ShardedLru};
pub use daemon::{Daemon, DaemonConfig, Ticket};
pub use fingerprint::{fingerprint_query, Fingerprint};
pub use service::{
    CachedPlan, OptimizerService, PlanSource, ServiceConfig, ServiceError, ServiceRequest,
    ServiceResponse, ShedReason,
};
pub use singleflight::{Flight, LeaderToken, SingleFlight};
