//! `sdp-service` — the optimizer daemon's command-line front.
//!
//! ```text
//! sdp-service replay [--shape star|chain|cycle|star-chain]
//!                    [--relations N] [--distinct N] [--requests N]
//!                    [--clients N] [--workers N] [--capacity N]
//!                    [--shards N] [--threads N] [--seed N]
//!                    [--deadline-ms N] [--memory-mb N]
//!                    [--trace PATH] [--metrics-json PATH]
//! ```
//!
//! `replay` generates a seeded workload of `--distinct` structurally
//! different queries on the chosen topology, replays `--requests`
//! requests drawn from it (alternating SQL-text and programmatic
//! submissions) from `--clients` client threads through a
//! `--workers`-thread daemon, and reports throughput, cache counters
//! and per-strategy enumeration latencies.
//!
//! `--deadline-ms` and `--memory-mb` attach a per-request deadline and
//! memory budget: requests that exhaust a strategy's slice degrade
//! down the ladder (DP → SDP → IDP(4) → GOO) instead of failing, and
//! the report gains governor counters (degradations by reason,
//! timeouts, leader retries) plus per-rung latency histograms.
//!
//! `--trace PATH` collects the full structured event stream (request
//! lifecycle, governor transitions, enumeration spans) and writes it
//! as a chrome://tracing-compatible JSON array. `--metrics-json PATH`
//! writes the complete metrics report (counters, governor, latency
//! tables, allocator watermarks, store counters) as one JSON document;
//! the human-readable report stays on stdout either way. Failed
//! requests are reported through the same trace stream, so each error
//! line carries the query fingerprint and the rung it failed on — and
//! any such error makes the run exit non-zero, even when the client
//! thread itself saw a response.
//!
//! `--store-dir DIR` attaches the durable plan store: fresh plans are
//! persisted (write-behind) into DIR's segment log, a dead-letter
//! queue for ladder-exhausted requests lives alongside it, and the
//! next run over the same DIR warm-starts the cache from the surviving
//! records (same statistics epoch only). The report then carries a
//! `store:` line and a `plan digest:` line — an order-independent fold
//! over every served plan's structural digest, so two runs are
//! plan-for-plan bit-identical iff the digests match.
//!
//! `sdp-service replay --dlq DIR` switches to drain mode: each record
//! in DIR's dead-letter queue is verified against its stored
//! fingerprint and re-optimized without resource limits; records that
//! succeed leave the queue, records that fail again stay.
//!
//! `--queue-cap N` bounds the daemon's admission queue: submissions
//! that find it full are answered immediately (stale-serve or shed)
//! instead of queueing. `--overload ROUNDS` (requires `--queue-cap`)
//! switches to the overload battery: a poison ladder trips one
//! fingerprint's circuit breaker and recovers it through the
//! half-open probe, then ROUNDS paused bursts of 4·cap submissions
//! exercise bounded admission and stale-serve; the report gains
//! `overload:` and `breaker:` counter lines, and any deviation from
//! the deterministic expectations fails the run.
//!
//! `--flight-dir DIR` attaches the flight recorder: every
//! decision-bearing trace event (request outcome, stale serve, shed,
//! breaker transition, …) is projected into a bounded in-memory ring
//! and written through to DIR's CRC-framed flight log, so `sdp-service
//! inspect --flight DIR` can reconstruct the last decisions even after
//! a crash. The report gains a `flight:` line with the ring depth and
//! the order-independent record digest.
//!
//! `--qerror` appends the cardinality-accuracy battery: the distinct
//! workload is re-optimized against a scaled-down materialized copy of
//! the schema and executed through the instrumented executor, feeding
//! per-plan-node (estimated, actual) row counts into the Q-error
//! observatory. The run prints an `EXPLAIN ANALYZE` with the top-K
//! worst-estimated nodes, per-kind/per-predicate Q-error summaries,
//! and merges the `qerror` histogram family into `--metrics-json` /
//! `--metrics-prom` output. With `--flight-dir` the battery also
//! appends `(fingerprint, node-path, est, actual)` calibration records
//! to DIR's telemetry log.
//!
//! `sdp-service inspect --flight DIR [--last N]` recovers the flight
//! log (torn tails truncated, digests re-verified) and prints the last
//! N records in canonical content order plus their multiset digest —
//! byte-identical across `SDP_THREADS` for the same workload.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use sdp_catalog::Catalog;
use sdp_core::{Algorithm, Governor, Optimizer};
use sdp_engine::{execute_observed, scaled_catalog, Database};
use sdp_metrics::alloc::CountingAllocator;
use sdp_obs::{
    canonical_sort, fold_digest, multiset_digest, CalibrationLog, FlightLog, FlightRecorder,
    Observation, QErrorObservatory, DEFAULT_FLIGHT_CAPACITY,
};
use sdp_query::canon::stable_hash;
use sdp_query::{Query, QueryGenerator, Topology};
use sdp_service::{
    fingerprint_query, Daemon, DaemonConfig, OptimizerService, PlanSource, ServiceConfig,
    ServiceError, ServiceRequest,
};
use sdp_trace::{chrome_trace, Event, MemorySink, TeeSink, TraceSink, Tracer};

// Count heap traffic so `--metrics-json` reports real allocator
// watermarks, same as the experiment harness.
#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator::new();

struct ReplayArgs {
    shape: String,
    relations: usize,
    distinct: usize,
    requests: usize,
    clients: usize,
    workers: usize,
    capacity: usize,
    shards: usize,
    threads: Option<usize>,
    enumerator: Option<sdp_core::EnumeratorKind>,
    ordered: bool,
    seed: u64,
    deadline_ms: Option<u64>,
    memory_mb: Option<u64>,
    trace: Option<String>,
    metrics_json: Option<String>,
    store_dir: Option<String>,
    dlq: Option<String>,
    queue_cap: Option<usize>,
    overload: Option<usize>,
    flight_dir: Option<String>,
    qerror: bool,
    metrics_prom: Option<String>,
    // Parsed unconditionally (so the flag errors helpfully on non-test
    // builds) but only read under the testkit feature.
    #[cfg_attr(not(feature = "testkit"), allow(dead_code))]
    crash_after_store_writes: Option<u64>,
}

impl Default for ReplayArgs {
    fn default() -> Self {
        ReplayArgs {
            shape: "star-chain".into(),
            relations: 9,
            distinct: 8,
            requests: 256,
            clients: 4,
            workers: 4,
            capacity: 1024,
            shards: 8,
            threads: None,
            enumerator: None,
            ordered: false,
            seed: 42,
            deadline_ms: None,
            memory_mb: None,
            trace: None,
            metrics_json: None,
            store_dir: None,
            dlq: None,
            queue_cap: None,
            overload: None,
            flight_dir: None,
            qerror: false,
            metrics_prom: None,
            crash_after_store_writes: None,
        }
    }
}

fn usage() -> &'static str {
    "usage: sdp-service replay [--shape star|chain|cycle|star-chain] \
     [--relations N] [--distinct N] [--requests N] [--clients N] \
     [--workers N] [--capacity N] [--shards N] [--threads N] \
     [--enumerator levelscan|dpccp|dpconv] [--ordered] [--seed N] \
     [--deadline-ms N] [--memory-mb N] [--trace PATH] [--metrics-json PATH] \
     [--metrics-prom PATH] [--store-dir DIR] [--dlq DIR] [--queue-cap N] \
     [--overload ROUNDS] [--flight-dir DIR] [--qerror]\n\
     \x20      sdp-service inspect --flight DIR [--last N]"
}

fn parse_replay(args: &[String]) -> Result<ReplayArgs, String> {
    let mut out = ReplayArgs::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--shape" => out.shape = value("--shape")?.clone(),
            "--relations" => {
                out.relations = value("--relations")?
                    .parse()
                    .map_err(|e| format!("--relations: {e}"))?
            }
            "--distinct" => {
                out.distinct = value("--distinct")?
                    .parse()
                    .map_err(|e| format!("--distinct: {e}"))?
            }
            "--requests" => {
                out.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--clients" => {
                out.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--workers" => {
                out.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--capacity" => {
                out.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?
            }
            "--shards" => {
                out.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--threads" => {
                out.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--enumerator" => {
                let name = value("--enumerator")?;
                out.enumerator = Some(
                    sdp_core::EnumeratorKind::parse(name)
                        .ok_or_else(|| format!("--enumerator: unknown strategy {name:?}"))?,
                )
            }
            "--ordered" => out.ordered = true,
            "--seed" => {
                out.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--deadline-ms" => {
                out.deadline_ms = Some(
                    value("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                )
            }
            "--memory-mb" => {
                out.memory_mb = Some(
                    value("--memory-mb")?
                        .parse()
                        .map_err(|e| format!("--memory-mb: {e}"))?,
                )
            }
            "--queue-cap" => {
                out.queue_cap = Some(
                    value("--queue-cap")?
                        .parse()
                        .map_err(|e| format!("--queue-cap: {e}"))?,
                )
            }
            "--overload" => {
                out.overload = Some(
                    value("--overload")?
                        .parse()
                        .map_err(|e| format!("--overload: {e}"))?,
                )
            }
            "--trace" => out.trace = Some(value("--trace")?.clone()),
            "--metrics-json" => out.metrics_json = Some(value("--metrics-json")?.clone()),
            "--metrics-prom" => out.metrics_prom = Some(value("--metrics-prom")?.clone()),
            "--store-dir" => out.store_dir = Some(value("--store-dir")?.clone()),
            "--dlq" => out.dlq = Some(value("--dlq")?.clone()),
            "--flight-dir" => out.flight_dir = Some(value("--flight-dir")?.clone()),
            "--qerror" => out.qerror = true,
            "--crash-after-store-writes" => {
                out.crash_after_store_writes = Some(
                    value("--crash-after-store-writes")?
                        .parse()
                        .map_err(|e| format!("--crash-after-store-writes: {e}"))?,
                );
                if cfg!(not(feature = "testkit")) {
                    return Err(
                        "--crash-after-store-writes needs a build with --features testkit".into(),
                    );
                }
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if out.distinct == 0 || out.requests == 0 || out.clients == 0 {
        return Err("--distinct, --requests and --clients must be positive".into());
    }
    if out.queue_cap == Some(0) {
        return Err("--queue-cap must be positive".into());
    }
    match out.overload {
        Some(0) => return Err("--overload needs at least one round".into()),
        Some(_) if out.queue_cap.is_none() => {
            return Err(
                "--overload needs --queue-cap (the burst overfills the bounded queue)".into(),
            )
        }
        _ => {}
    }
    Ok(out)
}

fn topology_for(shape: &str, n: usize) -> Result<Topology, String> {
    let least = |min: usize| {
        if n >= min {
            Ok(())
        } else {
            Err(format!("--shape {shape} needs --relations >= {min}"))
        }
    };
    match shape {
        "star" => least(2).map(|()| Topology::Star(n)),
        "chain" => least(2).map(|()| Topology::Chain(n)),
        "cycle" => least(3).map(|()| Topology::Cycle(n)),
        "star-chain" => least(3).map(|()| Topology::star_chain(n)),
        other => Err(format!("unknown shape {other:?}\n{}", usage())),
    }
}

/// Routes per-request failures to stderr as they happen. Replaces the
/// client loop's bare `eprintln!`: the `request_error` events it
/// prints carry the query fingerprint and the rung that failed, which
/// the client-side error alone never knew. Every routed error is
/// counted, and any count > 0 makes the run exit non-zero — a request
/// error must never scroll by on a green exit status.
#[derive(Default)]
struct StderrErrorSink {
    errors: AtomicU64,
}

impl StderrErrorSink {
    fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }
}

impl TraceSink for StderrErrorSink {
    fn record(&self, event: Event) {
        if event.name == "request_error" {
            self.errors.fetch_add(1, Ordering::Relaxed);
            eprintln!("{}", event.canonical());
        }
    }
}

// The order-independent served-plan digest fold is `sdp_obs::
// fold_digest`, shared with the flight recorder's multiset digest:
// one commutative combining rule for both surfaces, so the "plan
// digest" line stays deterministic under any client/worker
// interleaving.

/// Drain mode (`replay --dlq DIR`): re-optimize every dead-letter
/// record without resource limits and rewrite the queue with only the
/// records that failed again.
fn drain_dlq(args: &ReplayArgs, dir: &str) -> Result<(), String> {
    let catalog = if args.relations + 1 < 25 {
        Catalog::paper()
    } else {
        Catalog::extended(args.relations * 2)
    };
    let (mut dlq, recovery, undecodable) =
        sdp_store::DeadLetterQueue::open(std::path::Path::new(dir))
            .map_err(|e| format!("opening --dlq {dir}: {e}"))?;
    println!(
        "dlq: {} records recovered from {dir} ({} undecodable skipped{})",
        dlq.len(),
        undecodable,
        if recovery.truncated {
            ", torn tail truncated"
        } else {
            ""
        },
    );
    if dlq.is_empty() {
        return Ok(());
    }

    let service = OptimizerService::new(
        catalog.clone(),
        ServiceConfig {
            cache_capacity: args.capacity,
            cache_shards: args.shards,
            parallelism: args.threads,
            enumerator: args.enumerator,
            ..ServiceConfig::default()
        },
    );
    let mut remaining = Vec::new();
    let mut drained = 0usize;
    for record in dlq.records().to_vec() {
        // The queue may hold records from another catalog or schema
        // generation; the fingerprint check catches that before an
        // enumeration can silently answer the wrong question.
        let fp = fingerprint_query(&catalog, &record.query);
        if fp.0 != record.fingerprint {
            eprintln!(
                "dlq: fingerprint mismatch (stored {:032x}, bound {:032x}) — keeping record",
                record.fingerprint, fp.0
            );
            remaining.push(record);
            continue;
        }
        let mut request = ServiceRequest::query(record.query.clone());
        if let Some(algorithm) = record.algorithm {
            request = request.with_algorithm(algorithm);
        }
        match service.get_plan(&request) {
            Ok(resp) => {
                drained += 1;
                println!(
                    "dlq: {:032x} re-optimized via {} — cost {:.3}, digest {:016x} \
                     (was: {})",
                    record.fingerprint,
                    resp.plan.strategy,
                    resp.plan.cost,
                    resp.plan.root.structural_digest(),
                    record.error,
                );
            }
            Err(e) => {
                eprintln!("dlq: {:032x} failed again: {e}", record.fingerprint);
                remaining.push(record);
            }
        }
    }
    let left = remaining.len();
    dlq.rewrite(remaining)
        .map_err(|e| format!("rewriting --dlq {dir}: {e}"))?;
    println!("dlq: drained {drained}, {left} remain");
    if left > 0 {
        return Err(format!("{left} dead-letter records failed again"));
    }
    Ok(())
}

/// The standard replay workload: `--clients` threads issuing seeded
/// picks from the distinct pool, alternating SQL-text and
/// programmatic submissions. Returns (failures, plan-digest fold).
fn run_clients(
    daemon: &Daemon,
    queries: &[Query],
    sql: &[String],
    args: &ReplayArgs,
) -> (u64, u64) {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|c| {
                let (seed, requests, clients) = (args.seed, args.requests, args.clients);
                let (deadline_ms, memory_mb) = (args.deadline_ms, args.memory_mb);
                scope.spawn(move || {
                    let mut failures = 0u64;
                    let mut digest = 0u64;
                    // Client c issues every request with index ≡ c
                    // (mod clients), drawn pseudo-randomly (seeded)
                    // from the distinct pool, alternating SQL-text and
                    // programmatic submissions.
                    for i in (c..requests).step_by(clients) {
                        let pick =
                            stable_hash(seed ^ 0x72_65_70, &[i as u64]) as usize % queries.len();
                        let mut request = if i % 2 == 0 {
                            ServiceRequest::sql(sql[pick].clone())
                        } else {
                            ServiceRequest::query(queries[pick].clone())
                        };
                        if let Some(ms) = deadline_ms {
                            request = request.with_deadline(Duration::from_millis(ms));
                        }
                        if let Some(mb) = memory_mb {
                            request = request.with_memory_budget(mb << 20);
                        }
                        // Failures surface through the trace stream
                        // (see StderrErrorSink), which knows the
                        // fingerprint and rung; only count them here.
                        match daemon.execute(request) {
                            Ok(resp) => {
                                digest = fold_digest(digest, resp.plan.root.structural_digest());
                            }
                            Err(_) => failures += 1,
                        }
                    }
                    (failures, digest)
                })
            })
            .collect();
        // fold_digest is a wrapping sum of per-plan terms, so client
        // subtotals combine with a wrapping add — commutative, hence
        // independent of the client/worker interleaving.
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(f, d), (cf, cd)| {
                (f + cf, d.wrapping_add(cd))
            })
    })
}

/// The overload battery (`--overload ROUNDS --queue-cap C`): first a
/// poison ladder that trips one fingerprint's circuit breaker, rides
/// out the fail-fast rejections and recovers through the half-open
/// probe; then `ROUNDS` paused bursts of `4·C` submissions against
/// the bounded queue, bumping the statistics epoch between rounds so
/// overflow arrivals exercise stale-serve. Every outcome is checked
/// against the deterministic expectation; any deviation is an error.
/// Returns (requests served OK, plan-digest fold over them).
#[allow(clippy::too_many_arguments)]
fn run_overload(
    daemon: &Daemon,
    queries: &[Query],
    sql: &[String],
    args: &ReplayArgs,
    rounds: usize,
    queue_cap: usize,
    breaker_threshold: u32,
    breaker_probe_every: u64,
) -> Result<(u64, u64), String> {
    let service = daemon.service();
    let mut served = 0u64;
    let mut digest = 0u64;

    // Poison phase: the same fingerprint exhausts the ladder (a
    // zero-byte memory budget fails every rung down to GOO) exactly
    // `breaker_threshold` times in a row.
    println!("overload: poison phase — {breaker_threshold} ladder exhaustions on one fingerprint");
    for attempt in 0..breaker_threshold {
        let poison = ServiceRequest::query(queries[0].clone())
            .with_algorithm(sdp_core::Algorithm::Dp)
            .with_memory_budget(0);
        match daemon.execute(poison) {
            Err(ServiceError::Opt(_)) => {}
            other => {
                return Err(format!(
                    "poison attempt {attempt}: expected ladder exhaustion, got {other:?}"
                ))
            }
        }
    }
    let snap = service.overload_counters().snapshot();
    if snap.breaker_trips != 1 {
        return Err(format!(
            "expected the breaker to trip exactly once after {breaker_threshold} failures, \
             counted {} trips",
            snap.breaker_trips
        ));
    }
    // While open, arrivals fail fast into the DLQ until the probe slot.
    for arrival in 1..breaker_probe_every {
        match daemon.execute(ServiceRequest::query(queries[0].clone())) {
            Err(ServiceError::BreakerOpen { .. }) => {}
            other => {
                return Err(format!(
                    "breaker-open arrival {arrival}: expected fail-fast, got {other:?}"
                ))
            }
        }
    }
    // The probe arrival runs for real; without the poison limits it
    // succeeds and closes the breaker.
    let probe = daemon
        .execute(ServiceRequest::query(queries[0].clone()))
        .map_err(|e| format!("recovery probe failed: {e}"))?;
    served += 1;
    digest = fold_digest(digest, probe.plan.root.structural_digest());
    let snap = service.overload_counters().snapshot();
    if snap.breaker_recoveries != 1 {
        return Err(format!(
            "expected one breaker recovery after the probe, counted {}",
            snap.breaker_recoveries
        ));
    }
    println!(
        "overload: breaker tripped after {breaker_threshold} failures, rejected {} arrivals, \
         recovered via probe ({})",
        snap.breaker_rejections, probe.plan.strategy,
    );

    // Burst phase: each round bumps the statistics epoch (pushing the
    // previous round's plans onto the stale shelf), pauses the
    // workers, floods the bounded queue with 4·cap submissions, and
    // releases. Decisions depend only on submission order, so the
    // admit/stale/shed split is identical across worker counts.
    let (mut total_shed, mut total_stale) = (0u64, 0u64);
    for round in 0..rounds {
        service.bump_stats_epoch();
        daemon.pause();
        let burst = 4 * queue_cap;
        let tickets: Vec<_> = (0..burst)
            .map(|i| {
                let pick = stable_hash(args.seed ^ 0x6f_76_6c ^ round as u64, &[i as u64]) as usize
                    % queries.len();
                let request = if i % 2 == 0 {
                    ServiceRequest::sql(sql[pick].clone())
                } else {
                    ServiceRequest::query(queries[pick].clone())
                };
                daemon.submit(request)
            })
            .collect();
        daemon.resume();
        let (mut optimized, mut stale, mut shed) = (0u64, 0u64, 0u64);
        for (i, ticket) in tickets.into_iter().enumerate() {
            match ticket.wait() {
                Ok(resp) => {
                    if resp.source == PlanSource::Stale {
                        stale += 1;
                    } else {
                        optimized += 1;
                    }
                    served += 1;
                    digest = fold_digest(digest, resp.plan.root.structural_digest());
                }
                Err(ServiceError::Shed(_)) => shed += 1,
                Err(e) => return Err(format!("round {round} submission {i}: {e}")),
            }
        }
        println!(
            "overload: round {round}: {optimized} optimized, {stale} served stale, \
             {shed} shed of {burst}"
        );
        // Paused submissions make admission a pure function of
        // submission order: exactly `cap` jobs are admitted and
        // optimized; the overflow is answered from the stale shelf or
        // shed, nothing else.
        if optimized != queue_cap as u64 || stale + shed != (burst - queue_cap) as u64 {
            return Err(format!(
                "round {round}: expected exactly {queue_cap} admitted and \
                 {} stale-or-shed, got {optimized}/{stale}/{shed}",
                burst - queue_cap
            ));
        }
        total_shed += shed;
        total_stale += stale;
    }
    // Early rounds must shed (the shelf starts near-empty); late
    // rounds may absorb the whole overflow as stale serves — but both
    // modes have to show up somewhere in the battery.
    if total_shed == 0 {
        return Err("overload battery never shed a request".into());
    }
    if total_stale == 0 {
        return Err("overload battery never served a stale plan".into());
    }
    Ok((served, digest))
}

fn replay(args: ReplayArgs) -> Result<(), String> {
    if let Some(dir) = &args.dlq {
        return drain_dlq(&args, dir);
    }
    let topology = topology_for(&args.shape, args.relations)?;
    let catalog = if args.relations + 1 < 25 {
        Catalog::paper()
    } else {
        Catalog::extended(args.relations * 2)
    };
    let generator = QueryGenerator::new(&catalog, topology, args.seed);
    let queries: Vec<Query> = (0..args.distinct as u64)
        .map(|k| {
            if args.ordered {
                generator.ordered_instance(k)
            } else {
                generator.instance(k)
            }
        })
        .collect();
    let sql: Vec<String> = queries
        .iter()
        .map(|q| sdp_sql::render_sql(&catalog, q))
        .collect();

    // Error reporting always flows through the trace stream; a
    // capturing sink joins the tee only when `--trace` asks for a
    // dump.
    let capture = args
        .trace
        .as_ref()
        .map(|_| Arc::new(MemorySink::unbounded()));
    let errors = Arc::new(StderrErrorSink::default());
    let mut sinks: Vec<Arc<dyn TraceSink>> = vec![Arc::clone(&errors) as Arc<dyn TraceSink>];
    if let Some(capture) = &capture {
        sinks.push(Arc::clone(capture) as Arc<dyn TraceSink>);
    }
    // The flight recorder joins the tee like any other sink: it
    // projects decision events into the ring and writes them through
    // to the CRC-framed log, so a crashed run still leaves its last
    // decisions inspectable.
    let flight = match &args.flight_dir {
        Some(dir) => {
            let (log, recovered, stats) = FlightLog::open(std::path::Path::new(dir))
                .map_err(|e| format!("opening --flight-dir {dir}: {e}"))?;
            println!(
                "flight: {} prior records recovered from {dir}{}",
                recovered.len(),
                if stats.truncated {
                    " (torn tail truncated)"
                } else {
                    ""
                },
            );
            Some(Arc::new(FlightRecorder::with_log(
                DEFAULT_FLIGHT_CAPACITY,
                log,
            )))
        }
        None => None,
    };
    if let Some(recorder) = &flight {
        sinks.push(Arc::clone(recorder) as Arc<dyn TraceSink>);
    }
    let tracer = Tracer::new(Arc::new(TeeSink::new(sinks)));

    let config = ServiceConfig {
        cache_capacity: args.capacity,
        cache_shards: args.shards,
        parallelism: args.threads,
        enumerator: args.enumerator,
        ..ServiceConfig::default()
    };
    let breaker_threshold = config.breaker_threshold;
    let breaker_probe_every = config.breaker_probe_every;
    #[allow(unused_mut)]
    let mut service = OptimizerService::new(catalog.clone(), config).with_tracer(tracer);
    #[cfg(feature = "testkit")]
    if let Some(n) = args.crash_after_store_writes {
        service =
            service.with_store_faults(sdp_testkit::FaultPlan::new().crash_after_store_writes(n));
    }
    if let Some(dir) = &args.store_dir {
        let dir = std::path::Path::new(dir);
        service = service
            .with_store(dir)
            .map_err(|e| format!("opening --store-dir: {e}"))?
            .with_dlq(dir)
            .map_err(|e| format!("opening dead-letter queue: {e}"))?;
        let snap = service.store_counters().snapshot();
        println!(
            "store: warm start from {} — {} plans filled, {} stale dropped, \
             {} torn truncations, dlq depth {}",
            dir.display(),
            snap.warm_fills,
            snap.stale_dropped,
            snap.torn_truncations,
            snap.dlq_depth,
        );
    }
    let service = Arc::new(service);
    let daemon = match args.queue_cap {
        Some(cap) => Daemon::with_config(
            Arc::clone(&service),
            DaemonConfig::new(args.workers).with_queue_capacity(cap),
        ),
        None => Daemon::spawn(Arc::clone(&service), args.workers),
    };

    if let Some(rounds) = args.overload {
        println!(
            "overload: {rounds} burst rounds of {} submissions over queue cap {} \
             ({} distinct {} queries, {} workers, seed {})",
            4 * args.queue_cap.unwrap_or(0),
            args.queue_cap.unwrap_or(0),
            args.distinct,
            args.shape,
            args.workers,
            args.seed,
        );
    } else {
        println!(
            "replaying {} requests over {} distinct {}{} queries ({} relations) \
             with {} clients, {} workers, cache {} x{} shards, seed {}",
            args.requests,
            args.distinct,
            if args.ordered { "ordered " } else { "" },
            args.shape,
            args.relations,
            args.clients,
            args.workers,
            args.capacity,
            args.shards,
            args.seed,
        );
    }

    let started = Instant::now();
    let (served, failures, plan_digest) = if let Some(rounds) = args.overload {
        let queue_cap = args.queue_cap.expect("validated at parse");
        let (served, digest) = run_overload(
            &daemon,
            &queries,
            &sql,
            &args,
            rounds,
            queue_cap,
            breaker_threshold,
            breaker_probe_every,
        )?;
        (served, 0u64, digest)
    } else {
        let (failures, digest) = run_clients(&daemon, &queries, &sql, &args);
        (args.requests as u64 - failures, failures, digest)
    };
    let elapsed = started.elapsed();

    let snap = service.counters_snapshot();
    let throughput = (served + failures) as f64 / elapsed.as_secs_f64();
    println!();
    println!(
        "served {} requests in {:.3} s — {:.0} req/s ({} failed)",
        served,
        elapsed.as_secs_f64(),
        throughput,
        failures,
    );
    println!(
        "cache: {} hits, {} misses, {} coalesced ({:.1}% amortized), \
         {} LRU-evicted, {} stale-evicted, {} plans resident",
        snap.hits,
        snap.misses,
        snap.coalesced,
        snap.amortized_rate() * 100.0,
        snap.evicted,
        snap.stale_evicted,
        service.cached_plans(),
    );
    println!(
        "enumerations: {} runs costing {} plans total",
        snap.enumerations, snap.plans_costed
    );
    for (strategy, lat) in service.latencies().snapshot() {
        println!(
            "  {strategy:<10} {:>4} runs  mean {:>9.3?}  max {:>9.3?}",
            lat.count,
            lat.mean(),
            lat.max
        );
    }

    let gov = service.governor_snapshot();
    println!(
        "governor: {} degradations ({} deadline, {} memory, {} cancelled), \
         {} timeouts, {} leader retries",
        gov.degradations,
        gov.deadline_degradations,
        gov.memory_degradations,
        gov.cancel_degradations,
        gov.timeouts,
        gov.leader_retries,
    );
    for (rung, hist) in service.rung_latencies().snapshot() {
        println!(
            "  {rung:<10} {:>4} runs  mean {:>9.3?}  max {:>9.3?}",
            hist.count,
            hist.mean(),
            hist.max
        );
        for (upper, count) in hist.nonzero_buckets() {
            println!("    ≤ {upper:>9.3?}  {count:>4}");
        }
    }

    if args.store_dir.is_some() {
        // Settle the write-behind queue so the counters (and the
        // metrics dump below) reflect every served plan.
        service.flush_store();
        let store = service.store_counters().snapshot();
        println!(
            "store: {} writes ({} errors), {} warm fills, {} warm hits, \
             {} stale dropped, {} compactions",
            store.writes,
            store.write_errors,
            store.warm_fills,
            store.warm_hits,
            store.stale_dropped,
            store.compactions,
        );
        println!(
            "dlq: {} enqueued this run, depth {}",
            store.dlq_enqueued, store.dlq_depth
        );
    }
    if args.overload.is_some() {
        let o = service.overload_counters().snapshot();
        println!(
            "overload: {} shed (queue-full), {} shed (deadline), {} served stale, \
             queue depth hwm {}, inflight hwm {}",
            o.shed_queue_full, o.shed_deadline, o.served_stale, o.queue_depth_hwm, o.inflight_hwm,
        );
        println!(
            "breaker: {} trips, {} rejections, {} probes, {} recoveries",
            o.breaker_trips, o.breaker_rejections, o.breaker_probes, o.breaker_recoveries,
        );
    }
    println!("plan digest: {plan_digest:016x} over {served} served");

    daemon.shutdown();

    if let Some(recorder) = &flight {
        println!(
            "flight: {} records in ring ({} evicted to log only, {} write errors), \
             digest {:016x}",
            recorder.len(),
            recorder.dropped(),
            recorder.io_errors(),
            recorder.digest(),
        );
    }

    let observatory = if args.qerror {
        Some(run_qerror(&args)?)
    } else {
        None
    };

    if let (Some(path), Some(capture)) = (&args.trace, &capture) {
        let events = capture.snapshot();
        std::fs::write(path, chrome_trace(&events))
            .map_err(|e| format!("writing --trace {path}: {e}"))?;
        println!(
            "trace: {} events ({} dropped) written to {path}",
            events.len(),
            capture.dropped(),
        );
    }
    if args.metrics_json.is_some() || args.metrics_prom.is_some() {
        let mut report = service.metrics_report();
        if let Some(observatory) = &observatory {
            report.qerror = observatory.series();
        }
        if let Some(path) = &args.metrics_json {
            std::fs::write(path, report.to_json())
                .map_err(|e| format!("writing --metrics-json {path}: {e}"))?;
            println!("metrics: report written to {path}");
        }
        if let Some(path) = &args.metrics_prom {
            std::fs::write(path, report.prometheus_text())
                .map_err(|e| format!("writing --metrics-prom {path}: {e}"))?;
            println!("metrics: prometheus exposition written to {path}");
        }
    }

    if failures > 0 {
        return Err(format!("{failures} requests failed"));
    }
    // Belt and braces for the exit status: any request_error routed to
    // stderr fails the run, even if no client saw the failure (e.g. a
    // waiter that recovered by retrying after a leader error). The
    // overload battery *injects* exactly `breaker_threshold` poison
    // failures to trip the breaker, so there the count must match
    // exactly — more means collateral failures, fewer means the
    // poison never ran.
    let routed = errors.errors();
    let expected_routed = match args.overload {
        Some(_) => u64::from(breaker_threshold),
        None => 0,
    };
    if routed != expected_routed {
        return Err(format!(
            "{routed} request errors reported on stderr (expected {expected_routed})"
        ));
    }
    Ok(())
}

/// The cardinality-accuracy battery (`replay --qerror`): re-optimize
/// the distinct workload against a scaled-down *materialized* copy of
/// the schema, execute each plan through the instrumented executor,
/// and aggregate per-plan-node (estimated, actual) row counts into
/// the Q-error observatory. Prints an `EXPLAIN ANALYZE` with the
/// worst-estimated nodes for the first plan and per-series summaries
/// for the rest; with `--flight-dir` every observation is also
/// appended to the calibration telemetry log.
fn run_qerror(args: &ReplayArgs) -> Result<QErrorObservatory, String> {
    // Execution validates estimates; it does not need production
    // cardinalities. Cap the join size so the battery stays a
    // seconds-scale tail on the replay.
    let relations = args.relations.clamp(3, 7);
    let catalog = scaled_catalog(relations + 2, 200, args.seed);
    let db = Database::generate(&catalog, args.seed ^ 0x0b5e);
    let topology = topology_for(&args.shape, relations)?;
    let generator = QueryGenerator::new(&catalog, topology, args.seed);
    let mut optimizer = Optimizer::new(&catalog);
    if let Some(kind) = args.enumerator {
        optimizer = optimizer.with_enumerator(kind);
    }
    if let Some(threads) = args.threads {
        optimizer = optimizer.with_parallelism(threads);
    }
    let governor = Governor::new();
    let mut calibration = match &args.flight_dir {
        Some(dir) => Some(
            CalibrationLog::open(std::path::Path::new(dir))
                .map_err(|e| format!("opening calibration log in {dir}: {e}"))?
                .0,
        ),
        None => None,
    };

    let plans = args.distinct.min(6) as u64;
    println!();
    println!(
        "qerror: executing {plans} {} plans over a scaled schema \
         ({relations} relations, materialized)",
        args.shape,
    );
    let mut observatory = QErrorObservatory::new();
    let mut calibration_records = 0u64;
    for k in 0..plans {
        let query = generator.instance(k);
        let fingerprint = fingerprint_query(&catalog, &query).0;
        let governed = optimizer
            .optimize_governed(&query, Algorithm::Dp, &governor)
            .map_err(|e| format!("qerror: optimizing instance {k}: {e}"))?;
        let (_rows, nodes) = execute_observed(&governed.plan.root, &query, &catalog, &db)
            .map_err(|e| format!("qerror: executing instance {k}: {e}"))?;
        let observations: Vec<Observation> = nodes
            .iter()
            .map(|n| Observation {
                fingerprint,
                path: n.path.clone(),
                kind: n.kind.clone(),
                detail: n.detail.clone(),
                estimated: n.estimated,
                actual: n.actual,
            })
            .collect();
        if let Some(log) = calibration.as_mut() {
            for obs in &observations {
                log.append(&obs.calibration())
                    .map_err(|e| format!("qerror: appending calibration record: {e}"))?;
                calibration_records += 1;
            }
        }
        observatory.observe_all(&observations);
        if k == 0 {
            // The first plan gets the full EXPLAIN ANALYZE treatment,
            // worst-estimated nodes appended.
            println!();
            print!("{}", sdp_core::explain_analyze(&governed));
            let labelled: Vec<(String, f64, u64)> = nodes
                .iter()
                .map(|n| {
                    let label = if n.detail.is_empty() {
                        format!("{} {}", n.path, n.kind)
                    } else {
                        format!("{} {} [{}]", n.path, n.kind, n.detail)
                    };
                    (label, n.estimated, n.actual)
                })
                .collect();
            println!();
            print!("{}", sdp_core::worst_estimates(&labelled, 5));
        }
    }

    println!();
    println!(
        "qerror: {} node observations across {} series",
        observatory.observed(),
        observatory.series().len(),
    );
    for (label, h) in observatory.series() {
        println!(
            "  {label:<44} count {:>4}  mean {:>9.3}  p95 {:>9.3}  max {:>9.3}",
            h.count,
            h.mean(),
            h.p95(),
            h.max,
        );
    }
    let worst: Vec<(String, f64, u64)> = observatory
        .worst(8)
        .iter()
        .map(|o| {
            let fp = format!("{:032x}", o.fingerprint);
            (
                format!("[{}] {} {}", &fp[..8], o.path, o.kind),
                o.estimated,
                o.actual,
            )
        })
        .collect();
    print!("{}", sdp_core::worst_estimates(&worst, 8));
    if calibration.is_some() {
        println!("qerror: {calibration_records} calibration records appended");
    }
    Ok(observatory)
}

struct InspectArgs {
    flight: String,
    last: Option<usize>,
}

fn parse_inspect(args: &[String]) -> Result<InspectArgs, String> {
    let mut flight = None;
    let mut last = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--flight" => flight = Some(value("--flight")?.clone()),
            "--last" => {
                last = Some(
                    value("--last")?
                        .parse()
                        .map_err(|e| format!("--last: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    Ok(InspectArgs {
        flight: flight.ok_or_else(|| format!("inspect needs --flight DIR\n{}", usage()))?,
        last,
    })
}

/// Post-mortem flight reconstruction (`inspect --flight DIR`): recover
/// the flight log (torn tails truncated, per-record digests
/// re-verified), keep the last N records by write order, and print
/// them in canonical content order with their multiset digest — the
/// byte-identical-across-`SDP_THREADS` surface the obs smoke diffs.
fn inspect(args: InspectArgs) -> Result<(), String> {
    let dir = std::path::Path::new(&args.flight);
    if !FlightLog::path_in(dir).exists() {
        return Err(format!(
            "no flight log at {}",
            FlightLog::path_in(dir).display()
        ));
    }
    let (_log, records, stats) =
        FlightLog::open(dir).map_err(|e| format!("opening --flight {}: {e}", args.flight))?;
    println!(
        "flight: {} records recovered from {}{}",
        records.len(),
        args.flight,
        if stats.truncated {
            " (torn tail truncated)"
        } else {
            ""
        },
    );
    let keep = args.last.unwrap_or(records.len()).min(records.len());
    let mut window: Vec<_> = records[records.len() - keep..].to_vec();
    let digest = multiset_digest(&window);
    canonical_sort(&mut window);
    for record in &window {
        println!("{}", record.canonical());
    }
    println!("flight digest: {digest:016x} over {keep} records");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("replay") => parse_replay(&args[1..]).and_then(replay),
        Some("inspect") => parse_inspect(&args[1..]).and_then(inspect),
        Some("--help") | Some("-h") | None => {
            println!("{}", usage());
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
