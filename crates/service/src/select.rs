//! Topology-aware enumeration-strategy selection.
//!
//! A resident optimizer cannot afford exhaustive DP on every request:
//! the paper's Tables 1.2–1.4 show DP blowing the 1 GB memory wall
//! between 15 and 20 relations while SDP stays within budget on
//! hub-bearing graphs, and IDP degrades gracefully on hub-free chains
//! and cycles where SDP's localized pruning has nothing to localize.
//! The selector encodes exactly that evidence:
//!
//! * small queries — exhaustive DP, the optimum is cheap;
//! * hub-bearing graphs (stars, star-chains) — SDP with the paper's
//!   default configuration;
//! * hub-free graphs (chains, cycles) — DP while it fits, then
//!   IDP(4);
//! * very large queries of either shape — GOO, the constant-overhead
//!   fallback.

use sdp_core::Algorithm;
use sdp_core::SdpConfig;
use sdp_query::{hubs, Query};

/// Largest relation count optimized exhaustively regardless of shape.
pub const SMALL_QUERY_MAX: usize = 9;
/// Largest hub-free query still worth exhaustive DP.
pub const DP_HUBFREE_MAX: usize = 13;
/// Largest query optimized with a DP-quality heuristic (SDP/IDP)
/// before falling back to greedy ordering.
pub const HEURISTIC_MAX: usize = 32;

/// Pick an enumeration strategy for `query` from its size and hub
/// structure.
pub fn choose(query: &Query) -> Algorithm {
    let n = query.num_relations();
    if n <= SMALL_QUERY_MAX {
        return Algorithm::Dp;
    }
    if n > HEURISTIC_MAX {
        return Algorithm::Goo;
    }
    if hubs::root_hubs(&query.graph).is_empty() {
        if n <= DP_HUBFREE_MAX {
            Algorithm::Dp
        } else {
            Algorithm::Idp { k: 4 }
        }
    } else {
        Algorithm::Sdp(SdpConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    fn query_for(topo: Topology) -> Query {
        QueryGenerator::new(&Catalog::paper(), topo, 1).instance(0)
    }

    #[test]
    fn small_queries_get_exhaustive_dp() {
        assert_eq!(choose(&query_for(Topology::Chain(5))), Algorithm::Dp);
        assert_eq!(choose(&query_for(Topology::Star(9))), Algorithm::Dp);
    }

    #[test]
    fn hubby_graphs_get_sdp() {
        assert_eq!(
            choose(&query_for(Topology::Star(15))),
            Algorithm::Sdp(SdpConfig::paper())
        );
        assert_eq!(
            choose(&query_for(Topology::star_chain(20))),
            Algorithm::Sdp(SdpConfig::paper())
        );
    }

    #[test]
    fn hubfree_graphs_get_dp_then_idp() {
        assert_eq!(choose(&query_for(Topology::Chain(12))), Algorithm::Dp);
        assert_eq!(
            choose(&query_for(Topology::Chain(20))),
            Algorithm::Idp { k: 4 }
        );
        assert_eq!(
            choose(&query_for(Topology::Cycle(20))),
            Algorithm::Idp { k: 4 }
        );
    }

    #[test]
    fn oversized_queries_fall_back_to_goo() {
        let cat = Catalog::extended(40);
        let q = QueryGenerator::new(&cat, Topology::Star(36), 1).instance(0);
        assert_eq!(choose(&q), Algorithm::Goo);
    }
}
