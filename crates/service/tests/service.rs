//! End-to-end acceptance tests for the optimizer service: bit-exact
//! cache hits at zero enumeration cost, single-flight coalescing of
//! concurrent identical requests, and statistics-epoch invalidation.

use std::sync::{Arc, Barrier};

use sdp_catalog::Catalog;
use sdp_core::{Algorithm, Optimizer, SdpConfig};
use sdp_query::canon::permute_graph;
use sdp_query::{ColRef, JoinEdge, JoinGraph, Query, QueryGenerator, Topology};
use sdp_service::{Daemon, OptimizerService, PlanSource, ServiceConfig, ServiceRequest};

fn small_config() -> ServiceConfig {
    ServiceConfig {
        cache_capacity: 64,
        cache_shards: 4,
        parallelism: None,
        enumerator: None,
        ..ServiceConfig::default()
    }
}

/// Acceptance: a cache hit returns a plan bit-identical to fresh
/// optimization while costing zero new plans, verified against the
/// service's plan counter.
#[test]
fn cache_hit_is_bit_identical_and_costs_no_plans() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(catalog.clone(), small_config());
    let query = QueryGenerator::new(&catalog, Topology::star_chain(9), 7)
        .with_filter_probability(0.5)
        .ordered_instance(0);
    let algorithm = Algorithm::Sdp(SdpConfig::paper());
    let request = ServiceRequest::query(query.clone()).with_algorithm(algorithm);

    // Reference: a fresh optimizer run outside the service.
    let reference = Optimizer::new(&catalog)
        .optimize(&query, algorithm)
        .unwrap();

    let first = service.get_plan(&request).unwrap();
    assert_eq!(first.source, PlanSource::Fresh);
    assert_eq!(
        first.plan.root.structural_digest(),
        reference.root.structural_digest(),
        "service plan differs from a direct optimizer run"
    );
    assert_eq!(first.plan.cost.to_bits(), reference.cost.to_bits());
    assert_eq!(first.plans_costed, reference.stats.plans_costed);

    let costed_before = service.counters_snapshot().plans_costed;
    let second = service.get_plan(&request).unwrap();
    assert_eq!(second.source, PlanSource::Cache);
    assert_eq!(
        second.plan.root.structural_digest(),
        reference.root.structural_digest(),
        "cached plan must be bit-identical to fresh optimization"
    );
    assert_eq!(second.plan.cost.to_bits(), reference.cost.to_bits());
    assert_eq!(second.plan.rows.to_bits(), reference.rows.to_bits());
    assert_eq!(second.plans_costed, 0, "a hit costs no new plans");
    assert_eq!(
        service.counters_snapshot().plans_costed,
        costed_before,
        "the global plan counter must not move on a hit"
    );

    let snap = service.counters_snapshot();
    assert_eq!((snap.hits, snap.misses, snap.enumerations), (1, 1, 1));
}

/// An isomorphic restatement of a cached query — relations declared in
/// a different order, conjuncts shuffled — hits the same entry.
#[test]
fn isomorphic_requests_share_one_cache_entry() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(catalog.clone(), small_config());
    let query = QueryGenerator::new(&catalog, Topology::Star(8), 3)
        .with_filter_probability(0.6)
        .instance(0);
    let algorithm = Algorithm::Dp;

    let first = service
        .get_plan(&ServiceRequest::query(query.clone()).with_algorithm(algorithm))
        .unwrap();
    assert_eq!(first.source, PlanSource::Fresh);

    // Rotate node indices and reverse edge declaration order.
    let n = query.graph.len();
    let perm: Vec<usize> = (0..n).map(|i| (i + 2) % n).collect();
    let permuted = permute_graph(&query.graph, &perm);
    let mut edges: Vec<JoinEdge> = permuted.edges().to_vec();
    edges.reverse();
    let mut shuffled = JoinGraph::new(permuted.relations().to_vec(), edges);
    for f in permuted.filters().iter().rev() {
        shuffled.add_filter(*f);
    }
    let isomorphic = Query::new(shuffled);

    let second = service
        .get_plan(&ServiceRequest::query(isomorphic).with_algorithm(algorithm))
        .unwrap();
    assert_eq!(
        second.source,
        PlanSource::Cache,
        "isomorphic restatement must hit the cache"
    );
    assert_eq!(second.plan.cost.to_bits(), first.plan.cost.to_bits());
    assert_eq!(second.plans_costed, 0);
    assert_eq!(service.cached_plans(), 1);
}

/// Acceptance: N concurrent identical requests trigger exactly one
/// enumeration; everyone receives the same plan.
#[test]
fn concurrent_identical_requests_enumerate_once() {
    const CLIENTS: usize = 8;
    let catalog = Catalog::paper();
    let service = Arc::new(OptimizerService::new(catalog.clone(), small_config()));
    // Large enough that the enumeration outlives thread startup, so
    // coalescing (not just caching) is actually exercised.
    let query = QueryGenerator::new(&catalog, Topology::Star(11), 5).instance(0);
    let request = ServiceRequest::query(query).with_algorithm(Algorithm::Dp);

    let barrier = Arc::new(Barrier::new(CLIENTS));
    let digests: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (service, request, barrier) =
                    (Arc::clone(&service), request.clone(), Arc::clone(&barrier));
                scope.spawn(move || {
                    barrier.wait();
                    let resp = service.get_plan(&request).unwrap();
                    resp.plan.root.structural_digest()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert!(digests.windows(2).all(|w| w[0] == w[1]), "divergent plans");
    let snap = service.counters_snapshot();
    assert_eq!(
        snap.enumerations, 1,
        "exactly one enumeration for {CLIENTS} clients"
    );
    assert_eq!(snap.misses, 1);
    assert_eq!(
        snap.hits + snap.coalesced,
        (CLIENTS - 1) as u64,
        "every other client was served without enumerating"
    );
}

/// Acceptance: bumping the statistics epoch forces re-optimization.
#[test]
fn stats_epoch_bump_forces_reoptimization() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(catalog.clone(), small_config());
    let query = QueryGenerator::new(&catalog, Topology::Chain(6), 11).instance(0);
    let request = ServiceRequest::query(query).with_algorithm(Algorithm::Dp);

    let first = service.get_plan(&request).unwrap();
    assert_eq!(first.source, PlanSource::Fresh);
    assert_eq!(
        service.get_plan(&request).unwrap().source,
        PlanSource::Cache
    );

    let epoch = service.bump_stats_epoch();
    assert_eq!(service.catalog().stats_epoch(), epoch);

    let after = service.get_plan(&request).unwrap();
    assert_eq!(
        after.source,
        PlanSource::Fresh,
        "stale plan served after the epoch bump"
    );
    assert!(after.plans_costed > 0);
    let snap = service.counters_snapshot();
    assert_eq!(snap.enumerations, 2);
    assert!(snap.stale_evicted >= 1, "the old entry was purged");
    assert_eq!(after.plan.stats_epoch, epoch);
}

/// Replacing statistics swaps the snapshot: new requests plan against
/// the new estimates (different fingerprints and costs), old cached
/// plans are unreachable.
#[test]
fn replacing_stats_changes_the_served_plan_cost() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(catalog.clone(), small_config());
    let query = QueryGenerator::new(&catalog, Topology::Chain(5), 2).instance(0);
    let request = ServiceRequest::query(query.clone()).with_algorithm(Algorithm::Dp);

    let before = service.get_plan(&request).unwrap();

    // Grow every relation a hundredfold.
    let analyzed: Vec<_> = catalog
        .relations()
        .iter()
        .map(|r| {
            let mut a = sdp_catalog::AnalyzedRelation::analyze(r);
            a.relation.tuples *= 100.0;
            a.relation.pages *= 100.0;
            a
        })
        .collect();
    service.update_stats(analyzed);

    let after = service.get_plan(&request).unwrap();
    assert_eq!(after.source, PlanSource::Fresh);
    assert!(
        after.plan.cost > before.plan.cost,
        "hundredfold larger inputs must cost more ({} vs {})",
        after.plan.cost,
        before.plan.cost
    );
}

/// LRU capacity pressure evicts; the counters see it.
#[test]
fn capacity_pressure_evicts_lru_entries() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(
        catalog.clone(),
        ServiceConfig {
            cache_capacity: 2,
            cache_shards: 1,
            parallelism: None,
            enumerator: None,
            ..ServiceConfig::default()
        },
    );
    let gen = QueryGenerator::new(&catalog, Topology::Chain(4), 17);
    for k in 0..5 {
        let resp = service
            .get_plan(&ServiceRequest::query(gen.instance(k)).with_algorithm(Algorithm::Dp))
            .unwrap();
        assert_eq!(resp.source, PlanSource::Fresh);
    }
    assert!(service.cached_plans() <= 2);
    assert!(service.counters_snapshot().evicted >= 3);
}

/// The daemon front serves a mixed SQL/programmatic workload and
/// coalesces duplicates across its workers.
#[test]
fn daemon_replays_a_mixed_workload() {
    let catalog = Catalog::paper();
    let service = Arc::new(OptimizerService::new(catalog.clone(), small_config()));
    let daemon = Daemon::spawn(Arc::clone(&service), 4);

    let gen = QueryGenerator::new(&catalog, Topology::star_chain(8), 23);
    let queries: Vec<Query> = (0..3).map(|k| gen.instance(k)).collect();
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            let q = &queries[i % queries.len()];
            let request = if i % 2 == 0 {
                ServiceRequest::sql(sdp_sql::render_sql(&catalog, q))
            } else {
                ServiceRequest::query(q.clone())
            };
            daemon.submit(request)
        })
        .collect();
    for t in tickets {
        t.wait().unwrap();
    }

    let snap = service.counters_snapshot();
    assert_eq!(snap.requests(), 24);
    assert_eq!(
        snap.enumerations, 3,
        "three distinct queries → three enumerations, despite SQL/programmatic mixing"
    );
    assert_eq!(service.cached_plans(), 3);
    daemon.shutdown();
}

/// `ORDER BY` requests are keyed apart from their unordered twins.
#[test]
fn ordered_and_unordered_variants_do_not_collide() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(catalog.clone(), small_config());
    let gen = QueryGenerator::new(&catalog, Topology::Star(7), 31);
    let unordered = gen.instance(0);
    let ordered = gen.ordered_instance(0);
    assert!(ordered.order_by.is_some());

    let a = service
        .get_plan(&ServiceRequest::query(unordered).with_algorithm(Algorithm::Dp))
        .unwrap();
    let b = service
        .get_plan(&ServiceRequest::query(ordered).with_algorithm(Algorithm::Dp))
        .unwrap();
    assert_eq!(a.source, PlanSource::Fresh);
    assert_eq!(
        b.source,
        PlanSource::Fresh,
        "order marker must split the key"
    );
    assert_ne!(a.plan.fingerprint, b.plan.fingerprint);
    assert_eq!(service.cached_plans(), 2);
}

/// A filter on a different constant is a different query.
#[test]
fn filter_constants_split_cache_entries() {
    let catalog = Catalog::paper();
    let service = OptimizerService::new(catalog.clone(), small_config());
    let base = QueryGenerator::new(&catalog, Topology::Chain(4), 13).instance(0);

    let mut with_filter = base.clone();
    with_filter.graph.add_filter(sdp_query::Predicate::new(
        ColRef::new(0, base.graph.edges()[0].left.col),
        sdp_query::PredOp::Lt,
        100,
    ));
    let mut other_filter = base.clone();
    other_filter.graph.add_filter(sdp_query::Predicate::new(
        ColRef::new(0, base.graph.edges()[0].left.col),
        sdp_query::PredOp::Lt,
        200,
    ));

    for q in [&base, &with_filter, &other_filter] {
        let resp = service
            .get_plan(&ServiceRequest::query(q.clone()).with_algorithm(Algorithm::Dp))
            .unwrap();
        assert_eq!(resp.source, PlanSource::Fresh);
    }
    assert_eq!(service.cached_plans(), 3);
}
