//! Property tests for fingerprint canonicalization: permuting relation
//! declaration order, join-edge order or predicate order never changes
//! the fingerprint; structurally different queries (different
//! topology, constants or statistics) get different ones.

use proptest::prelude::*;
use sdp_catalog::Catalog;
use sdp_query::canon::permute_graph;
use sdp_query::{ColRef, JoinEdge, JoinGraph, Query, QueryGenerator, Topology};
use sdp_service::fingerprint_query;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..12).prop_map(Topology::Chain),
        (2usize..12).prop_map(Topology::Star),
        (3usize..12).prop_map(Topology::Cycle),
        (2usize..7).prop_map(Topology::Clique),
        (3usize..12).prop_map(Topology::star_chain),
    ]
}

/// Seeded Fisher–Yates permutation of `0..n` (splitmix-driven so the
/// property inputs stay shrinkable integers).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, next() as usize % (i + 1));
    }
    perm
}

/// Restate `q` isomorphically: permute node indices, rotate + flip
/// edges, reverse filter order, remap the order/group columns.
fn restate(q: &Query, perm: &[usize], rotate: usize, flip: bool) -> Query {
    let permuted = permute_graph(&q.graph, perm);
    let mut edges: Vec<JoinEdge> = permuted.edges().to_vec();
    let k = if edges.is_empty() {
        0
    } else {
        rotate % edges.len()
    };
    edges.rotate_left(k);
    if flip {
        // Swapping an edge's stored left/right endpoints is the SQL
        // author writing `b.y = a.x` instead of `a.x = b.y`.
        for e in edges.iter_mut() {
            *e = JoinEdge::new(e.right, e.left);
        }
    }
    let mut graph = JoinGraph::new(permuted.relations().to_vec(), edges);
    for f in permuted.filters().iter().rev() {
        graph.add_filter(*f);
    }
    let mut out = Query::new(graph);
    if let Some(o) = q.order_by {
        out = out.with_order_by(ColRef::new(perm[o.column.node], o.column.col));
    }
    if let Some(g) = q.group_by {
        out = out.with_group_by(ColRef::new(perm[g.column.node], g.column.col));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Invariance: however the same query is declared, the
    /// fingerprint is one value.
    #[test]
    fn fingerprint_is_declaration_order_independent(
        topo in arb_topology(),
        seed in 0u64..10_000,
        perm_seed in 0u64..10_000,
        rotate in 0usize..16,
        flip in any::<bool>(),
        mode in 0u8..3,
    ) {
        let catalog = Catalog::paper();
        let gen = QueryGenerator::new(&catalog, topo, seed).with_filter_probability(0.5);
        let q = match mode {
            0 => gen.instance(0),
            1 => gen.ordered_instance(0),
            _ => gen.grouped_instance(0),
        };
        let perm = permutation(q.graph.len(), perm_seed);
        let restated = restate(&q, &perm, rotate, flip);
        prop_assert_eq!(
            fingerprint_query(&catalog, &q),
            fingerprint_query(&catalog, &restated),
            "isomorphic restatement changed the fingerprint ({:?}, seed {})",
            topo, seed
        );
    }

    /// Discrimination: two different draws from the workload
    /// generator (different relations or join columns) fingerprint
    /// differently.
    #[test]
    fn distinct_instances_get_distinct_fingerprints(
        topo in arb_topology(),
        seed in 0u64..10_000,
    ) {
        let catalog = Catalog::paper();
        let gen = QueryGenerator::new(&catalog, topo, seed);
        let a = gen.instance(0);
        let b = gen.instance(1);
        // The generator can (rarely) redraw the same combination; only
        // structurally different queries must differ.
        prop_assume!(
            a.graph.relations() != b.graph.relations() || a.graph.edges() != b.graph.edges()
        );
        prop_assert_ne!(fingerprint_query(&catalog, &a), fingerprint_query(&catalog, &b));
    }

    /// Discrimination: changing one relation's statistics changes the
    /// fingerprint of every query touching it (the "selectivity" part
    /// of the key).
    #[test]
    fn changed_statistics_change_the_fingerprint(
        topo in arb_topology(),
        seed in 0u64..10_000,
        scale in 2.0f64..64.0,
    ) {
        let catalog = Catalog::paper();
        let q = QueryGenerator::new(&catalog, topo, seed).instance(0);

        let mut rescaled = catalog.clone();
        let mut analyzed: Vec<_> = rescaled
            .relations()
            .iter()
            .map(sdp_catalog::AnalyzedRelation::analyze)
            .collect();
        let victim = q.graph.relation(0);
        analyzed[victim.0 as usize].relation.tuples *= scale;
        rescaled.replace_stats(analyzed);

        prop_assert_ne!(
            fingerprint_query(&catalog, &q),
            fingerprint_query(&rescaled, &q),
            "statistics change invisible to the fingerprint"
        );
    }

    /// Discrimination: the same join graph requested unordered, with
    /// ORDER BY, and with GROUP BY (on the same column) yields three
    /// distinct fingerprints — the plan cache must never cross-serve.
    #[test]
    fn order_and_group_requests_never_collide(
        topo in arb_topology(),
        seed in 0u64..10_000,
    ) {
        let catalog = Catalog::paper();
        let gen = QueryGenerator::new(&catalog, topo, seed);
        let prints = [
            fingerprint_query(&catalog, &gen.instance(0)),
            fingerprint_query(&catalog, &gen.ordered_instance(0)),
            fingerprint_query(&catalog, &gen.grouped_instance(0)),
        ];
        prop_assert_ne!(prints[0], prints[1]);
        prop_assert_ne!(prints[0], prints[2]);
        prop_assert_ne!(prints[1], prints[2]);
    }

    /// Discrimination: chain vs star vs cycle of the same size over
    /// the same seed never collide.
    #[test]
    fn different_topologies_never_collide(
        n in 4usize..12,
        seed in 0u64..10_000,
    ) {
        let catalog = Catalog::paper();
        let shapes = [Topology::Chain(n), Topology::Star(n), Topology::Cycle(n)];
        let prints: Vec<_> = shapes
            .iter()
            .map(|&t| fingerprint_query(&catalog, &QueryGenerator::new(&catalog, t, seed).instance(0)))
            .collect();
        prop_assert_ne!(prints[0], prints[1]);
        prop_assert_ne!(prints[0], prints[2]);
        prop_assert_ne!(prints[1], prints[2]);
    }
}
