//! # sdp-obs — decision observability for the optimizer service
//!
//! PR 5 instrumented the *optimizer* (traces, counters, per-rung
//! latency histograms). This crate instruments the *decisions*: which
//! plans were served, why, and how wrong their cardinality estimates
//! turned out to be. Two surfaces, both deterministic and
//! thread-count-invariant:
//!
//! * [`flight`] — a bounded ring of per-request [`FlightRecord`]s
//!   projected from the existing `sdp-service` trace events by a
//!   [`TraceSink`](sdp_trace::TraceSink) adapter, persisted
//!   write-through into a CRC-framed `sdp-store` log so
//!   `sdp-service inspect --flight` can reconstruct the last N
//!   decisions after a crash — the post-mortem companion to the DLQ;
//! * [`qerror`] — the cardinality-accuracy observatory: per-node-kind
//!   and per-predicate Q-error histograms over the instrumented
//!   executor's (estimated, actual) row counts, a bounded
//!   worst-estimated-nodes table, and an append-only calibration log
//!   of `(fingerprint, node-path, est, actual)` records — the input
//!   execution-informed recosting (ROADMAP item 6) will consume.
//!
//! Determinism discipline matches the rest of the workspace: wall
//! clock lives only in non-canonical fields ([`FlightRecord::
//! wait_micros`], like [`sdp_trace::Event::wall_micros`]), canonical
//! renderings sort on content, and multiset digests fold
//! commutatively, so recorder contents and Q-error aggregates are
//! bit-identical at `SDP_THREADS=1` and `4`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod flight;
pub mod qerror;
mod wire;

pub use flight::{
    canonical_sort, fold_digest, multiset_digest, FlightLog, FlightRecord, FlightRecorder,
    DEFAULT_FLIGHT_CAPACITY, FLIGHT_EVENTS, FLIGHT_FILE, FLIGHT_LOG_KIND,
};
pub use qerror::{
    q_error, CalibrationLog, CalibrationRecord, Observation, QErrorObservatory, CALIBRATION_FILE,
    CALIBRATION_LOG_KIND,
};
