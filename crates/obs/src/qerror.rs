//! The Q-error observatory: cardinality-accuracy aggregation over the
//! instrumented executor's per-plan-node (estimated, actual) row
//! counts.
//!
//! The source paper judges heuristics by plan-quality deviation, and
//! plan quality lives or dies on cardinality estimates — the
//! observatory measures exactly where the cost model lies. Three
//! surfaces:
//!
//! * per-node-kind and per-predicate [`QErrorHistogram`]s (the same
//!   log2 bucket machinery as the latency histograms, over ratio
//!   ticks), exported into the `qerror` family of the Prometheus/JSON
//!   report;
//! * a bounded worst-estimated-nodes table with a total, content-based
//!   order, so top-K extraction is independent of observation order
//!   and thread schedule;
//! * an append-only calibration log of `(fingerprint, node-path, est,
//!   actual)` records — the input `recost.rs` will consume when
//!   execution-informed recosting (ROADMAP item 6) closes the loop.
//!
//! Everything here is a plain value with commutative merge, so
//! aggregates are bit-identical regardless of interleaving — enforced
//! by a proptest over random shard schedules.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use sdp_metrics::QErrorHistogram;
use sdp_store::{FramedLog, RecoveryStats, StoreError};

use crate::wire::{Reader, Writer};

/// Log-kind tag for calibration telemetry logs (plan segments are 1,
/// the DLQ 2, flight logs 3).
pub const CALIBRATION_LOG_KIND: u32 = 4;

/// File name of the calibration log inside its directory.
pub const CALIBRATION_FILE: &str = "calibration.log";

/// Calibration-record codec version.
const CALIBRATION_VERSION: u8 = 1;

/// Worst-node candidates retained by the observatory. Top-K queries
/// are answered from this bounded set; keeping it a few multiples of
/// any sensible K makes retention order-invariant (the set is the
/// exact top of the observation multiset under a total order).
const WORST_CAP: usize = 64;

/// The Q-error of an estimate: `max(est/actual, actual/est)` with both
/// sides floored at one row, so zero-row estimates and empty results
/// stay defined, finite, and symmetric (`q_error(a, b) == q_error(b,
/// a)`, and a perfect estimate scores exactly 1).
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let e = estimated.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// One per-plan-node cardinality observation from an instrumented
/// execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// WL fingerprint of the query the plan served.
    pub fingerprint: u128,
    /// Root-to-node path of child indices, rendered `"0.1.0"` (`""`
    /// for the root).
    pub path: String,
    /// Node kind label, e.g. `SeqScan` or `Join(Hash)`.
    pub kind: String,
    /// Human-readable predicate / join-edge / sort-class detail, empty
    /// when the node carries none.
    pub detail: String,
    /// Optimizer cardinality estimate for the node's output.
    pub estimated: f64,
    /// Rows the node actually produced.
    pub actual: u64,
}

impl Observation {
    /// The observation's Q-error.
    pub fn q_error(&self) -> f64 {
        q_error(self.estimated, self.actual as f64)
    }

    /// Project into the durable calibration-record form.
    pub fn calibration(&self) -> CalibrationRecord {
        CalibrationRecord {
            fingerprint: self.fingerprint,
            path: self.path.clone(),
            estimated: self.estimated,
            actual: self.actual,
        }
    }
}

/// Total, content-based order on observations: worst Q-error first,
/// then every identifying field — so sorting any permutation of the
/// same multiset yields identical bytes.
fn worst_order(a: &Observation, b: &Observation) -> std::cmp::Ordering {
    b.q_error()
        .total_cmp(&a.q_error())
        .then_with(|| a.kind.cmp(&b.kind))
        .then_with(|| a.detail.cmp(&b.detail))
        .then_with(|| a.path.cmp(&b.path))
        .then_with(|| a.fingerprint.cmp(&b.fingerprint))
        .then_with(|| a.estimated.total_cmp(&b.estimated))
        .then_with(|| a.actual.cmp(&b.actual))
}

/// The aggregation surface: histograms keyed by node kind and by
/// predicate, plus the bounded worst-nodes table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QErrorObservatory {
    by_kind: BTreeMap<String, QErrorHistogram>,
    by_predicate: BTreeMap<String, QErrorHistogram>,
    worst: Vec<Observation>,
    observed: u64,
}

impl QErrorObservatory {
    /// Fresh, empty observatory.
    pub fn new() -> QErrorObservatory {
        QErrorObservatory::default()
    }

    /// Fold in one observation.
    pub fn observe(&mut self, obs: &Observation) {
        let q = obs.q_error();
        self.by_kind.entry(obs.kind.clone()).or_default().record(q);
        if !obs.detail.is_empty() {
            self.by_predicate
                .entry(obs.detail.clone())
                .or_default()
                .record(q);
        }
        self.worst.push(obs.clone());
        self.worst.sort_by(worst_order);
        self.worst.truncate(WORST_CAP);
        self.observed += 1;
    }

    /// Fold in a batch of observations.
    pub fn observe_all<'a>(&mut self, all: impl IntoIterator<Item = &'a Observation>) {
        for obs in all {
            self.observe(obs);
        }
    }

    /// Merge another observatory into this one. Commutative and
    /// associative up to the bounded worst-table's cap, which retains
    /// the exact top of the combined multiset either way.
    pub fn merge(&mut self, other: &QErrorObservatory) {
        for (kind, h) in &other.by_kind {
            self.by_kind.entry(kind.clone()).or_default().merge(h);
        }
        for (pred, h) in &other.by_predicate {
            self.by_predicate.entry(pred.clone()).or_default().merge(h);
        }
        self.worst.extend(other.worst.iter().cloned());
        self.worst.sort_by(worst_order);
        self.worst.truncate(WORST_CAP);
        self.observed += other.observed;
    }

    /// Per-node-kind histograms, keyed by kind label.
    pub fn by_kind(&self) -> &BTreeMap<String, QErrorHistogram> {
        &self.by_kind
    }

    /// Per-predicate histograms, keyed by predicate display form.
    pub fn by_predicate(&self) -> &BTreeMap<String, QErrorHistogram> {
        &self.by_predicate
    }

    /// Total observations folded in.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The `k` worst-estimated nodes, worst first, under the total
    /// content order (`k` is clamped to the retained candidate set).
    pub fn worst(&self, k: usize) -> &[Observation] {
        &self.worst[..k.min(self.worst.len())]
    }

    /// Both histogram families flattened under prefixed series labels
    /// (`node:<kind>`, `pred:<display>`) — the shape
    /// `MetricsReport.qerror` carries into the Prometheus/JSON report.
    pub fn series(&self) -> BTreeMap<String, QErrorHistogram> {
        let mut out = BTreeMap::new();
        for (kind, h) in &self.by_kind {
            out.insert(format!("node:{kind}"), h.clone());
        }
        for (pred, h) in &self.by_predicate {
            out.insert(format!("pred:{pred}"), h.clone());
        }
        out
    }
}

/// One durable calibration record: the `(fingerprint, node-path, est,
/// actual)` quadruple future execution-informed recosting consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationRecord {
    /// WL fingerprint of the query.
    pub fingerprint: u128,
    /// Root-to-node child-index path, rendered `"0.1.0"`.
    pub path: String,
    /// Optimizer cardinality estimate.
    pub estimated: f64,
    /// Rows actually produced.
    pub actual: u64,
}

/// Encode one calibration record (version byte first, fixed-width
/// fields, estimate as IEEE-754 bits so the round trip is exact).
pub fn encode_calibration(record: &CalibrationRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(CALIBRATION_VERSION);
    w.put_u128(record.fingerprint);
    w.put_str(&record.path);
    w.put_f64(record.estimated);
    w.put_u64(record.actual);
    w.finish()
}

/// Decode one framed-log payload back into a calibration record.
pub fn decode_calibration(payload: &[u8]) -> Result<CalibrationRecord, StoreError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != CALIBRATION_VERSION {
        return Err(StoreError::Codec(format!(
            "calibration record version {version}, expected {CALIBRATION_VERSION}"
        )));
    }
    let fingerprint = r.u128()?;
    let path = r.str()?;
    let estimated = r.f64()?;
    let actual = r.u64()?;
    r.finish()?;
    Ok(CalibrationRecord {
        fingerprint,
        path,
        estimated,
        actual,
    })
}

/// An open append-only calibration telemetry log.
#[derive(Debug)]
pub struct CalibrationLog {
    log: FramedLog,
}

impl CalibrationLog {
    /// Path of the calibration log file inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(CALIBRATION_FILE)
    }

    /// Open (creating if absent) the calibration log in `dir`,
    /// recovering every intact record in write order.
    pub fn open(
        dir: &Path,
    ) -> Result<(CalibrationLog, Vec<CalibrationRecord>, RecoveryStats), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            source: e,
        })?;
        let (log, payloads, stats) = FramedLog::open(&Self::path_in(dir), CALIBRATION_LOG_KIND)?;
        let mut records = Vec::with_capacity(payloads.len());
        for payload in &payloads {
            records.push(decode_calibration(payload)?);
        }
        Ok((CalibrationLog { log }, records, stats))
    }

    /// Append one record, flushed before returning.
    pub fn append(&mut self, record: &CalibrationRecord) -> Result<(), StoreError> {
        self.log.append(&encode_calibration(record)).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(kind: &str, detail: &str, est: f64, actual: u64) -> Observation {
        Observation {
            fingerprint: 7,
            path: "0".to_string(),
            kind: kind.to_string(),
            detail: detail.to_string(),
            estimated: est,
            actual,
        }
    }

    #[test]
    fn q_error_edge_cases_are_defined_finite_symmetric() {
        // actual = 0, est = 0, both = 0: all floored to one row.
        for (e, a) in [(0.0, 0.0), (0.0, 10.0), (10.0, 0.0), (1e12, 0.0)] {
            let q = q_error(e, a);
            assert!(q.is_finite(), "q_error({e}, {a}) not finite");
            assert!(q >= 1.0, "q_error({e}, {a}) below 1");
            assert_eq!(q, q_error(a, e), "q_error({e}, {a}) asymmetric");
        }
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert_eq!(q_error(0.0, 1.0), 1.0);
        assert_eq!(q_error(0.001, 1.0), 1.0);
        assert_eq!(q_error(0.0, 10.0), 10.0);
        assert_eq!(q_error(50.0, 5.0), 10.0);
        assert_eq!(q_error(5.0, 50.0), 10.0);
    }

    #[test]
    fn observatory_aggregates_by_kind_and_predicate() {
        let mut o = QErrorObservatory::new();
        o.observe(&obs("SeqScan", "n0.c0 = 5", 100.0, 10));
        o.observe(&obs("SeqScan", "n1.c0 < 3", 10.0, 10));
        o.observe(&obs("Join(Hash)", "n0.c0 = n1.c0", 1000.0, 1));
        assert_eq!(o.observed(), 3);
        assert_eq!(o.by_kind()["SeqScan"].count, 2);
        assert_eq!(o.by_kind()["Join(Hash)"].count, 1);
        assert_eq!(o.by_predicate().len(), 3);
        let worst = o.worst(2);
        assert_eq!(worst[0].kind, "Join(Hash)");
        assert!((worst[0].q_error() - 1000.0).abs() < 1e-9);
        assert_eq!(worst[1].detail, "n0.c0 = 5");
        let series = o.series();
        assert!(series.contains_key("node:SeqScan"));
        assert!(series.contains_key("pred:n0.c0 = n1.c0"));
    }

    #[test]
    fn nodes_without_detail_skip_the_predicate_family() {
        let mut o = QErrorObservatory::new();
        o.observe(&obs("Sort", "", 10.0, 10));
        assert_eq!(o.by_kind()["Sort"].count, 1);
        assert!(o.by_predicate().is_empty());
    }

    #[test]
    fn merge_matches_sequential_observation() {
        let all: Vec<Observation> = (0..20)
            .map(|i| obs("SeqScan", "n0.c0 = 1", (i as f64 + 1.0) * 3.0, 7))
            .collect();
        let mut sequential = QErrorObservatory::new();
        sequential.observe_all(&all);
        let mut left = QErrorObservatory::new();
        left.observe_all(&all[..9]);
        let mut right = QErrorObservatory::new();
        right.observe_all(&all[9..]);
        let mut merged = right.clone();
        merged.merge(&left);
        assert_eq!(merged, sequential);
        let mut other_way = left.clone();
        other_way.merge(&right);
        assert_eq!(other_way, sequential);
    }

    #[test]
    fn calibration_codec_round_trips() {
        let record = CalibrationRecord {
            fingerprint: 0xdead_beef_dead_beef_dead_beef_dead_beef,
            path: "0.1.0".to_string(),
            estimated: 1234.5678,
            actual: 42,
        };
        let decoded = decode_calibration(&encode_calibration(&record)).unwrap();
        assert_eq!(decoded, record);
        assert!(decode_calibration(&[9, 9, 9]).is_err());
    }

    #[test]
    fn calibration_log_round_trips_through_reopen() {
        let dir = std::env::temp_dir().join(format!("sdp-obs-calib-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (mut log, recovered, _) = CalibrationLog::open(&dir).unwrap();
        assert!(recovered.is_empty());
        let records: Vec<CalibrationRecord> = (0..5)
            .map(|i| CalibrationRecord {
                fingerprint: i as u128,
                path: format!("0.{i}"),
                estimated: i as f64 * 1.5,
                actual: i * 10,
            })
            .collect();
        for r in &records {
            log.append(r).unwrap();
        }
        drop(log);
        let (_log, recovered, stats) = CalibrationLog::open(&dir).unwrap();
        assert_eq!(recovered, records);
        assert_eq!(stats.records, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
