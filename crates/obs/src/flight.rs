//! The flight recorder: a bounded ring of per-request decision
//! records, fed by the service's trace events and persisted
//! write-through into a CRC-framed `sdp-store` log.
//!
//! A [`FlightRecorder`] is a [`TraceSink`]: hang it off the service's
//! tee and it projects the decision-bearing events (`request`,
//! `served_stale`, `shed`, breaker transitions, …) into
//! [`FlightRecord`]s — fingerprint, enumerator, rung, degradation
//! count, cache outcome, plan structural digest, deadline attainment —
//! while everything wall-clock (queue-wait microseconds) is quarantined
//! in a non-canonical field, exactly like [`Event::wall_micros`].
//!
//! Determinism contract: the *canonical* surface — sorted
//! [`FlightRecord::canonical`] lines and the commutative
//! [`multiset_digest`] — is bit-identical at `SDP_THREADS=1` and `4`
//! for the same workload, because record contents come from the
//! deterministic optimizer (plans, rungs, digests, counters) and the
//! canonical ordering is content-based rather than arrival-based.
//! Arrival order is still kept (the `seq` counter) for timeline
//! reading, it just carries no weight in comparisons.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use sdp_store::{FramedLog, RecoveryStats, StoreError};
use sdp_trace::{Event, TraceSink};

use crate::wire::{Reader, Writer};

/// Log-kind tag for flight-recorder logs (plan segments are 1, the
/// DLQ is 2).
pub const FLIGHT_LOG_KIND: u32 = 3;

/// File name of the flight log inside its directory.
pub const FLIGHT_FILE: &str = "flight.log";

/// Flight-record codec version.
const FLIGHT_VERSION: u8 = 1;

/// Default ring capacity: the last N decisions a post-mortem can
/// reconstruct.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Event names the recorder projects into flight records. Everything
/// else (optimizer-internal `level` events and the like) passes
/// through untouched — the recorder is about *decisions*, not search.
pub const FLIGHT_EVENTS: &[&str] = &[
    "request",
    "served_stale",
    "cache_stale",
    "shed",
    "queue_wait",
    "breaker_open",
    "breaker_close",
    "breaker_probe",
    "breaker_reject",
    "dlq_enqueue",
    "request_error",
    "leader_retry",
    "warm_start",
    "store_write",
];

/// Field keys holding wall-clock measurements. Their values are
/// captured into [`FlightRecord::wait_micros`] instead of the
/// canonical tag list, so timing noise can never perturb the
/// deterministic surface.
const NON_CANONICAL_KEYS: &[&str] = &["wait_micros"];

/// The commutative digest fold shared with `sdp-service replay`:
/// order-independent by construction, so per-record digests can be
/// folded in arrival order on any thread schedule and still match.
pub fn fold_digest(acc: u64, digest: u64) -> u64 {
    acc.wrapping_add(digest.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15)
}

/// Order-independent digest of a whole record set: [`fold_digest`]
/// over every record's [`FlightRecord::digest`].
pub fn multiset_digest(records: &[FlightRecord]) -> u64 {
    records
        .iter()
        .fold(0, |acc, r| fold_digest(acc, r.digest()))
}

/// One recorded decision, projected from a trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecord {
    /// Arrival sequence number within this recorder — timeline
    /// ordering only, excluded from the canonical form (arrival order
    /// races across client threads).
    pub seq: u64,
    /// Decision kind: the originating event name (`request`, `shed`,
    /// `breaker_open`, …).
    pub kind: String,
    /// Canonical key/value tags in event-field order: fingerprint,
    /// outcome, rung, enumerator, plan digest, degradations, deadline
    /// attainment, shed reason — whatever the event carried.
    pub tags: Vec<(String, String)>,
    /// Wall-clock queue-wait in microseconds (zero when the event had
    /// none). Non-canonical, like [`Event::wall_micros`].
    pub wait_micros: u64,
}

impl FlightRecord {
    /// Project a trace event into a record under the given arrival
    /// sequence number.
    pub fn from_event(seq: u64, event: &Event) -> FlightRecord {
        let mut tags = Vec::with_capacity(event.fields.len());
        let mut wait_micros = 0;
        for (key, value) in &event.fields {
            if NON_CANONICAL_KEYS.contains(key) {
                wait_micros = value.as_u64().unwrap_or(0);
            } else {
                tags.push(((*key).to_string(), value.to_string()));
            }
        }
        FlightRecord {
            seq,
            kind: event.name.to_string(),
            tags,
            wait_micros,
        }
    }

    /// The first tag recorded under `key`, if any.
    pub fn tag(&self, key: &str) -> Option<&str> {
        self.tags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Deterministic one-line rendering, `kind key=value key=value` —
    /// excludes `seq` and `wait_micros`, so it is byte-identical
    /// across thread counts for the same workload.
    pub fn canonical(&self) -> String {
        let mut line = self.kind.clone();
        for (key, value) in &self.tags {
            line.push(' ');
            line.push_str(key);
            line.push('=');
            line.push_str(value);
        }
        line
    }

    /// FNV-1a over the canonical rendering: a per-record content
    /// digest for the [`multiset_digest`] fold and the codec's
    /// integrity check.
    pub fn digest(&self) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in self.canonical().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

/// Encode one record for the framed log. Layout: version, seq,
/// wait_micros, kind, tag count, (key, value) pairs, then the content
/// digest — re-checked on decode like the plan codec's structural
/// digest.
pub fn encode_flight(record: &FlightRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(FLIGHT_VERSION);
    w.put_u64(record.seq);
    w.put_u64(record.wait_micros);
    w.put_str(&record.kind);
    w.put_u16(u16::try_from(record.tags.len()).expect("over 64k tags"));
    for (key, value) in &record.tags {
        w.put_str(key);
        w.put_str(value);
    }
    w.put_u64(record.digest());
    w.finish()
}

/// Decode one framed-log payload back into a record, verifying the
/// embedded content digest.
pub fn decode_flight(payload: &[u8]) -> Result<FlightRecord, StoreError> {
    let mut r = Reader::new(payload);
    let version = r.u8()?;
    if version != FLIGHT_VERSION {
        return Err(StoreError::Codec(format!(
            "flight record version {version}, expected {FLIGHT_VERSION}"
        )));
    }
    let seq = r.u64()?;
    let wait_micros = r.u64()?;
    let kind = r.str()?;
    let ntags = r.u16()? as usize;
    let mut tags = Vec::with_capacity(ntags);
    for _ in 0..ntags {
        let key = r.str()?;
        let value = r.str()?;
        tags.push((key, value));
    }
    let digest = r.u64()?;
    r.finish()?;
    let record = FlightRecord {
        seq,
        kind,
        tags,
        wait_micros,
    };
    if record.digest() != digest {
        return Err(StoreError::Codec(format!(
            "flight record digest mismatch: stored {digest:016x}, recomputed {:016x}",
            record.digest()
        )));
    }
    Ok(record)
}

/// An open flight log: one CRC-framed file inside a directory, with
/// the usual torn-tail recovery.
#[derive(Debug)]
pub struct FlightLog {
    log: FramedLog,
}

impl FlightLog {
    /// Path of the flight log file inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(FLIGHT_FILE)
    }

    /// Open (creating if absent) the flight log in `dir`, recovering
    /// every intact record in write order and truncating any torn
    /// tail left by a crash mid-append.
    pub fn open(dir: &Path) -> Result<(FlightLog, Vec<FlightRecord>, RecoveryStats), StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::Io {
            path: dir.to_path_buf(),
            source: e,
        })?;
        let (log, payloads, stats) = FramedLog::open(&Self::path_in(dir), FLIGHT_LOG_KIND)?;
        let mut records = Vec::with_capacity(payloads.len());
        for payload in &payloads {
            records.push(decode_flight(payload)?);
        }
        Ok((FlightLog { log }, records, stats))
    }

    /// Append one record, flushed before returning.
    pub fn append(&mut self, record: &FlightRecord) -> Result<(), StoreError> {
        self.log.append(&encode_flight(record)).map(|_| ())
    }
}

#[derive(Debug)]
struct RecorderInner {
    ring: VecDeque<FlightRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    log: Option<FlightLog>,
    io_errors: u64,
}

/// The recorder itself: a [`TraceSink`] holding the bounded ring,
/// optionally writing every record through to a [`FlightLog`]. Hang
/// it off the service tracer's tee next to the stderr and chrome
/// sinks.
#[derive(Debug)]
pub struct FlightRecorder {
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// Memory-only recorder holding the last `capacity` decisions.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            inner: Mutex::new(RecorderInner {
                ring: VecDeque::new(),
                capacity: capacity.max(1),
                next_seq: 0,
                dropped: 0,
                log: None,
                io_errors: 0,
            }),
        }
    }

    /// Recorder that also appends every record to `log` before it can
    /// be evicted from the ring — what makes post-crash `inspect
    /// --flight` possible.
    pub fn with_log(capacity: usize, log: FlightLog) -> FlightRecorder {
        let recorder = FlightRecorder::new(capacity);
        recorder.inner.lock().unwrap().log = Some(log);
        recorder
    }

    /// Copy of the ring in arrival order.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Copy of the ring in canonical (content) order — the
    /// deterministic surface.
    pub fn canonical_records(&self) -> Vec<FlightRecord> {
        let mut records = self.snapshot();
        canonical_sort(&mut records);
        records
    }

    /// Canonical dump: sorted canonical lines, newline-separated, with
    /// a trailing newline when non-empty. Byte-identical across
    /// `SDP_THREADS` for the same workload.
    pub fn canonical_dump(&self) -> String {
        let mut out = String::new();
        for record in self.canonical_records() {
            out.push_str(&record.canonical());
            out.push('\n');
        }
        out
    }

    /// Order-independent digest of the ring's contents.
    pub fn digest(&self) -> u64 {
        multiset_digest(&self.snapshot())
    }

    /// Records currently in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted from the ring so far (they remain in the log).
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped
    }

    /// Write-through appends that failed with an I/O error. The
    /// recorder never fails the request path: persistence errors are
    /// counted and the ring keeps recording.
    pub fn io_errors(&self) -> u64 {
        self.inner.lock().unwrap().io_errors
    }
}

impl TraceSink for FlightRecorder {
    fn record(&self, event: Event) {
        if !FLIGHT_EVENTS.contains(&event.name) {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let record = FlightRecord::from_event(seq, &event);
        if let Some(log) = inner.log.as_mut() {
            if log.append(&record).is_err() {
                inner.io_errors += 1;
            }
        }
        if inner.ring.len() >= inner.capacity {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(record);
    }
}

/// Sort records into canonical (content) order: by canonical line,
/// then by wait-stripped residual fields so fully identical records
/// stay adjacent. This is the ordering `inspect --flight` prints and
/// the obs smoke compares across thread counts.
pub fn canonical_sort(records: &mut [FlightRecord]) {
    records.sort_by_key(|r| r.canonical());
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sdp-obs-flight-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn request_event(fp: &str, outcome: &str) -> Event {
        Event::new("request")
            .with("fingerprint", fp)
            .with("outcome", outcome)
            .with("rung", "SDP")
    }

    #[test]
    fn recorder_filters_and_rings() {
        let recorder = FlightRecorder::new(2);
        recorder.record(Event::new("level").with("n", 3u64)); // not a decision
        recorder.record(request_event("aa", "fresh"));
        recorder.record(request_event("bb", "fresh"));
        recorder.record(request_event("cc", "hit"));
        assert_eq!(recorder.len(), 2);
        assert_eq!(recorder.dropped(), 1);
        let records = recorder.snapshot();
        assert_eq!(records[0].tag("fingerprint"), Some("bb"));
        assert_eq!(records[1].tag("outcome"), Some("hit"));
        // Sequence numbers keep counting across evictions.
        assert_eq!(records[1].seq, 2);
    }

    #[test]
    fn canonical_form_excludes_seq_and_wait() {
        let a = FlightRecord::from_event(
            0,
            &Event::new("queue_wait")
                .with("seq", 7u64)
                .with("wait_micros", 1234u64),
        );
        let b = FlightRecord::from_event(
            9,
            &Event::new("queue_wait")
                .with("seq", 7u64)
                .with("wait_micros", 9999u64),
        );
        assert_eq!(a.canonical(), "queue_wait seq=7");
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.wait_micros, 1234);
    }

    #[test]
    fn multiset_digest_is_order_independent() {
        let records: Vec<FlightRecord> = [("aa", "fresh"), ("bb", "hit"), ("cc", "fresh")]
            .iter()
            .enumerate()
            .map(|(i, (fp, outcome))| {
                FlightRecord::from_event(i as u64, &request_event(fp, outcome))
            })
            .collect();
        let mut reversed = records.clone();
        reversed.reverse();
        assert_eq!(multiset_digest(&records), multiset_digest(&reversed));
    }

    #[test]
    fn codec_round_trips_and_checks_digest() {
        let record = FlightRecord::from_event(
            42,
            &Event::new("shed")
                .with("seq", 8u64)
                .with("reason", "queue-full"),
        );
        let payload = encode_flight(&record);
        let decoded = decode_flight(&payload).unwrap();
        assert_eq!(decoded, record);
        // Flip a tag byte: the embedded digest catches it.
        let mut torn = payload.clone();
        let n = torn.len();
        torn[n - 12] ^= 0x01;
        assert!(decode_flight(&torn).is_err());
    }

    #[test]
    fn log_persists_across_reopen_and_survives_torn_tail() {
        let dir = temp_dir("reopen");
        let (log, recovered, _) = FlightLog::open(&dir).unwrap();
        assert!(recovered.is_empty());
        let recorder = FlightRecorder::with_log(8, log);
        recorder.record(request_event("aa", "fresh"));
        recorder.record(request_event("bb", "hit"));
        let digest = recorder.digest();
        drop(recorder);

        // Simulate a crash mid-append: garbage tail bytes.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(FlightLog::path_in(&dir))
                .unwrap();
            f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        }

        let (_log, recovered, stats) = FlightLog::open(&dir).unwrap();
        assert_eq!(recovered.len(), 2);
        assert!(stats.truncated);
        assert_eq!(multiset_digest(&recovered), digest);
        assert_eq!(recovered[0].tag("fingerprint"), Some("aa"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
