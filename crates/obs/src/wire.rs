//! Minimal deterministic binary writer/reader for the flight and
//! calibration codecs — the same hand-rolled little-endian idiom as
//! `sdp-store`'s plan codec (whose writer is private to that crate),
//! kept deliberately tiny: fixed-width integers, IEEE-754 bit
//! patterns for floats, and `u16`-length-prefixed UTF-8 strings.

use sdp_store::StoreError;

pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        let len = u16::try_from(s.len()).expect("string over 64 KiB in obs record");
        self.put_u16(len);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::Codec(format!(
                "record truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn u128(&mut self) -> Result<u128, StoreError> {
        Ok(u128::from_le_bytes(self.take(16)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::Codec("record string is not UTF-8".to_string()))
    }

    pub(crate) fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.buf.len() {
            return Err(StoreError::Codec(format!(
                "{} trailing bytes after record",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}
