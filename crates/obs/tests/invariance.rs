//! Satellite: Q-error aggregation must be order- and
//! parallelism-invariant — any interleaving of the same observation
//! multiset (a shuffle, or a partition into per-thread shards merged
//! in any order) yields bit-identical histograms and an identical
//! worst-nodes table.

use proptest::prelude::*;
use sdp_obs::{Observation, QErrorObservatory};

fn arb_observation() -> impl Strategy<Value = Observation> {
    let kind = prop_oneof![
        Just("SeqScan"),
        Just("IndexScan"),
        Just("Sort"),
        Just("Join(Hash)"),
        Just("Join(NL)"),
    ];
    let detail = prop_oneof![
        Just(""),
        Just("n0.c0 = 5"),
        Just("n1.c2 < 9"),
        Just("n0.c0 = n1.c0"),
    ];
    (
        (0u64..64, kind),
        (detail, 0.0f64..1e9),
        (0u64..1_000_000, 0u8..4),
    )
        .prop_map(
            |((fingerprint, kind), (detail, estimated), (actual, depth))| Observation {
                fingerprint: u128::from(fingerprint),
                path: (0..depth)
                    .map(|i| i.to_string())
                    .collect::<Vec<_>>()
                    .join("."),
                kind: kind.to_string(),
                detail: detail.to_string(),
                estimated,
                actual,
            },
        )
}

proptest! {
    #[test]
    fn shuffled_ingestion_is_invariant(
        all in prop::collection::vec(arb_observation(), 1..80),
        seed in 0u64..=u64::MAX,
    ) {
        let mut sequential = QErrorObservatory::new();
        sequential.observe_all(&all);

        // Deterministic pseudo-shuffle driven by the proptest-chosen
        // seed: a Fisher–Yates over a splitmix64 stream.
        let mut perm: Vec<usize> = (0..all.len()).collect();
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in (1..perm.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut shuffled = QErrorObservatory::new();
        for &i in &perm {
            shuffled.observe(&all[i]);
        }
        prop_assert_eq!(&shuffled, &sequential);
    }

    #[test]
    fn sharded_merge_is_invariant(
        all in prop::collection::vec(arb_observation(), 1..60),
        nshards in 1usize..5,
        merge_reversed in any::<bool>(),
    ) {
        let mut sequential = QErrorObservatory::new();
        sequential.observe_all(&all);

        // Partition round-robin into "threads", aggregate each shard
        // independently, then merge in either direction — the model of
        // a parallel executor feeding per-thread observatories.
        let mut shards = vec![QErrorObservatory::new(); nshards];
        for (i, obs) in all.iter().enumerate() {
            shards[i % nshards].observe(obs);
        }
        let mut merged = QErrorObservatory::new();
        if merge_reversed {
            for shard in shards.iter().rev() {
                merged.merge(shard);
            }
        } else {
            for shard in &shards {
                merged.merge(shard);
            }
        }
        prop_assert_eq!(&merged, &sequential);
    }
}
