//! The resource governor: per-request deadlines, memory budgets and
//! the graceful-degradation ladder **DP → SDP → IDP(4) → GOO**.
//!
//! The paper's enumerators trade plan quality for robustness — SDP
//! exists because exhaustive DP blows its time/space budget on
//! 15–25-relation graphs. The governor makes that trade-off an
//! explicit, observable *mechanism* instead of an operator guess: a
//! request carries a deadline and a memory budget, the optimizer polls
//! them cooperatively (at DP level barriers and through the worker
//! [`BudgetProbe`](crate::BudgetProbe)), and when a strategy exhausts
//! its slice of the budget the run **escalates down the ladder** to
//! the next-cheaper strategy instead of failing. Memo state built by
//! the failed rung is reused where the cheaper strategy permits (base
//! groups always; two-relation groups when they fit the remaining
//! memory), and the returned [`GovernedPlan`] records which rung
//! produced the plan and why each degradation happened — deadline,
//! memory, or caller cancellation.
//!
//! # Ladder semantics
//!
//! Each rung gets a *soft deadline* that is a fraction of the
//! request's total deadline (measured from the start of the run, not
//! per rung): DP may spend 40%, SDP up to 65%, IDP(4) up to 85%, and
//! GOO the full 100%. A rung that trips its slice leaves the rest of
//! the wall-clock to the cheaper strategies below it, which is what
//! makes "a GOO-or-better plan within the deadline" achievable: GOO
//! costs O(n) joins and virtually always fits the final slice.
//! Memory budgets are absolute (the ladder's value is that cheaper
//! rungs *retain fewer JCRs*, not that they get more memory).
//!
//! Caller cancellation is special: it jumps straight to GOO (the
//! caller wants out *now*, so the governor produces the cheapest
//! best-effort plan rather than walking the remaining rungs), and is
//! acknowledged on the memory model so the final rung can run.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sdp_query::RelSet;

use crate::budget::{Budget, OptError};
use crate::context::EnumContext;
use crate::idp::IdpConfig;
use crate::optimizer::{Algorithm, OptimizedPlan};
use crate::sdp::SdpConfig;

/// One rung of the degradation ladder, ordered from the most thorough
/// strategy to the cheapest (`Rung::Dp < Rung::Goo`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rung {
    /// Exhaustive dynamic programming.
    Dp,
    /// Skyline DP (the paper's robust default).
    Sdp,
    /// Iterative DP with block size 4.
    Idp,
    /// Greedy operator ordering — the floor; always cheap enough.
    Goo,
}

/// The full ladder, top to bottom.
pub const LADDER: [Rung; 4] = [Rung::Dp, Rung::Sdp, Rung::Idp, Rung::Goo];

/// The floor under the cheapest rung: below this much remaining
/// deadline not even GOO — O(n) greedy joins on an already-bound
/// query — can be expected to produce a plan, so admission control
/// sheds the request instead of burning a worker on a run that can
/// only end in [`OptError::TimedOut`].
pub const CHEAPEST_RUNG_FLOOR: Duration = Duration::from_micros(100);

impl Rung {
    /// Display label, matching [`Algorithm::label`] for the rung's
    /// canonical configuration.
    pub fn label(&self) -> &'static str {
        match self {
            Rung::Dp => "DP",
            Rung::Sdp => "SDP",
            Rung::Idp => "IDP(4)",
            Rung::Goo => "GOO",
        }
    }

    /// The ladder rung a requested algorithm starts on, or `None` for
    /// off-ladder strategies (II/SA), which run single-shot under the
    /// governor's full budget.
    pub fn for_algorithm(algorithm: Algorithm) -> Option<Rung> {
        match algorithm {
            Algorithm::Dp => Some(Rung::Dp),
            Algorithm::Sdp(_) => Some(Rung::Sdp),
            Algorithm::Idp { .. } | Algorithm::IdpStandard { .. } => Some(Rung::Idp),
            Algorithm::Goo => Some(Rung::Goo),
            Algorithm::IterativeImprovement(_) | Algorithm::SimulatedAnnealing(_) => None,
        }
    }

    /// The canonical algorithm the governor runs when it *descends to*
    /// this rung (descents always use the paper-default configuration;
    /// the originally requested configuration only applies to the
    /// first attempt).
    pub fn algorithm(&self) -> Algorithm {
        match self {
            Rung::Dp => Algorithm::Dp,
            Rung::Sdp => Algorithm::Sdp(SdpConfig::paper()),
            Rung::Idp => Algorithm::Idp {
                k: IdpConfig::paper(4).k,
            },
            Rung::Goo => Algorithm::Goo,
        }
    }

    /// Stable numeric tag for the persisted plan-store format. Never
    /// renumber; append for new rungs.
    pub fn stable_tag(&self) -> u8 {
        match self {
            Rung::Dp => 1,
            Rung::Sdp => 2,
            Rung::Idp => 3,
            Rung::Goo => 4,
        }
    }

    /// Inverse of [`Rung::stable_tag`]; `None` for unknown tags.
    pub fn from_stable_tag(tag: u8) -> Option<Rung> {
        match tag {
            1 => Some(Rung::Dp),
            2 => Some(Rung::Sdp),
            3 => Some(Rung::Idp),
            4 => Some(Rung::Goo),
            _ => None,
        }
    }

    /// The next-cheaper rung, or `None` at the bottom.
    pub fn next_down(&self) -> Option<Rung> {
        match self {
            Rung::Dp => Some(Rung::Sdp),
            Rung::Sdp => Some(Rung::Idp),
            Rung::Idp => Some(Rung::Goo),
            Rung::Goo => None,
        }
    }

    /// Fraction of the request's total deadline this rung may consume
    /// (cumulative from the start of the run): trips leave wall-clock
    /// headroom for every cheaper rung below.
    pub fn deadline_fraction(&self) -> f64 {
        match self {
            Rung::Dp => 0.40,
            Rung::Sdp => 0.65,
            Rung::Idp => 0.85,
            Rung::Goo => 1.0,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Why the governor abandoned a rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DegradeReason {
    /// The rung's slice of the request deadline expired.
    Deadline,
    /// The memory-model budget tripped.
    Memory,
    /// The caller cancelled through its [`CancelHandle`].
    Cancelled,
}

impl DegradeReason {
    /// The degradation reason a recoverable optimizer error maps to;
    /// `None` for errors the ladder cannot recover from (empty or
    /// disconnected queries).
    pub fn for_error(error: &OptError) -> Option<DegradeReason> {
        match error {
            OptError::TimedOut { .. } => Some(DegradeReason::Deadline),
            OptError::MemoryExhausted { .. } => Some(DegradeReason::Memory),
            OptError::Cancelled => Some(DegradeReason::Cancelled),
            OptError::DisconnectedJoinGraph | OptError::EmptyQuery => None,
        }
    }

    /// Stable numeric tag for the persisted dead-letter format. Never
    /// renumber; append for new reasons.
    pub fn stable_tag(&self) -> u8 {
        match self {
            DegradeReason::Deadline => 1,
            DegradeReason::Memory => 2,
            DegradeReason::Cancelled => 3,
        }
    }

    /// Inverse of [`DegradeReason::stable_tag`]; `None` for unknown
    /// tags.
    pub fn from_stable_tag(tag: u8) -> Option<DegradeReason> {
        match tag {
            1 => Some(DegradeReason::Deadline),
            2 => Some(DegradeReason::Memory),
            3 => Some(DegradeReason::Cancelled),
            _ => None,
        }
    }
}

impl fmt::Display for DegradeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeReason::Deadline => "deadline",
            DegradeReason::Memory => "memory",
            DegradeReason::Cancelled => "cancelled",
        })
    }
}

/// One recorded descent of the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeEvent {
    /// The rung that was abandoned.
    pub from: Rung,
    /// The rung the run descended to.
    pub to: Rung,
    /// Why the descent happened.
    pub reason: DegradeReason,
    /// Wall-clock elapsed since the start of the run when the descent
    /// was taken.
    pub elapsed: Duration,
}

/// A caller-held handle that cancels an in-flight governed run.
/// Cloning shares the underlying flag.
#[derive(Debug, Clone, Default)]
pub struct CancelHandle {
    flag: Arc<AtomicBool>,
}

impl CancelHandle {
    /// Request cancellation. The optimizer observes the flag at its
    /// next cooperative budget poll; the governor then produces a
    /// best-effort GOO plan rather than failing outright.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    pub(crate) fn flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.flag)
    }
}

/// Per-request resource policy: deadline, memory budget, cancellation
/// and (in test builds) an injected fault schedule.
#[derive(Debug, Clone, Default)]
pub struct Governor {
    deadline: Option<Duration>,
    memory_bytes: Option<u64>,
    cancel: CancelHandle,
    #[cfg(feature = "testkit")]
    faults: Option<sdp_testkit::FaultPlan>,
}

impl Governor {
    /// A governor with no deadline and the default memory budget.
    pub fn new() -> Self {
        Governor::default()
    }

    /// Set the request's total deadline. Rungs receive cumulative
    /// slices of it (see [`Rung::deadline_fraction`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the memory-model budget in bytes (default: the paper's
    /// 1 GB, [`Budget::default`]).
    pub fn with_memory_budget(mut self, bytes: u64) -> Self {
        self.memory_bytes = Some(bytes);
        self
    }

    /// Install a deterministic fault schedule (test builds only); the
    /// optimizer consults it at every level barrier.
    #[cfg(feature = "testkit")]
    pub fn with_fault_plan(mut self, faults: sdp_testkit::FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The injected fault schedule, when one is installed.
    #[cfg(feature = "testkit")]
    pub fn fault_plan(&self) -> Option<sdp_testkit::FaultPlan> {
        self.faults.clone()
    }

    /// The request's total deadline, when one is set.
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The memory budget in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
            .unwrap_or_else(|| Budget::default().max_model_bytes)
    }

    /// A handle the caller can keep to cancel the run mid-flight.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    pub(crate) fn cancel_flag(&self) -> Arc<AtomicBool> {
        self.cancel.flag()
    }

    /// The [`Budget`] in force while the given rung runs: the full
    /// memory budget plus the rung's cumulative slice of the deadline.
    pub fn rung_budget(&self, rung: Rung) -> Budget {
        Budget {
            max_model_bytes: self.memory_bytes(),
            max_elapsed: match self.deadline {
                Some(d) => d.mul_f64(rung.deadline_fraction()),
                None => Budget::unlimited().max_elapsed,
            },
        }
    }

    /// The [`Budget`] for a single-shot (off-ladder) run: full memory
    /// budget, full deadline.
    pub fn full_budget(&self) -> Budget {
        self.rung_budget(Rung::Goo)
    }
}

/// The result of a governed optimization: the plan, the rung that
/// produced it, and every descent taken on the way there.
#[derive(Debug, Clone)]
pub struct GovernedPlan {
    /// The chosen plan with its run statistics (cumulative across all
    /// rungs attempted).
    pub plan: OptimizedPlan,
    /// The strategy originally requested.
    pub requested: Algorithm,
    /// The strategy that actually produced the plan (equals
    /// `requested` when nothing degraded).
    pub produced: Algorithm,
    /// The ladder rung that produced the plan; `None` for off-ladder
    /// strategies (II/SA), which never degrade.
    pub rung: Option<Rung>,
    /// Every descent taken, in order.
    pub degradations: Vec<DegradeEvent>,
}

/// A governed run that failed even after walking the ladder, with the
/// descent history that led there — the raw material for a
/// dead-letter record. [`Optimizer::optimize_governed`] flattens this
/// to its [`OptError`]; callers that persist failures use
/// [`Optimizer::optimize_governed_full`] to keep the history.
///
/// [`Optimizer::optimize_governed`]: crate::Optimizer::optimize_governed
/// [`Optimizer::optimize_governed_full`]: crate::Optimizer::optimize_governed_full
#[derive(Debug, Clone, PartialEq)]
pub struct GovernedFailure {
    /// The terminal error (from the bottom rung reached, or an
    /// unrecoverable error no rung helps with).
    pub error: OptError,
    /// Every descent taken before the run gave up, in order.
    pub degradations: Vec<DegradeEvent>,
}

impl fmt::Display for GovernedFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after {} degradation(s)",
            self.error,
            self.degradations.len()
        )
    }
}

impl GovernedPlan {
    /// Whether the plan came from a cheaper rung than requested.
    pub fn degraded(&self) -> bool {
        !self.degradations.is_empty()
    }

    /// The reason for the final descent, when any was taken.
    pub fn reason(&self) -> Option<DegradeReason> {
        self.degradations.last().map(|d| d.reason)
    }

    /// Display label of the strategy that produced the plan.
    pub fn rung_label(&self) -> String {
        self.produced.label()
    }
}

/// Prepare the memo for a descent: keep what the next rung can afford
/// and drop the rest. Base-relation groups are always retained (every
/// strategy needs them and re-deriving access paths is pure waste);
/// larger JCRs from the abandoned rung are dropped — two-relation
/// groups first survive, but go too when the memo still exceeds the
/// next rung's memory budget. The retained groups are *refined*, not
/// trusted blindly: the next rung re-offers its own plans into them,
/// and the memo's dominance rule makes identical re-offers no-ops, so
/// reuse never changes which plan a rung would have found from
/// scratch.
pub fn prepare_handoff(ctx: &mut EnumContext<'_>, next_budget: Budget) {
    let compound: Vec<RelSet> = ctx.memo.sets().filter(|s| s.len() > 2).collect();
    for set in compound {
        ctx.prune_group(set);
    }
    if ctx.memory.used_bytes() > next_budget.max_model_bytes {
        let pairs: Vec<RelSet> = ctx.memo.sets().filter(|s| s.len() == 2).collect();
        for set in pairs {
            ctx.prune_group(set);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn ladder_descends_dp_to_goo() {
        assert_eq!(LADDER.to_vec(), {
            let mut walk = vec![Rung::Dp];
            while let Some(next) = walk.last().unwrap().next_down() {
                walk.push(next);
            }
            walk
        });
        assert!(Rung::Dp < Rung::Sdp && Rung::Sdp < Rung::Idp && Rung::Idp < Rung::Goo);
        assert_eq!(Rung::Goo.next_down(), None);
    }

    #[test]
    fn rung_labels_match_their_algorithms() {
        for rung in LADDER {
            assert_eq!(rung.label(), rung.algorithm().label(), "{rung:?}");
            assert_eq!(Rung::for_algorithm(rung.algorithm()), Some(rung));
        }
        assert_eq!(Rung::for_algorithm(Algorithm::ii()), None);
        assert_eq!(Rung::for_algorithm(Algorithm::sa()), None);
        assert_eq!(
            Rung::for_algorithm(Algorithm::IdpStandard { k: 7 }),
            Some(Rung::Idp)
        );
    }

    #[test]
    fn deadline_fractions_are_cumulative_and_end_at_one() {
        let fractions: Vec<f64> = LADDER.iter().map(|r| r.deadline_fraction()).collect();
        assert!(fractions.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(fractions.last(), Some(&1.0));
    }

    #[test]
    fn rung_budgets_slice_the_deadline() {
        let gov = Governor::new()
            .with_deadline(Duration::from_secs(10))
            .with_memory_budget(1 << 20);
        let dp = gov.rung_budget(Rung::Dp);
        let goo = gov.rung_budget(Rung::Goo);
        assert_eq!(dp.max_elapsed, Duration::from_secs(4));
        assert_eq!(goo.max_elapsed, Duration::from_secs(10));
        assert_eq!(dp.max_model_bytes, 1 << 20);
        assert_eq!(goo.max_model_bytes, 1 << 20, "memory is absolute");
        assert_eq!(gov.full_budget().max_elapsed, Duration::from_secs(10));
    }

    #[test]
    fn no_deadline_means_effectively_unlimited_time() {
        let gov = Governor::new();
        assert_eq!(
            gov.rung_budget(Rung::Dp).max_elapsed,
            Budget::unlimited().max_elapsed
        );
        assert_eq!(gov.memory_bytes(), Budget::default().max_model_bytes);
    }

    #[test]
    fn cancel_handle_shares_the_flag() {
        let gov = Governor::new();
        let handle = gov.cancel_handle();
        assert!(!handle.is_cancelled());
        handle.cancel();
        assert!(gov.cancel_handle().is_cancelled());
        assert!(gov.cancel_flag().load(Ordering::Relaxed));
    }

    #[test]
    fn degrade_reasons_map_from_errors() {
        assert_eq!(
            DegradeReason::for_error(&OptError::TimedOut {
                elapsed: Duration::ZERO,
                limit: Duration::ZERO,
            }),
            Some(DegradeReason::Deadline)
        );
        assert_eq!(
            DegradeReason::for_error(&OptError::MemoryExhausted {
                used_bytes: 1,
                budget_bytes: 0,
            }),
            Some(DegradeReason::Memory)
        );
        assert_eq!(
            DegradeReason::for_error(&OptError::Cancelled),
            Some(DegradeReason::Cancelled)
        );
        assert_eq!(DegradeReason::for_error(&OptError::EmptyQuery), None);
        assert_eq!(
            DegradeReason::for_error(&OptError::DisconnectedJoinGraph),
            None
        );
    }

    #[test]
    fn handoff_keeps_bases_drops_compounds() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        for i in 0..3 {
            ctx.ensure_base_group(i);
        }
        ctx.join_pair(RelSet::single(0), RelSet::single(1));
        ctx.join_pair(RelSet::from_indices([0, 1]), RelSet::single(2));
        assert_eq!(ctx.memo.len(), 5);

        // A roomy next budget: pairs survive, the triple does not.
        prepare_handoff(&mut ctx, Budget::unlimited());
        assert_eq!(ctx.memo.len(), 4);
        assert!(ctx.memo.get(RelSet::from_indices([0, 1])).is_some());
        assert!(ctx.memo.get(RelSet::from_indices([0, 1, 2])).is_none());

        // A zero budget: pairs go too; bases are always retained.
        prepare_handoff(&mut ctx, Budget::with_memory(0));
        assert_eq!(ctx.memo.len(), 3);
        for i in 0..3 {
            assert!(ctx.memo.get(RelSet::single(i)).is_some());
        }
    }

    #[test]
    fn display_labels_are_stable() {
        assert_eq!(Rung::Idp.to_string(), "IDP(4)");
        assert_eq!(DegradeReason::Memory.to_string(), "memory");
        assert_eq!(DegradeReason::Deadline.to_string(), "deadline");
        assert_eq!(DegradeReason::Cancelled.to_string(), "cancelled");
    }
}
