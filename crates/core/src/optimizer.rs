//! Public optimizer entry point.
//!
//! ```
//! use sdp_catalog::Catalog;
//! use sdp_core::{Algorithm, Optimizer};
//! use sdp_query::{QueryGenerator, Topology};
//!
//! let catalog = Catalog::paper();
//! let query = QueryGenerator::new(&catalog, Topology::star_chain(8), 42).instance(0);
//! let optimizer = Optimizer::new(&catalog);
//! let plan = optimizer.optimize(&query, Algorithm::Sdp(Default::default())).unwrap();
//! assert!(plan.cost > 0.0);
//! ```

use std::sync::Arc;

use sdp_catalog::Catalog;
use sdp_cost::{CostModel, CostParams};
use sdp_query::{infer_transitive_edges, Query};

use crate::budget::{Budget, OptError};
use crate::context::{default_parallelism, EnumContext, LevelStats, RunStats};
use crate::dp::optimize_complete;
use crate::enumerate::EnumeratorKind;
use crate::goo::optimize_goo;
use crate::governor::{
    prepare_handoff, DegradeEvent, DegradeReason, GovernedFailure, GovernedPlan, Governor, Rung,
};
use crate::idp::{optimize_idp, IdpConfig};
use crate::plan::PlanNode;
use crate::random::{optimize_ii, optimize_sa, RandomConfig};
use crate::sdp::{optimize_sdp, SdpConfig};

/// Which enumeration strategy to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Exhaustive bushy dynamic programming (PostgreSQL's baseline).
    Dp,
    /// Iterative DP, the `IDP1-balanced-bestRow` variant, with block
    /// parameter `k` (paper: 4 or 7).
    Idp {
        /// DP levels per iteration.
        k: usize,
    },
    /// Kossmann's standard IDP1 (no ballooning) — an ablation.
    IdpStandard {
        /// DP levels per iteration.
        k: usize,
    },
    /// Skyline Dynamic Programming (the paper's contribution).
    Sdp(SdpConfig),
    /// Greedy operator ordering baseline.
    Goo,
    /// Iterative Improvement (randomized restarts + hill-climbing).
    IterativeImprovement(RandomConfig),
    /// Simulated Annealing.
    SimulatedAnnealing(RandomConfig),
}

impl Algorithm {
    /// Display label matching the paper's table rows.
    pub fn label(&self) -> String {
        match self {
            Algorithm::Dp => "DP".into(),
            Algorithm::Idp { k } => format!("IDP({k})"),
            Algorithm::IdpStandard { k } => format!("IDP-std({k})"),
            Algorithm::Sdp(cfg) if *cfg == SdpConfig::paper() => "SDP".into(),
            Algorithm::Sdp(cfg) => format!("SDP[{:?}/{:?}]", cfg.partitioning, cfg.skyline),
            Algorithm::Goo => "GOO".into(),
            Algorithm::IterativeImprovement(_) => "II".into(),
            Algorithm::SimulatedAnnealing(_) => "SA".into(),
        }
    }

    /// Iterative Improvement with default tuning.
    pub fn ii() -> Self {
        Algorithm::IterativeImprovement(RandomConfig::default())
    }

    /// Simulated Annealing with default tuning.
    pub fn sa() -> Self {
        Algorithm::SimulatedAnnealing(RandomConfig::default())
    }
}

/// The result of one optimization: the chosen plan and the run's
/// overhead statistics.
#[derive(Debug, Clone)]
pub struct OptimizedPlan {
    /// Root of the chosen physical plan.
    pub root: Arc<PlanNode>,
    /// Estimated cost of the plan (the paper's plan-quality
    /// currency).
    pub cost: f64,
    /// Estimated output rows.
    pub rows: f64,
    /// Overhead counters (plans costed, peak memory model bytes,
    /// elapsed time, …).
    pub stats: RunStats,
    /// Per-level enumeration profile, in barrier order. Governed
    /// descents accumulate rows across rungs; each row's `phase`
    /// names the strategy that ran it. Feeds `ExplainAnalyze`.
    pub profile: Vec<LevelStats>,
}

/// Optimizer façade: catalog + cost parameters + budget + rewriter
/// switch.
#[derive(Debug, Clone)]
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    params: CostParams,
    budget: Budget,
    infer_closure: bool,
    parallelism: usize,
    enumerator: EnumeratorKind,
    #[cfg(feature = "trace")]
    tracer: sdp_trace::Tracer,
}

impl<'a> Optimizer<'a> {
    /// Optimizer with PostgreSQL-default cost constants, the paper's
    /// 1 GB memory budget, the transitive-closure rewriter enabled
    /// (as in PostgreSQL), and enumeration parallelism from
    /// [`default_parallelism`] (`SDP_THREADS` env override, else the
    /// machine's available parallelism).
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer {
            catalog,
            params: CostParams::default(),
            budget: Budget::default(),
            infer_closure: true,
            parallelism: default_parallelism(),
            enumerator: EnumeratorKind::from_env(),
            #[cfg(feature = "trace")]
            tracer: sdp_trace::Tracer::disabled(),
        }
    }

    /// Override the cost constants.
    pub fn with_params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Override the resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Enable or disable the shared-join-column transitive-closure
    /// rewrite (Section 2.1.4).
    pub fn with_closure_inference(mut self, on: bool) -> Self {
        self.infer_closure = on;
        self
    }

    /// Set the number of worker threads for level-wise enumeration
    /// and skyline pruning (clamped to at least 1). The chosen plan
    /// is bit-identical at every thread count; parallelism only
    /// changes wall-clock time.
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads.max(1);
        self
    }

    /// Select the candidate-pair enumeration strategy (`LevelScan`,
    /// `Dpccp` or `DpConv`; see [`crate::enumerate`]). Defaults to
    /// the `SDP_ENUMERATOR` env override, else `LevelScan`.
    /// `LevelScan` and `Dpccp` choose bit-identical plans on
    /// exhaustive rungs; `DpConv` trades plan quality for a
    /// super-polynomially smaller costing effort.
    pub fn with_enumerator(mut self, kind: EnumeratorKind) -> Self {
        self.enumerator = kind;
        self
    }

    /// Install a structured-trace handle; every run started from this
    /// optimizer emits its level spans, skyline partition spans and
    /// governor transitions into it. Canonical event sequences are
    /// deterministic across thread counts (see `sdp-trace`).
    #[cfg(feature = "trace")]
    pub fn with_tracer(mut self, tracer: sdp_trace::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The budget in force.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// The enumeration parallelism in force.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// The pair-enumeration strategy in force.
    pub fn enumerator(&self) -> EnumeratorKind {
        self.enumerator
    }

    /// Optimize `query` with the chosen algorithm.
    ///
    /// The query is first passed through the rewriter (transitive
    /// closure of shared join columns), exactly as PostgreSQL's
    /// rewriter would before planning.
    pub fn optimize(&self, query: &Query, algorithm: Algorithm) -> Result<OptimizedPlan, OptError> {
        let rewritten = self.rewrite(query);
        let model = CostModel::new(self.catalog, self.params);
        let mut ctx = EnumContext::new(&rewritten, &model, self.budget);
        ctx.set_parallelism(self.parallelism);
        ctx.set_enumerator(self.enumerator);
        #[cfg(feature = "trace")]
        ctx.set_tracer(self.tracer.clone());
        let root = dispatch(&mut ctx, algorithm)?;
        let stats = ctx.stats();
        Ok(OptimizedPlan {
            cost: root.cost,
            rows: root.rows,
            root,
            stats,
            profile: ctx.profile().to_vec(),
        })
    }

    /// Optimize `query` under a [`Governor`]: on budget exhaustion
    /// the run descends the degradation ladder **DP → SDP → IDP(4) →
    /// GOO** instead of failing, reusing retained memo state between
    /// rungs (see [`prepare_handoff`]). Caller cancellation jumps
    /// straight to GOO for a best-effort plan. The returned
    /// [`GovernedPlan`] records the producing rung and every descent
    /// taken.
    ///
    /// Errors surface only when the query itself is invalid (empty or
    /// disconnected), when the bottom rung still cannot fit the
    /// budget, or when cancellation arrives at the bottom rung.
    pub fn optimize_governed(
        &self,
        query: &Query,
        algorithm: Algorithm,
        governor: &Governor,
    ) -> Result<GovernedPlan, OptError> {
        self.optimize_governed_full(query, algorithm, governor)
            .map_err(|failure| failure.error)
    }

    /// Like [`Optimizer::optimize_governed`], but a failed run returns
    /// a [`GovernedFailure`] carrying the descent history alongside
    /// the terminal error — what the service layer serializes into a
    /// dead-letter record.
    pub fn optimize_governed_full(
        &self,
        query: &Query,
        algorithm: Algorithm,
        governor: &Governor,
    ) -> Result<GovernedPlan, GovernedFailure> {
        let rewritten = self.rewrite(query);
        let model = CostModel::new(self.catalog, self.params);

        let Some(mut rung) = Rung::for_algorithm(algorithm) else {
            // Off-ladder strategies (II/SA) run single-shot under the
            // governor's full budget: their anytime nature makes a
            // ladder descent meaningless.
            let mut ctx = EnumContext::new(&rewritten, &model, governor.full_budget());
            ctx.set_parallelism(self.parallelism);
            ctx.set_enumerator(self.enumerator);
            #[cfg(feature = "trace")]
            ctx.set_tracer(self.tracer.clone());
            ctx.memory.set_cancel_flag(governor.cancel_flag());
            let root = dispatch(&mut ctx, algorithm).map_err(|error| GovernedFailure {
                error,
                degradations: Vec::new(),
            })?;
            let stats = ctx.stats();
            return Ok(GovernedPlan {
                plan: OptimizedPlan {
                    cost: root.cost,
                    rows: root.rows,
                    root,
                    stats,
                    profile: ctx.profile().to_vec(),
                },
                requested: algorithm,
                produced: algorithm,
                rung: None,
                degradations: Vec::new(),
            });
        };

        let mut ctx = EnumContext::new(&rewritten, &model, governor.rung_budget(rung));
        ctx.set_parallelism(self.parallelism);
        ctx.set_enumerator(self.enumerator);
        #[cfg(feature = "trace")]
        ctx.set_tracer(self.tracer.clone());
        ctx.memory.set_cancel_flag(governor.cancel_flag());
        #[cfg(feature = "testkit")]
        if let Some(faults) = governor.fault_plan() {
            ctx.memory.set_fault_plan(faults);
        }

        // The first attempt honours the requested configuration
        // verbatim (e.g. a pinned IDP(7)); descents use each rung's
        // canonical paper configuration.
        let mut attempt = algorithm;
        let mut degradations: Vec<DegradeEvent> = Vec::new();
        loop {
            #[cfg(feature = "trace")]
            ctx.tracer().emit_with(|| {
                sdp_trace::Event::new("rung_start")
                    .with("rung", rung.label())
                    .with("algorithm", attempt.label())
                    .with("budget_bytes", governor.rung_budget(rung).max_model_bytes)
            });
            let error = match dispatch(&mut ctx, attempt) {
                Ok(root) => {
                    let stats = ctx.stats();
                    #[cfg(feature = "trace")]
                    ctx.tracer().emit_with(|| {
                        sdp_trace::Event::new("rung_complete")
                            .with("rung", rung.label())
                            .with("cost", root.cost)
                            .with("plans_costed", stats.plans_costed)
                            .with("degradations", degradations.len())
                    });
                    return Ok(GovernedPlan {
                        plan: OptimizedPlan {
                            cost: root.cost,
                            rows: root.rows,
                            root,
                            stats,
                            profile: ctx.profile().to_vec(),
                        },
                        requested: algorithm,
                        produced: attempt,
                        rung: Some(rung),
                        degradations,
                    });
                }
                Err(e) => e,
            };
            let Some(reason) = DegradeReason::for_error(&error) else {
                // Empty/disconnected: no rung helps.
                return Err(GovernedFailure {
                    error,
                    degradations,
                });
            };
            let next = match reason {
                // The caller wants out *now*: jump straight to the
                // cheapest rung and silence further Cancelled reports
                // so it can actually run.
                DegradeReason::Cancelled if rung != Rung::Goo => {
                    ctx.memory.acknowledge_cancel();
                    Rung::Goo
                }
                _ => match rung.next_down() {
                    Some(next) => next,
                    // Bottom rung failed: the ladder is exhausted.
                    None => {
                        return Err(GovernedFailure {
                            error,
                            degradations,
                        })
                    }
                },
            };
            degradations.push(DegradeEvent {
                from: rung,
                to: next,
                reason,
                elapsed: ctx.memory.elapsed(),
            });
            // The degrade span's canonical fields carry only the
            // deterministic facts (rungs and reason); elapsed time is
            // wall-clock and stays out of the canonical form.
            #[cfg(feature = "trace")]
            ctx.tracer().emit_with(|| {
                sdp_trace::Event::new("degrade")
                    .with("from", rung.label())
                    .with("to", next.label())
                    .with("reason", format!("{reason:?}"))
            });
            let next_budget = governor.rung_budget(next);
            prepare_handoff(&mut ctx, next_budget);
            ctx.memory.set_budget(next_budget);
            #[cfg(feature = "trace")]
            ctx.tracer().emit_with(|| {
                sdp_trace::Event::new("handoff")
                    .with("retained_groups", ctx.memo.len())
                    .with("model_bytes", ctx.memory.used_bytes())
            });
            rung = next;
            attempt = next.algorithm();
        }
    }

    fn rewrite(&self, query: &Query) -> Query {
        let mut rewritten = query.clone();
        if self.infer_closure {
            infer_transitive_edges(&mut rewritten.graph);
        }
        rewritten
    }
}

/// Run one enumeration strategy over an existing context. Shared by
/// the plain and governed entry points; the governed ladder re-invokes
/// it on the same context so retained memo state carries across rungs.
fn dispatch(ctx: &mut EnumContext<'_>, algorithm: Algorithm) -> Result<Arc<PlanNode>, OptError> {
    ctx.set_phase(match algorithm {
        Algorithm::Dp => "DP",
        Algorithm::Idp { .. } => "IDP",
        Algorithm::IdpStandard { .. } => "IDP-std",
        Algorithm::Sdp(_) => "SDP",
        Algorithm::Goo => "GOO",
        Algorithm::IterativeImprovement(_) => "II",
        Algorithm::SimulatedAnnealing(_) => "SA",
    });
    match algorithm {
        Algorithm::Dp => optimize_complete(ctx, None),
        Algorithm::Idp { k } => optimize_idp(ctx, IdpConfig::paper(k)),
        Algorithm::IdpStandard { k } => optimize_idp(ctx, IdpConfig::standard(k)),
        Algorithm::Sdp(cfg) => optimize_sdp(ctx, cfg),
        Algorithm::Goo => optimize_goo(ctx),
        Algorithm::IterativeImprovement(cfg) => optimize_ii(ctx, cfg),
        Algorithm::SimulatedAnnealing(cfg) => optimize_sa(ctx, cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_query::{QueryGenerator, Topology};

    fn plan_for(algorithm: Algorithm, topo: Topology, seed: u64) -> OptimizedPlan {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, topo, seed).instance(0);
        Optimizer::new(&cat).optimize(&q, algorithm).unwrap()
    }

    #[test]
    fn all_algorithms_agree_on_tiny_queries() {
        // Two relations: a single join — every strategy must find the
        // identical optimum.
        let costs: Vec<f64> = [
            Algorithm::Dp,
            Algorithm::Idp { k: 4 },
            Algorithm::Sdp(SdpConfig::paper()),
            Algorithm::Goo,
        ]
        .iter()
        .map(|&a| plan_for(a, Topology::Chain(2), 3).cost)
        .collect();
        for c in &costs[1..] {
            assert!((c - costs[0]).abs() / costs[0] < 1e-9);
        }
    }

    #[test]
    fn quality_ordering_holds_on_star() {
        let dp = plan_for(Algorithm::Dp, Topology::Star(9), 11);
        let sdp = plan_for(Algorithm::Sdp(SdpConfig::paper()), Topology::Star(9), 11);
        let idp = plan_for(Algorithm::Idp { k: 4 }, Topology::Star(9), 11);
        let goo = plan_for(Algorithm::Goo, Topology::Star(9), 11);
        let eps = 1.0 - 1e-9;
        assert!(sdp.cost >= dp.cost * eps);
        assert!(idp.cost >= dp.cost * eps);
        assert!(goo.cost >= dp.cost * eps);
        // Efforts: DP costs the most plans, GOO the fewest.
        assert!(dp.stats.plans_costed > sdp.stats.plans_costed);
        assert!(sdp.stats.plans_costed > goo.stats.plans_costed);
    }

    #[test]
    fn labels_match_paper_rows() {
        assert_eq!(Algorithm::Dp.label(), "DP");
        assert_eq!(Algorithm::Idp { k: 7 }.label(), "IDP(7)");
        assert_eq!(Algorithm::Sdp(SdpConfig::paper()).label(), "SDP");
        assert!(Algorithm::Sdp(SdpConfig {
            partitioning: crate::sdp::Partitioning::Global,
            ..SdpConfig::paper()
        })
        .label()
        .contains("Global"));
    }

    #[test]
    fn budget_propagates_to_runs() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(13), 5).instance(0);
        let tight = Optimizer::new(&cat).with_budget(Budget::with_memory(1 << 20));
        assert!(matches!(
            tight.optimize(&q, Algorithm::Dp),
            Err(OptError::MemoryExhausted { .. })
        ));
        // SDP fits where DP does not.
        let sdp = tight.optimize(&q, Algorithm::Sdp(SdpConfig::paper()));
        assert!(sdp.is_ok(), "SDP should fit the tight budget: {sdp:?}");
    }

    #[test]
    fn stats_are_populated() {
        let p = plan_for(
            Algorithm::Sdp(SdpConfig::paper()),
            Topology::star_chain(9),
            2,
        );
        assert!(p.stats.plans_costed > 0);
        assert!(p.stats.jcrs_processed > 9);
        assert!(p.stats.peak_model_bytes > 0);
        assert!(p.rows >= 1.0);
    }

    #[test]
    fn parallelism_does_not_change_the_plan() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(11), 7).instance(0);
        let base = Optimizer::new(&cat)
            .with_parallelism(1)
            .optimize(&q, Algorithm::Dp)
            .unwrap();
        let par = Optimizer::new(&cat)
            .with_parallelism(4)
            .optimize(&q, Algorithm::Dp)
            .unwrap();
        assert_eq!(base.cost.to_bits(), par.cost.to_bits());
        assert_eq!(base.stats.plans_costed, par.stats.plans_costed);
        assert_eq!(base.stats.jcrs_processed, par.stats.jcrs_processed);
    }

    #[test]
    fn governed_run_without_pressure_matches_plain() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(9), 11).instance(0);
        let opt = Optimizer::new(&cat);
        let plain = opt.optimize(&q, Algorithm::Dp).unwrap();
        let governed = opt
            .optimize_governed(&q, Algorithm::Dp, &Governor::new())
            .unwrap();
        assert_eq!(governed.rung, Some(Rung::Dp));
        assert!(!governed.degraded());
        assert_eq!(governed.reason(), None);
        assert_eq!(governed.rung_label(), "DP");
        assert_eq!(plain.cost.to_bits(), governed.plan.cost.to_bits());
    }

    #[test]
    fn governed_memory_exhaustion_descends_to_a_feasible_rung() {
        // Star-13 under a 1 MB model budget: DP blows it, SDP fits
        // (the same frontier `budget_propagates_to_runs` pins down).
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(13), 5).instance(0);
        let governor = Governor::new().with_memory_budget(1 << 20);
        let governed = Optimizer::new(&cat)
            .optimize_governed(&q, Algorithm::Dp, &governor)
            .unwrap();
        assert_eq!(governed.rung, Some(Rung::Sdp));
        assert_eq!(governed.rung_label(), "SDP");
        assert!(governed.degraded());
        assert_eq!(governed.reason(), Some(DegradeReason::Memory));
        assert_eq!(governed.degradations.len(), 1);
        assert_eq!(governed.degradations[0].from, Rung::Dp);
        assert_eq!(governed.degradations[0].to, Rung::Sdp);
        assert_eq!(governed.plan.root.set, q.graph.all_nodes());
    }

    #[test]
    fn cancellation_jumps_straight_to_goo() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(9), 3).instance(0);
        let governor = Governor::new();
        governor.cancel_handle().cancel();
        let governed = Optimizer::new(&cat)
            .optimize_governed(&q, Algorithm::Dp, &governor)
            .unwrap();
        assert_eq!(governed.rung, Some(Rung::Goo));
        assert_eq!(governed.reason(), Some(DegradeReason::Cancelled));
        assert_eq!(governed.degradations.len(), 1, "no intermediate rungs");
        assert_eq!(governed.plan.root.set, q.graph.all_nodes());
    }

    #[test]
    fn cancellation_at_the_bottom_rung_surfaces() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(5), 3).instance(0);
        let governor = Governor::new();
        governor.cancel_handle().cancel();
        assert_eq!(
            Optimizer::new(&cat)
                .optimize_governed(&q, Algorithm::Goo, &governor)
                .err(),
            Some(OptError::Cancelled)
        );
    }

    #[test]
    fn infeasible_bottom_rung_surfaces_the_error() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(9), 3).instance(0);
        let governor = Governor::new().with_memory_budget(0);
        let result = Optimizer::new(&cat).optimize_governed(&q, Algorithm::Dp, &governor);
        assert!(matches!(result, Err(OptError::MemoryExhausted { .. })));
    }

    #[test]
    fn unrecoverable_errors_skip_the_ladder() {
        use sdp_catalog::RelId;
        let cat = Catalog::paper();
        let g = sdp_query::JoinGraph::new(vec![RelId(0), RelId(1)], vec![]);
        let q = Query::new(g);
        assert_eq!(
            Optimizer::new(&cat)
                .optimize_governed(&q, Algorithm::Dp, &Governor::new())
                .err(),
            Some(OptError::DisconnectedJoinGraph)
        );
    }

    #[test]
    fn off_ladder_strategies_run_single_shot() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(5), 2).instance(0);
        let governed = Optimizer::new(&cat)
            .optimize_governed(&q, Algorithm::ii(), &Governor::new())
            .unwrap();
        assert_eq!(governed.rung, None);
        assert!(!governed.degraded());
        assert_eq!(governed.rung_label(), "II");
    }

    #[test]
    fn pinned_configuration_labels_survive_success() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(6), 2).instance(0);
        let governed = Optimizer::new(&cat)
            .optimize_governed(&q, Algorithm::Idp { k: 7 }, &Governor::new())
            .unwrap();
        assert_eq!(governed.rung, Some(Rung::Idp));
        assert_eq!(governed.rung_label(), "IDP(7)", "requested config ran");
    }

    #[test]
    fn closure_inference_can_be_disabled() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(5), 8).instance(0);
        let a = Optimizer::new(&cat)
            .with_closure_inference(false)
            .optimize(&q, Algorithm::Dp)
            .unwrap();
        let b = Optimizer::new(&cat).optimize(&q, Algorithm::Dp).unwrap();
        // Chains with distinct join columns have no closure edges, so
        // the results coincide.
        assert!((a.cost - b.cost).abs() / b.cost < 1e-9);
    }
}
