//! Shared enumeration state: memo, counters, budget, cached
//! estimates — everything the DP/IDP/SDP enumerators thread through
//! their level loops.
//!
//! The join-costing core (`EnumContext::join_pair_into`) takes
//! `&self` and writes into a caller-supplied [`Group`], so it can run
//! either on the coordinating thread (folding straight into the memo)
//! or on parallel level workers (folding into private shards that the
//! barrier merges back deterministically — see
//! `EnumContext::merge_shard` and the "Threading model" section of
//! DESIGN.md).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sdp_cost::{CostModel, InnerIndex, JoinInput, ScanKind};
use sdp_query::{ClassId, EquivClasses, JoinGraph, Query, RelSet};

use crate::budget::{Budget, BudgetProbe, MemoryModel, OptError};
use crate::enumerate::EnumeratorKind;
use crate::fx::FxHashMap;
use crate::memo::{Group, Memo};
use crate::plan::{NodeCounter, PlanNode, PlanOp};
#[cfg(feature = "trace")]
use sdp_trace::{Event, EventBuffer, Tracer};

/// Capacity of each worker's staged-event ring. Sized far above any
/// realistic per-level creation count; hitting it (and thus dropping
/// staged events) would void the trace determinism guarantee, so
/// `merge_shard` surfaces drops as a `trace_dropped` event.
#[cfg(feature = "trace")]
const TRACE_BUFFER_CAPACITY: usize = 1 << 20;

/// Ceiling on estimated rows, guarding incremental multiplication
/// against `f64` overflow on extreme graphs.
const MAX_ROWS: f64 = 1e299;

/// Worker-side budget-probe cadence, in candidate pairs.
const PROBE_INTERVAL: usize = 256;

/// Resolve the default enumeration parallelism: the `SDP_THREADS`
/// environment variable when set to a positive integer, otherwise
/// [`std::thread::available_parallelism`].
pub fn default_parallelism() -> usize {
    match std::env::var("SDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Counters reported for every optimization run — the paper's three
/// overhead metrics plus pruning diagnostics.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Number of plan alternatives costed (paper: "Costing (in
    /// plans)", Tables 1.2, 1.4, 3.2).
    pub plans_costed: u64,
    /// Distinct JCRs materialized (paper: "JCRs Processed",
    /// Table 2.3).
    pub jcrs_processed: u64,
    /// JCRs removed by pruning.
    pub jcrs_pruned: u64,
    /// Peak paper-equivalent memory of the memo (paper: "Memory (in
    /// MB)").
    pub peak_model_bytes: u64,
    /// Wall-clock optimization time (paper: "Time (in sec)").
    pub elapsed: Duration,
    /// Whether the greedy completion safety-net had to finish the
    /// plan because pruning starved the final DP levels (never the
    /// case for exhaustive DP).
    pub completed_greedily: bool,
}

/// One row of the per-level enumeration profile, recorded at every
/// level barrier and carried on the returned plan for `ExplainAnalyze`
/// provenance. All counters are deterministic: bit-identical at any
/// enumeration parallelism (PR 1's shard-merge guarantee).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelStats {
    /// Enumeration level (relations per JCR at this level).
    pub level: usize,
    /// Strategy label active when the level ran (`"DP"`, `"SDP"`,
    /// `"IDP"`, ...). Governed descents tag each level with the rung
    /// that produced it.
    pub phase: &'static str,
    /// Pair-enumeration strategy that emitted the level's candidates
    /// (`"levelscan"`, `"dpccp"`, `"dpconv"`).
    pub enumerator: &'static str,
    /// Candidate connected pairs considered (pairs emitted by the
    /// enumerator).
    pub pairs: u64,
    /// Plan alternatives costed during the level.
    pub plans_costed: u64,
    /// Distinct JCRs newly materialized.
    pub jcrs_created: u64,
    /// JCRs removed by the level pruner.
    pub jcrs_pruned: u64,
    /// JCRs surviving in the level row after pruning.
    pub jcrs_retained: u64,
    /// Hub partitions the skyline pruner examined (0 when the level
    /// ran unpruned).
    pub skyline_partitions: u64,
    /// Skyline survivors summed over partitions.
    pub skyline_survivors: u64,
    /// JCRs kept only by interesting-order retention.
    pub order_rescued: u64,
    /// Sort-ahead enforcer plans retained at the level barrier
    /// (explicit `Sort` nodes placed below future joins so
    /// order-preserving joins can carry the order to the root).
    pub sort_enforcers: u64,
    /// Memo size in groups after the barrier.
    pub memo_groups: u64,
    /// Modeled memory in bytes after the barrier.
    pub model_bytes: u64,
    /// Atom-graph contractions in force while the level ran: compound
    /// atoms (more than one base relation) the enumerator was asked to
    /// treat as single vertices. Zero for a plain bottom-up run; IDP
    /// re-invocations over already-joined subtrees report how much of
    /// the graph arrived pre-contracted.
    pub contractions: u64,
}

/// One worker's private slice of a level's enumeration results: new
/// union groups keyed by `RelSet`, plus the order in which they were
/// first created within the worker's (contiguous) chunk of the global
/// pair sequence. Merging shards in chunk order therefore replays the
/// exact creation order of the sequential run.
#[derive(Debug, Default)]
pub(crate) struct LevelShard {
    /// Union set → shard-local group of retained candidate plans.
    pub groups: FxHashMap<RelSet, Group>,
    /// First-creation order of the union sets in this shard.
    pub created_order: Vec<RelSet>,
    /// Plans costed by this worker.
    pub plans_costed: u64,
    /// Budget violation observed by this worker, if any.
    pub error: Option<OptError>,
    /// Staged trace events keyed by union-set bitmap, forwarded at the
    /// merge barrier only for sets this shard actually inserted.
    #[cfg(feature = "trace")]
    pub trace: EventBuffer,
}

/// Mutable state of one optimization run.
pub struct EnumContext<'a> {
    query: &'a Query,
    model: &'a CostModel<'a>,
    classes: EquivClasses,
    order_target: Option<ClassId>,
    nodes: NodeCounter,
    parallelism: usize,
    enumerator: EnumeratorKind,
    /// The memo of JCR groups.
    pub memo: Memo,
    /// Memory model / budget tracking.
    pub memory: MemoryModel,
    /// Plans costed so far.
    pub plans_costed: u64,
    /// JCRs pruned so far.
    pub jcrs_pruned: u64,
    /// Sort-ahead enforcer plans retained so far.
    pub sort_enforcers: u64,
    /// Set by the greedy completion fallback.
    pub completed_greedily: bool,
    /// Compound atoms (contracted subtrees) in the current
    /// enumeration, stamped onto every level row — see
    /// [`LevelStats::contractions`].
    contractions: u64,
    /// Per-level profile rows, one per completed level barrier.
    profile: Vec<LevelStats>,
    /// Strategy label stamped on profile rows (set by the dispatcher).
    phase: &'static str,
    /// Structured-trace emission handle (disabled unless installed).
    #[cfg(feature = "trace")]
    tracer: Tracer,
}

impl<'a> EnumContext<'a> {
    /// Start a run over `query` (whose graph should already carry any
    /// rewriter-inferred edges) with the given cost model and budget.
    /// Enumeration parallelism defaults to [`default_parallelism`];
    /// override with [`EnumContext::set_parallelism`].
    pub fn new(query: &'a Query, model: &'a CostModel<'a>, budget: Budget) -> Self {
        let classes = query.equiv_classes();
        // The effective interesting order: ORDER BY, else GROUP BY
        // (sort-based grouping wants sorted input, so a grouping
        // column is an interesting order in exactly the same sense).
        let order_target = query
            .interesting_order()
            .and_then(|o| classes.class_of(o.column));
        let nodes = NodeCounter::new();
        EnumContext {
            query,
            model,
            classes,
            order_target,
            memory: MemoryModel::new(budget, nodes.clone()),
            nodes,
            parallelism: default_parallelism(),
            enumerator: EnumeratorKind::from_env(),
            memo: Memo::new(),
            plans_costed: 0,
            jcrs_pruned: 0,
            sort_enforcers: 0,
            completed_greedily: false,
            contractions: 0,
            profile: Vec::new(),
            phase: "",
            #[cfg(feature = "trace")]
            tracer: Tracer::disabled(),
        }
    }

    /// The join graph being optimized (borrowed for the query's
    /// lifetime, not the context's, so callers can hold it across
    /// mutations of the context).
    pub fn graph(&self) -> &'a JoinGraph {
        &self.query.graph
    }

    /// The query.
    pub fn query(&self) -> &'a Query {
        self.query
    }

    /// The cost model.
    pub fn model(&self) -> &'a CostModel<'a> {
        self.model
    }

    /// Join-column equivalence classes (computed after rewriting).
    pub fn classes(&self) -> &EquivClasses {
        &self.classes
    }

    /// Order class the user's `ORDER BY` (or, failing that, `GROUP
    /// BY`) requires, when it is on a join column.
    pub fn order_target(&self) -> Option<ClassId> {
        self.order_target
    }

    /// The run's live plan-node counter.
    pub fn node_counter(&self) -> NodeCounter {
        self.nodes.clone()
    }

    /// Worker threads used by the level-wise enumerator and the SDP
    /// skyline pruner (1 = fully sequential).
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Set the enumeration parallelism (clamped to at least 1).
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// The pair-enumeration strategy `run_levels` builds its
    /// per-invocation enumerator from.
    pub fn enumerator(&self) -> EnumeratorKind {
        self.enumerator
    }

    /// Select the pair-enumeration strategy for this run.
    pub fn set_enumerator(&mut self, kind: EnumeratorKind) {
        self.enumerator = kind;
    }

    /// Install the structured-trace emission handle for this run.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The run's trace handle (disabled unless one was installed).
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Stamp subsequent profile rows (and level spans) with the given
    /// strategy label. Called by the dispatcher on every strategy
    /// entry, including governed re-entries down the ladder.
    pub fn set_phase(&mut self, label: &'static str) {
        self.phase = label;
    }

    /// Record how many compound atoms (contracted subtrees) the
    /// current enumeration runs over. Set per `run_levels_with`
    /// invocation, right after the enumerator prepares its atom list.
    pub fn set_contractions(&mut self, n: u64) {
        self.contractions = n;
    }

    /// Compound atoms in force for the current enumeration.
    pub fn contractions(&self) -> u64 {
        self.contractions
    }

    /// The strategy label currently stamped on profile rows.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// Per-level profile rows recorded so far, in barrier order. A
    /// governed descent accumulates rows across rungs; `phase` tells
    /// them apart.
    pub fn profile(&self) -> &[LevelStats] {
        &self.profile
    }

    /// Append one completed level's profile row.
    pub(crate) fn record_level(&mut self, stats: LevelStats) {
        self.profile.push(stats);
    }

    /// PostgreSQL-style pathkey usefulness: an output ordering is only
    /// worth remembering if it can still pay off — it matches the
    /// user's `ORDER BY`, or the order class has a member column on a
    /// relation *outside* the JCR (so a future merge join can exploit
    /// it). Useless orderings are stripped, which keeps the number of
    /// Pareto entries per group bounded by the genuinely open orders
    /// instead of growing with the join size.
    pub fn useful_ordering(&self, ordering: Option<ClassId>, set: RelSet) -> Option<ClassId> {
        let c = ordering?;
        if self.order_target == Some(c) {
            return Some(c);
        }
        self.classes
            .members(c)
            .iter()
            .any(|m| !set.contains(m.node))
            .then_some(c)
    }

    /// Snapshot the run counters.
    pub fn stats(&self) -> RunStats {
        RunStats {
            plans_costed: self.plans_costed,
            jcrs_processed: self.memo.jcrs_created(),
            jcrs_pruned: self.jcrs_pruned,
            peak_model_bytes: self.memory.peak_bytes(),
            elapsed: self.memory.elapsed(),
            completed_greedily: self.completed_greedily,
        }
    }

    /// Create (if absent) the memo group for base relation `node`,
    /// populated with its access paths.
    pub fn ensure_base_group(&mut self, node: usize) {
        let set = RelSet::single(node);
        if self.memo.get(set).is_some() {
            return;
        }
        let graph = self.graph();
        let rel = graph.relation(node);
        let est = self.model.estimator();
        let rows = est.rows_for_set(graph, set);
        let width = est.width_for_set(graph, set);
        let neighbors = graph.adjacent(node);
        let selectivity = est.selectivity_for_set(graph, set);
        let mut group = Group::new(set, rows, selectivity, width, neighbors);

        for path in self.model.scan_paths_for_node(graph, node) {
            self.plans_costed += 1;
            match path.kind {
                ScanKind::Seq => {
                    group.add_plan(PlanNode::new(
                        &self.nodes,
                        PlanOp::SeqScan { rel, node },
                        set,
                        rows,
                        path.cost,
                        None,
                        vec![],
                    ));
                }
                ScanKind::IndexFull | ScanKind::IndexRange => {
                    // Index order is only worth carrying when the
                    // indexed column participates in a join or the
                    // ORDER BY; a selective IndexRange path can also
                    // win on raw cost, so it is offered either way and
                    // the group's dominance rule decides.
                    let col = path.ordering_col.expect("index scans carry a column");
                    let class = self
                        .classes
                        .class_of(sdp_query::ColRef::new(node, col))
                        .and_then(|c| self.useful_ordering(Some(c), set));
                    if class.is_some() || path.kind == ScanKind::IndexRange {
                        group.add_plan(PlanNode::new(
                            &self.nodes,
                            PlanOp::IndexScan { rel, node, col },
                            set,
                            rows,
                            path.cost,
                            class,
                            vec![],
                        ));
                    }
                }
            }
        }
        debug_assert!(!group.is_empty());
        if self.memo.insert(group) {
            self.memory.add_groups(1);
            // Sort-ahead at the leaves: a base relation owning a
            // column of the order target can be sorted before any
            // join, where it is at its smallest.
            self.offer_sort_enforcer(set);
        }
    }

    /// Sort-ahead enforcer placement (Guravannavar et al., "Reducing
    /// Order Enforcement Cost in Complex Query Plans"): offer the
    /// group an explicit `Sort` over its cheapest plan, producing the
    /// order target *below* future joins. Order-preserving joins
    /// (nested-loop variants with the sorted side outer) then carry
    /// the order to the root, which can beat sorting the — typically
    /// much larger — final result. The group's dominance rule decides
    /// whether the enforcer survives; it can never evict the cheapest
    /// unordered plan, so order-blind plan quality is unaffected.
    ///
    /// Returns `true` if the enforcer entry was retained. Runs only on
    /// the coordinating thread (base-group creation and level
    /// barriers), so parallelism cannot perturb the offer order.
    pub fn offer_sort_enforcer(&mut self, set: RelSet) -> bool {
        let Some(target) = self.order_target else {
            return false;
        };
        // The executor sorts by a column it can see: the order class
        // needs a member column on a relation inside the set.
        if !self
            .classes
            .members(target)
            .iter()
            .any(|m| set.contains(m.node))
        {
            return false;
        }
        let candidate = {
            let Some(group) = self.memo.get(set) else {
                return false;
            };
            let best = group.best().clone();
            if best.ordering == Some(target) {
                None // already ordered for free
            } else {
                let cost = best.cost + self.model.sort_cost(group.rows, group.width);
                let retain = group.would_retain(cost, Some(target));
                Some((best, group.rows, cost, retain))
            }
        };
        let Some((best, rows, cost, retain)) = candidate else {
            return false;
        };
        self.plans_costed += 1;
        if !retain {
            return false;
        }
        let node = PlanNode::new(
            &self.nodes,
            PlanOp::Sort { class: target },
            set,
            rows,
            cost,
            Some(target),
            vec![best],
        );
        let inserted = self
            .memo
            .get_mut(set)
            .expect("group present")
            .add_plan(node);
        if inserted {
            self.sort_enforcers += 1;
        }
        inserted
    }

    /// Build the (empty) union group for `a ∪ b` with its canonical
    /// estimated properties. Rows and selectivity are computed over
    /// the whole set (not incrementally from this particular
    /// decomposition): the ≥ 1-row clamp would otherwise make the
    /// estimate depend on which pair reached the set first, and plans
    /// for the same JCR must agree on its cardinality.
    fn new_union_group(&self, a: RelSet, b: RelSet) -> Group {
        let union = a | b;
        let graph = self.graph();
        let est = self.model.estimator();
        let a_width = self.memo.get(a).expect("left group exists").width;
        let b_width = self.memo.get(b).expect("right group exists").width;
        let out_rows = est.rows_for_set(graph, union).min(MAX_ROWS);
        let out_sel = est.selectivity_for_set(graph, union);
        Group::new(
            union,
            out_rows,
            out_sel,
            a_width + b_width,
            graph.neighbors(union),
        )
    }

    /// Enumerate and cost all join alternatives combining the memo
    /// groups of `a` and `b` (both orientations, every plan pair,
    /// every applicable method), folding survivors into the group for
    /// `a ∪ b`. Creates that group on first use.
    ///
    /// Returns `true` if the union group was newly created.
    pub fn join_pair(&mut self, a: RelSet, b: RelSet) -> bool {
        debug_assert!(a.is_disjoint(b));
        let union = a | b;
        // Take the union group out of the memo (leaving a placeholder
        // so the map structure — and hence its iteration order — is
        // untouched), cost into it with the shared `&self` core, and
        // put it back.
        let (mut group, created) = match self.memo.get_mut(union) {
            Some(g) => (
                std::mem::replace(g, Group::new(union, 0.0, 0.0, 0.0, RelSet::EMPTY)),
                false,
            ),
            None => (self.new_union_group(a, b), true),
        };
        let mut costed = 0u64;
        self.join_pair_into(a, b, &mut group, &mut costed);
        self.plans_costed += costed;
        if created {
            self.memo.insert(group);
            self.memory.add_groups(1);
        } else {
            *self.memo.get_mut(union).expect("placeholder present") = group;
        }
        created
    }

    /// The costing core shared by the sequential and parallel paths:
    /// cost every join alternative for `a ⋈ b` and offer the survivors
    /// to `group` (which covers `a ∪ b` but is *not* in the memo).
    fn join_pair_into(&self, a: RelSet, b: RelSet, group: &mut Group, plans_costed: &mut u64) {
        debug_assert!(a.is_disjoint(b));
        let graph = self.graph();
        let est = self.model.estimator();
        let crossing_sel = est.crossing_selectivity(graph, a, b);

        // Distinct order classes of the crossing edges (drive merge
        // join alternatives).
        let mut crossing_classes: Vec<ClassId> = graph
            .crossing_edges(a, b)
            .filter_map(|e| self.classes.class_of(e.left))
            .collect();
        crossing_classes.sort_unstable();
        crossing_classes.dedup();

        for (outer_set, inner_set) in [(a, b), (b, a)] {
            self.cost_orientation(
                outer_set,
                inner_set,
                group,
                crossing_sel,
                group.rows,
                &crossing_classes,
                plans_costed,
            );
        }
    }

    /// Cost all methods for a fixed (outer, inner) orientation,
    /// offering candidates to `group` as they are produced (so the
    /// dominance early-skip sees every plan retained so far).
    #[allow(clippy::too_many_arguments)]
    fn cost_orientation(
        &self,
        outer_set: RelSet,
        inner_set: RelSet,
        group: &mut Group,
        crossing_sel: f64,
        out_rows: f64,
        crossing_classes: &[ClassId],
        plans_costed: &mut u64,
    ) {
        let graph = self.graph();
        let union = group.set;

        // Index nested-loop applicability: inner is a single base
        // relation whose indexed column is one of the crossing join
        // columns.
        let inner_index: Option<InnerIndex> = inner_set.min_index().and_then(|node| {
            if inner_set.len() != 1 {
                return None;
            }
            let rel = graph.relation(node);
            let relation = self.model.catalog().relation(rel).expect("valid binding");
            let usable = graph.crossing_edges(outer_set, inner_set).any(|e| {
                let inner_ref = if e.left.node == node { e.left } else { e.right };
                inner_ref.node == node && relation.has_index_on(inner_ref.col)
            });
            if !usable {
                return None;
            }
            let stats = self.model.catalog().stats(rel).expect("valid binding");
            Some(InnerIndex {
                tuples: stats.relation.tuples,
                pages: stats.relation.pages,
            })
        });

        let outer_group = self.memo.get(outer_set).expect("outer group exists");
        let inner_group = self.memo.get(inner_set).expect("inner group exists");
        let (outer_rows, outer_width) = (outer_group.rows, outer_group.width);
        let (inner_rows, inner_width) = (inner_group.rows, inner_group.width);

        for outer in outer_group.entries() {
            let outer_input = JoinInput {
                rows: outer_rows,
                cost: outer.cost,
                width: outer_width,
                ordering: outer.ordering,
            };
            for (ii, inner) in inner_group.entries().iter().enumerate() {
                let inner_input = JoinInput {
                    rows: inner_rows,
                    cost: inner.cost,
                    width: inner_width,
                    ordering: inner.ordering,
                };
                // Index NLJ does not depend on the inner plan choice:
                // cost it once, against the first inner entry.
                let idx = if ii == 0 { inner_index } else { None };
                // Merge join alternatives, one per crossing class; the
                // cost crate takes one class per call, so iterate.
                let mut classes_iter: Vec<Option<ClassId>> =
                    crossing_classes.iter().copied().map(Some).collect();
                if classes_iter.is_empty() {
                    classes_iter.push(None);
                }
                for (ci, class) in classes_iter.iter().enumerate() {
                    // Hash/NL candidates are identical across classes;
                    // only cost them on the first class iteration.
                    let cands = self.model.join_candidates(
                        &outer_input,
                        &inner_input,
                        crossing_sel,
                        out_rows,
                        *class,
                        if ci == 0 { idx } else { None },
                    );
                    for c in cands {
                        let is_merge = c.method == sdp_cost::JoinMethod::Merge;
                        if ci > 0 && !is_merge {
                            continue; // already costed under ci == 0
                        }
                        *plans_costed += 1;
                        let ordering = self.useful_ordering(c.ordering, union);
                        if !group.would_retain(c.cost, ordering) {
                            continue;
                        }
                        group.add_plan(PlanNode::new(
                            &self.nodes,
                            PlanOp::Join { method: c.method },
                            union,
                            out_rows,
                            c.cost,
                            ordering,
                            vec![outer.clone(), inner.clone()],
                        ));
                    }
                }
            }
        }
    }

    /// The staged/emitted event marking first creation of a JCR. The
    /// sequential path emits it inline; parallel workers stage it in
    /// their shard for deterministic forwarding at the merge barrier.
    #[cfg(feature = "trace")]
    pub(crate) fn jcr_event(set: RelSet) -> Event {
        Event::new("jcr")
            .with("level", set.len())
            .with("set", set.0)
    }

    /// Run one parallel level worker over a contiguous chunk of the
    /// level's candidate pairs, accumulating results in a private
    /// shard. Periodically probes the budget and the shared abort
    /// flag; on violation, records the error, raises the flag and
    /// stops early (the barrier discards partial results on error).
    pub(crate) fn level_worker(
        &self,
        pairs: &[(RelSet, RelSet)],
        probe: &BudgetProbe,
        abort: &AtomicBool,
    ) -> LevelShard {
        let mut shard = LevelShard::default();
        #[cfg(feature = "trace")]
        let tracing = self.tracer.enabled();
        #[cfg(feature = "trace")]
        if tracing {
            shard.trace = EventBuffer::with_capacity(TRACE_BUFFER_CAPACITY);
        }
        for (k, &(a, b)) in pairs.iter().enumerate() {
            if k % PROBE_INTERVAL == 0 {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                if let Some(e) = probe.over_budget() {
                    abort.store(true, Ordering::Relaxed);
                    shard.error = Some(e);
                    break;
                }
            }
            let union = a | b;
            if !shard.groups.contains_key(&union) {
                shard.created_order.push(union);
                shard.groups.insert(union, self.new_union_group(a, b));
                #[cfg(feature = "trace")]
                if tracing {
                    let mut event = Self::jcr_event(union);
                    event.wall_micros = self.tracer.wall_micros();
                    shard.trace.push(union.0, event);
                }
            }
            let group = shard.groups.get_mut(&union).expect("just ensured");
            let mut costed = 0u64;
            self.join_pair_into(a, b, group, &mut costed);
            shard.plans_costed += costed;
        }
        shard
    }

    /// Fold one worker's shard into the memo. Shards must be merged in
    /// chunk order (the chunks partition the sequential pair order
    /// contiguously), which makes the result bit-identical to the
    /// sequential run: groups are inserted in first-creation order,
    /// and re-offering each shard's retained entries in offer order
    /// reconstructs the same Pareto frontier — dominance is
    /// transitive, so dropping shard-locally dominated offers never
    /// changes the final retained set.
    pub(crate) fn merge_shard(
        &mut self,
        mut shard: LevelShard,
        new_sets: &mut Vec<RelSet>,
        created: &mut Vec<RelSet>,
        recorded: &mut crate::fx::FxHashSet<RelSet>,
    ) {
        self.plans_costed += shard.plans_costed;
        // Staged events are keyed by union-set bitmap; only those for
        // sets this shard actually inserts below are forwarded, in
        // created-order — exactly the sequence the sequential run
        // emits inline, so merged traces are deterministic.
        #[cfg(feature = "trace")]
        let mut staged: FxHashMap<u64, Event> = {
            if shard.trace.dropped() > 0 {
                self.tracer
                    .emit(Event::new("trace_dropped").with("staged_events", shard.trace.dropped()));
            }
            shard.trace.drain().collect()
        };
        for set in std::mem::take(&mut shard.created_order) {
            let group = shard.groups.remove(&set).expect("created in this shard");
            match self.memo.get_mut(set) {
                Some(existing) => {
                    for plan in group.entries() {
                        existing.add_plan(plan.clone());
                    }
                    // A group that pre-existed the whole level was
                    // retained from an earlier rung of a governed
                    // descent: record it in the level row on first
                    // visit (`recorded` already holds everything this
                    // level created, so those are not re-recorded).
                    if recorded.insert(set) {
                        new_sets.push(set);
                    }
                }
                None => {
                    // First shard (in chunk order) to create this set:
                    // the shard group's entries already form a Pareto
                    // frontier in offer order, exactly what offering
                    // them one-by-one to an empty group would retain.
                    self.memo.insert(group);
                    self.memory.add_groups(1);
                    recorded.insert(set);
                    created.push(set);
                    new_sets.push(set);
                    #[cfg(feature = "trace")]
                    if let Some(event) = staged.remove(&set.0) {
                        self.tracer.emit(event);
                    }
                }
            }
        }
    }

    /// Best complete plan for `full`, enforcing the `ORDER BY` with an
    /// explicit sort when no suitably-ordered plan is cheaper.
    pub fn finalize(&mut self, full: RelSet) -> Result<Arc<PlanNode>, OptError> {
        let group = self.memo.get(full).ok_or(OptError::DisconnectedJoinGraph)?;
        let best = group.best().clone();
        let Some(target) = self.order_target else {
            return Ok(best);
        };
        let sorted_alternative = group.best_for_order(target).cloned();
        let sort_cost = best.cost + self.model.sort_cost(group.rows, group.width);
        self.plans_costed += 1;
        match sorted_alternative {
            Some(p) if p.cost <= sort_cost => Ok(p),
            _ => {
                let rows = group.rows;
                Ok(PlanNode::new(
                    &self.nodes,
                    PlanOp::Sort { class: target },
                    full,
                    rows,
                    sort_cost,
                    Some(target),
                    vec![best],
                ))
            }
        }
    }

    /// Drop the group for `set` from the memo (pruning), updating the
    /// memory model and prune counter.
    pub fn prune_group(&mut self, set: RelSet) {
        if self.memo.remove(set).is_some() {
            self.memory.remove_groups(1);
            self.jcrs_pruned += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    fn ctx_fixture<'a>(query: &'a Query, model: &'a CostModel<'a>) -> EnumContext<'a> {
        EnumContext::new(query, model, Budget::unlimited())
    }

    #[test]
    fn base_groups_have_scan_plans() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let mut ctx = ctx_fixture(&q, &model);
        ctx.ensure_base_group(0);
        let g = ctx.memo.get(RelSet::single(0)).unwrap();
        assert!(!g.is_empty());
        assert!(g.rows >= 100.0);
        assert_eq!(g.selectivity, 1.0);
        // Idempotent.
        ctx.ensure_base_group(0);
        assert_eq!(ctx.memo.len(), 1);
    }

    #[test]
    fn join_pair_builds_union_group() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let mut ctx = ctx_fixture(&q, &model);
        ctx.ensure_base_group(0);
        ctx.ensure_base_group(1);
        assert!(ctx.join_pair(RelSet::single(0), RelSet::single(1)));
        let union = RelSet::from_indices([0, 1]);
        let g = ctx.memo.get(union).unwrap();
        assert!(!g.is_empty());
        assert!(g.best_cost() > 0.0);
        assert!(ctx.plans_costed > 4);
        // Calling again refines, does not duplicate the group.
        assert!(!ctx.join_pair(RelSet::single(0), RelSet::single(1)));
    }

    #[test]
    fn joined_group_rows_match_estimator() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(4), 3).instance(0);
        let mut ctx = ctx_fixture(&q, &model);
        for i in 0..2 {
            ctx.ensure_base_group(i);
        }
        ctx.join_pair(RelSet::single(0), RelSet::single(1));
        let union = RelSet::from_indices([0, 1]);
        let direct = model.estimator().rows_for_set(&q.graph, union);
        let group = ctx.memo.get(union).unwrap();
        let rel_err = (group.rows - direct).abs() / direct;
        assert!(rel_err < 1e-9, "incremental vs direct rows: {rel_err}");
    }

    #[test]
    fn join_plans_satisfy_invariants() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(4), 5).instance(0);
        let mut ctx = ctx_fixture(&q, &model);
        for i in 0..4 {
            ctx.ensure_base_group(i);
        }
        ctx.join_pair(RelSet::single(0), RelSet::single(1));
        for e in ctx
            .memo
            .get(RelSet::from_indices([0, 1]))
            .unwrap()
            .entries()
        {
            e.check_invariants().unwrap();
        }
    }

    #[test]
    fn level_worker_matches_sequential_join_pair() {
        // The same pair costed through the worker shard must retain
        // exactly the plans the sequential path retains.
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(5), 4).instance(0);

        let mut seq = ctx_fixture(&q, &model);
        for i in 0..5 {
            seq.ensure_base_group(i);
        }
        let pairs: Vec<(RelSet, RelSet)> = (1..5)
            .map(|i| (RelSet::single(0), RelSet::single(i)))
            .collect();
        for &(a, b) in &pairs {
            seq.join_pair(a, b);
        }

        let mut par = ctx_fixture(&q, &model);
        for i in 0..5 {
            par.ensure_base_group(i);
        }
        let probe = par.memory.probe();
        let abort = AtomicBool::new(false);
        let shard = par.level_worker(&pairs, &probe, &abort);
        assert!(shard.error.is_none());
        let mut new_sets = Vec::new();
        let mut created = Vec::new();
        let mut recorded = crate::fx::FxHashSet::default();
        par.merge_shard(shard, &mut new_sets, &mut created, &mut recorded);

        assert_eq!(new_sets.len(), 4);
        assert_eq!(seq.plans_costed, par.plans_costed);
        for &(a, b) in &pairs {
            let (sg, pg) = (seq.memo.get(a | b).unwrap(), par.memo.get(a | b).unwrap());
            let frontier = |g: &Group| {
                g.entries()
                    .iter()
                    .map(|e| (e.cost.to_bits(), e.ordering))
                    .collect::<Vec<_>>()
            };
            assert_eq!(frontier(sg), frontier(pg));
        }
    }

    #[test]
    fn finalize_enforces_order_by() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(2), 9).ordered_instance(0);
        assert!(q.order_on_join_column());
        let mut ctx = ctx_fixture(&q, &model);
        ctx.ensure_base_group(0);
        ctx.ensure_base_group(1);
        ctx.join_pair(RelSet::single(0), RelSet::single(1));
        let root = ctx.finalize(RelSet::from_indices([0, 1])).unwrap();
        assert_eq!(root.ordering, ctx.order_target());
        root.check_invariants().unwrap();
    }

    #[test]
    fn prune_group_updates_counters() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let mut ctx = ctx_fixture(&q, &model);
        ctx.ensure_base_group(2);
        let before = ctx.memory.used_bytes();
        ctx.prune_group(RelSet::single(2));
        assert!(ctx.memory.used_bytes() < before);
        assert_eq!(ctx.jcrs_pruned, 1);
        assert!(ctx.memo.get(RelSet::single(2)).is_none());
        // Pruning a missing group is a no-op.
        ctx.prune_group(RelSet::single(2));
        assert_eq!(ctx.jcrs_pruned, 1);
    }
}
