//! Enumeration strategies: candidate-pair generation behind a trait.
//!
//! The level-wise DP substrate ([`crate::dp::run_levels`]) is agnostic
//! about *how* a level's candidate (csg, cmp) pairs are discovered; it
//! only requires a deterministic pair stream whose multiset equals the
//! joinable pairs of the level. This module supplies three strategies:
//!
//! * [`LevelScan`] — the original quadratic scan over survivor levels,
//!   now with a per-level frontier-mask skip: left entries whose
//!   cached neighbourhood misses the whole right level are rejected
//!   without the inner loop.
//! * [`Dpccp`] — graph-aware csg–cmp pair generation in the style of
//!   Moerkotte & Neumann's DPccp: for each surviving connected
//!   subgraph of the smaller split size, connected complements of the
//!   matching size are grown from neighbourhood seeds with
//!   forbidden-set recursion, so only joinable pairs are ever visited.
//!   An atom-graph adapter contracts IDP's compound atoms to vertices,
//!   letting every strategy share the same enumeration core.
//! * [`DpConv`] — a prototype inspired by DPconv (arXiv:2409.08013):
//!   a layered min-plus pass over the connected-subset lattice under a
//!   scalar `C_out` surrogate (sum of intermediate cardinalities)
//!   picks one decomposition tree, and only that tree's pairs are
//!   emitted for full costing. Super-polynomially less costing work on
//!   chains/cycles; the plan is optimal for the surrogate, not
//!   necessarily for the full cost model — a rung for effort-capped
//!   settings, not a DP replacement.
//!
//! # Canonical pair order and determinism obligations
//!
//! Each strategy emits a level's pairs in a fixed canonical order:
//! splits `i + (s − i)` for `i = 1 ..= s/2`, then survivor order of
//! the smaller side, then (for `Dpccp`) ascending neighbourhood seeds
//! with ascending-submask growth. The parallel chunk-shard/barrier
//! pipeline, memo rollback and trace staging consume the stream
//! unchanged, so a strategy's plans, counters and merged traces are
//! bit-identical at any `SDP_THREADS` *provided* its pair order is a
//! pure function of the survivor table. New enumerators must preserve
//! exactly that: no iteration over hash maps, no randomness, no
//! wall-clock dependence.
//!
//! `LevelScan` and `Dpccp` emit the same pair *multiset* (orientation
//! aside), which — because a group's retained cost frontier is
//! insertion-order-insensitive — makes their chosen plans bit-identical
//! on exhaustive rungs. `DpConv` deliberately emits a subset.

use sdp_query::RelSet;

use crate::context::EnumContext;
use crate::dp::LevelTable;
use crate::fx::FxHashMap;

/// Which pair-enumeration strategy the level-wise engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EnumeratorKind {
    /// Quadratic survivor-level scan (the historical behaviour).
    #[default]
    LevelScan,
    /// Graph-aware csg–cmp generation (DPccp-style).
    Dpccp,
    /// Min-plus surrogate lattice pass emitting one decomposition tree
    /// (DPconv-inspired prototype).
    DpConv,
}

impl EnumeratorKind {
    /// Resolve the default strategy: the `SDP_ENUMERATOR` environment
    /// variable when set to a recognized name (`levelscan`, `dpccp`,
    /// `dpconv`; case-insensitive), otherwise [`EnumeratorKind::LevelScan`].
    pub fn from_env() -> Self {
        std::env::var("SDP_ENUMERATOR")
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or_default()
    }

    /// Parse a strategy name as accepted by `SDP_ENUMERATOR`.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "levelscan" => Some(EnumeratorKind::LevelScan),
            "dpccp" => Some(EnumeratorKind::Dpccp),
            "dpconv" => Some(EnumeratorKind::DpConv),
            _ => None,
        }
    }

    /// Display label, also stamped on level profile rows and spans.
    pub fn label(self) -> &'static str {
        match self {
            EnumeratorKind::LevelScan => "levelscan",
            EnumeratorKind::Dpccp => "dpccp",
            EnumeratorKind::DpConv => "dpconv",
        }
    }

    /// Stable numeric tag for the persisted plan-store format. Never
    /// renumber; append for new strategies.
    pub fn stable_tag(self) -> u8 {
        match self {
            EnumeratorKind::LevelScan => 1,
            EnumeratorKind::Dpccp => 2,
            EnumeratorKind::DpConv => 3,
        }
    }

    /// Inverse of [`EnumeratorKind::stable_tag`]; `None` for unknown
    /// tags.
    pub fn from_stable_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(EnumeratorKind::LevelScan),
            2 => Some(EnumeratorKind::Dpccp),
            3 => Some(EnumeratorKind::DpConv),
            _ => None,
        }
    }

    /// Construct a fresh enumerator instance of this kind. Instances
    /// are per-`run_levels` (IDP builds one per iteration, over the
    /// iteration's atom list).
    pub fn build(self) -> Box<dyn PairEnumerator> {
        match self {
            EnumeratorKind::LevelScan => Box::new(LevelScan),
            EnumeratorKind::Dpccp => Box::new(Dpccp::default()),
            EnumeratorKind::DpConv => Box::new(DpConv::default()),
        }
    }
}

/// Candidate-pair generation strategy for one `run_levels` invocation.
///
/// Contract: [`PairEnumerator::level_pairs`] must return, for level
/// `s`, pairs `(a, b)` of disjoint survivor sets from `table` with
/// `|a| + |b| = s` atoms that are joinable (graph-connected), each
/// unordered pair exactly once, in an order that is a pure function of
/// the table (the determinism obligation above). Both sides must be
/// live in the memo — the engine joins the pairs as given.
pub trait PairEnumerator {
    /// Strategy name (the `SDP_ENUMERATOR` value that selects it).
    fn name(&self) -> &'static str;

    /// Called once per `run_levels` invocation, before level 2, with
    /// the atom list (singletons for DP/SDP, compounds for IDP) and
    /// the top level that will be built.
    fn prepare(&mut self, ctx: &EnumContext<'_>, atoms: &[RelSet], up_to: usize);

    /// The level's joinable candidate pairs in canonical order.
    /// `table` holds the survivors of all levels below `level`.
    fn level_pairs(
        &mut self,
        ctx: &EnumContext<'_>,
        table: &LevelTable,
        level: usize,
    ) -> Vec<(RelSet, RelSet)>;
}

/// The historical strategy: scan every (left, right) survivor-level
/// combination and re-test joinability pairwise. Kept as the reference
/// behaviour (and the default); per-level frontier masks skip left
/// entries that cannot join anything on the right.
#[derive(Debug, Default, Clone, Copy)]
pub struct LevelScan;

impl PairEnumerator for LevelScan {
    fn name(&self) -> &'static str {
        EnumeratorKind::LevelScan.label()
    }

    fn prepare(&mut self, _ctx: &EnumContext<'_>, _atoms: &[RelSet], _up_to: usize) {}

    fn level_pairs(
        &mut self,
        _ctx: &EnumContext<'_>,
        table: &LevelTable,
        s: usize,
    ) -> Vec<(RelSet, RelSet)> {
        let mut pairs = Vec::new();
        for i in 1..=s / 2 {
            let j = s - i;
            let (left_level, right_level) = (&table.levels[i - 1], &table.levels[j - 1]);
            // Frontier mask: a left entry can only pair with a right
            // entry its neighbourhood touches, so entries whose mask
            // is disjoint with the whole right level skip the inner
            // loop. Skipped entries would have produced no pairs, so
            // the emitted sequence is unchanged.
            let frontier = right_level.iter().fold(RelSet::EMPTY, |m, &(b, _)| m | b);
            for (li, &(a, a_nb)) in left_level.iter().enumerate() {
                if !a_nb.intersects(frontier) {
                    continue;
                }
                for (ri, &(b, _)) in right_level.iter().enumerate() {
                    if i == j && li >= ri {
                        continue; // unordered pair once
                    }
                    if !a.is_disjoint(b) || !a_nb.intersects(b) {
                        continue; // overlapping or cartesian
                    }
                    pairs.push((a, b));
                }
            }
        }
        pairs
    }
}

/// Graph-aware csg–cmp pair generation.
///
/// The join graph is contracted to an *atom graph*: vertex `v` stands
/// for `atoms[v]`, and vertices are adjacent when their atoms are
/// joinable. For each split `i + (s − i)` with `i ≤ s − i`, each
/// surviving level-`i` set `A` (a connected vertex set) seeds
/// complement growth: for every neighbour `v` of `A` in ascending
/// order, connected sets of size `s − i` containing `v` are grown by
/// forbidden-set recursion with `A` and all smaller seeds forbidden —
/// the classic `EnumerateCsgRec` discipline, which visits every
/// connected complement exactly once. Grown complements are filtered
/// against the live survivors of level `s − i` (pruning can have
/// removed them), and equal-size pairs are deduplicated by requiring
/// the smaller minimum vertex on the left.
#[derive(Debug, Default)]
pub struct Dpccp {
    /// Vertex → the atom's base-relation set.
    atoms: Vec<RelSet>,
    /// Base relation index → vertex (dense; `usize::MAX` = uncovered).
    vertex_of: Vec<usize>,
    /// Vertex-space adjacency sets.
    adj: Vec<RelSet>,
    /// Whether atoms are exactly the singletons `{0} .. {m-1}` — then
    /// vertex space and base space coincide and translation is free.
    identity: bool,
}

impl Dpccp {
    /// Vertex set of a survivor's base-relation set.
    #[inline]
    fn to_vertex(&self, base: RelSet) -> RelSet {
        if self.identity {
            return base;
        }
        base.iter()
            .map(|r| self.vertex_of[r])
            .filter(|&v| v != usize::MAX)
            .collect()
    }

    /// Base-relation set of a vertex set.
    #[inline]
    fn to_base(&self, vset: RelSet) -> RelSet {
        if self.identity {
            return vset;
        }
        vset.iter()
            .fold(RelSet::EMPTY, |acc, v| acc | self.atoms[v])
    }

    /// External neighbourhood of a vertex set in the atom graph.
    #[inline]
    fn vneighbors(&self, vset: RelSet) -> RelSet {
        vset.iter().fold(RelSet::EMPTY, |acc, v| acc | self.adj[v]) - vset
    }

    /// Grow connected supersets of `sub` (avoiding `forbidden`) to
    /// exactly `want` vertices, appending each to `out` exactly once.
    /// Expansion iterates non-empty submasks of the reachable
    /// neighbourhood in ascending numeric order; recursion forbids the
    /// whole neighbourhood, the uniqueness argument of
    /// `EnumerateCsgRec`.
    fn grow(&self, sub: RelSet, forbidden: RelSet, want: usize, out: &mut Vec<RelSet>) {
        let frontier = self.vneighbors(sub) - forbidden;
        if frontier.is_empty() {
            return;
        }
        let remaining = want - sub.len();
        let nmask = frontier.0;
        let mut ext: u64 = 0;
        loop {
            ext = ext.wrapping_sub(nmask) & nmask;
            if ext == 0 {
                break;
            }
            let cnt = ext.count_ones() as usize;
            if cnt > remaining {
                continue;
            }
            let grown = sub | RelSet(ext);
            if cnt == remaining {
                out.push(grown);
            } else {
                self.grow(grown, forbidden | frontier, want, out);
            }
        }
    }

    /// Like [`Dpccp::grow`], but emitting every connected superset of
    /// `sub` up to `cap` vertices (all sizes, each exactly once) —
    /// one walk serves every split size.
    fn grow_all(&self, sub: RelSet, forbidden: RelSet, cap: usize, out: &mut Vec<RelSet>) {
        let frontier = self.vneighbors(sub) - forbidden;
        if frontier.is_empty() || sub.len() >= cap {
            return;
        }
        let room = cap - sub.len();
        let nmask = frontier.0;
        let mut ext: u64 = 0;
        loop {
            ext = ext.wrapping_sub(nmask) & nmask;
            if ext == 0 {
                break;
            }
            if ext.count_ones() as usize > room {
                continue;
            }
            let grown = sub | RelSet(ext);
            out.push(grown);
            self.grow_all(grown, forbidden | frontier, cap, out);
        }
    }

    /// All connected complements of `a` up to `cap` vertices, every
    /// size at once, in one canonical walk. `DpConv`'s surrogate pass
    /// caches the result per `a` so no growth tree is walked twice.
    fn complements_all(&self, a: RelSet, cap: usize, out: &mut Vec<RelSet>) {
        let nb = self.vneighbors(a);
        let mut seen_seeds = RelSet::EMPTY;
        for v in nb.iter() {
            let seed = RelSet::single(v);
            let forbidden = a | seen_seeds | seed;
            seen_seeds = seen_seeds | seed;
            out.push(seed);
            self.grow_all(seed, forbidden, cap, out);
        }
    }

    /// All connected complements of `a` with exactly `want` vertices,
    /// in canonical (seed-ascending) order. Used by both the pair
    /// stream and `DpConv`'s surrogate pass.
    fn complements(&self, a: RelSet, want: usize, out: &mut Vec<RelSet>) {
        let nb = self.vneighbors(a);
        let mut seen_seeds = RelSet::EMPTY;
        for v in nb.iter() {
            let seed = RelSet::single(v);
            // Forbid `a`, the seed itself and every smaller seed: a
            // complement is grown only from its smallest neighbour of
            // `a`, so each one appears exactly once.
            let forbidden = a | seen_seeds | seed;
            seen_seeds = seen_seeds | seed;
            if want == 1 {
                out.push(seed);
            } else {
                self.grow(seed, forbidden, want, out);
            }
        }
    }
}

impl PairEnumerator for Dpccp {
    fn name(&self) -> &'static str {
        EnumeratorKind::Dpccp.label()
    }

    fn prepare(&mut self, ctx: &EnumContext<'_>, atoms: &[RelSet], _up_to: usize) {
        let graph = ctx.graph();
        self.atoms = atoms.to_vec();
        self.identity = atoms
            .iter()
            .enumerate()
            .all(|(v, &a)| a == RelSet::single(v));
        self.vertex_of = vec![usize::MAX; graph.len()];
        for (v, &a) in atoms.iter().enumerate() {
            for r in a.iter() {
                self.vertex_of[r] = v;
            }
        }
        self.adj = atoms
            .iter()
            .map(|&a| {
                let nb = graph.neighbors(a);
                nb.iter()
                    .map(|r| self.vertex_of[r])
                    .filter(|&v| v != usize::MAX)
                    .collect()
            })
            .collect();
    }

    fn level_pairs(
        &mut self,
        _ctx: &EnumContext<'_>,
        table: &LevelTable,
        s: usize,
    ) -> Vec<(RelSet, RelSet)> {
        let mut pairs = Vec::new();
        let mut grown: Vec<RelSet> = Vec::new();
        for i in 1..=s / 2 {
            let j = s - i;
            let (left_level, right_level) = (&table.levels[i - 1], &table.levels[j - 1]);
            if left_level.is_empty() || right_level.is_empty() {
                continue;
            }
            // Pruning (or a governed descent) can leave holes in the
            // lattice: only complements that actually survived level
            // `j` may be joined.
            let live: FxHashMap<RelSet, RelSet> = right_level
                .iter()
                .map(|&(b, _)| (self.to_vertex(b), b))
                .collect();
            for &(a_base, _) in left_level.iter() {
                let a = self.to_vertex(a_base);
                grown.clear();
                self.complements(a, j, &mut grown);
                for &b in &grown {
                    if i == j && a.min_index() > b.min_index() {
                        continue; // unordered pair once
                    }
                    if let Some(&b_base) = live.get(&b) {
                        pairs.push((a_base, b_base));
                    }
                }
            }
        }
        pairs
    }
}

/// One lattice node of `DpConv`'s surrogate pass.
#[derive(Debug, Clone, Copy)]
struct ConvEntry {
    /// Natural log of the set's estimated output rows, before the
    /// estimator's final clamp — the additive form rows derive from.
    ln_rows: f64,
    /// Estimated output rows of the vertex set.
    rows: f64,
    /// Surrogate cost: sum of intermediate-result rows over the best
    /// subtree rooted here (`C_out`; 0 for atoms).
    cost: f64,
    /// The winning split, `None` for atoms.
    split: Option<(RelSet, RelSet)>,
}

/// DPconv-inspired prototype: run the whole csg–cmp enumeration once
/// under a *scalar* min-plus surrogate (`C_out`: the sum of
/// intermediate-result cardinalities, split-independent per set, so
/// `C[S] = rows(S) + min over splits (C[A] + C[B])`), then emit only
/// the winning decomposition tree's pairs to the full cost model —
/// `n − 1` joins costed instead of the whole lattice.
///
/// Applies to complete-query enumeration (`up_to == atoms.len()`);
/// IDP's partial blocks need every level populated, so those rounds
/// fall back to [`Dpccp`] generation. The surrogate ignores operator
/// costs, interesting orders and access-path asymmetries: the emitted
/// plan is optimal for `C_out`, and the full model then costs that one
/// tree exactly (both orientations, all methods). Quality versus DP is
/// measured, not guaranteed — see EXPERIMENTS.md.
#[derive(Debug, Default)]
pub struct DpConv {
    ccp: Dpccp,
    /// Partial-block (IDP) rounds run plain Dpccp generation.
    fallback: bool,
    /// `buckets[s]` = the winning tree's pairs at `s` atoms, sorted.
    buckets: Vec<Vec<(RelSet, RelSet)>>,
}

impl DpConv {
    /// Run the surrogate lattice pass and bucket the winning tree's
    /// pairs per level.
    fn solve(&mut self, ctx: &EnumContext<'_>, atoms: &[RelSet], m: usize) {
        let graph = ctx.graph();
        let est = ctx.model().estimator();
        // Row estimates are additive in ln space (base products per
        // atom, selectivities per edge — the estimator's own
        // decomposition), so precompute both term tables once and
        // derive each lattice set's rows from its parents plus the
        // cross edges, instead of an O(edges) re-estimation per set.
        let vertex_ln: Vec<f64> = atoms
            .iter()
            .map(|&a| {
                est.ln_base_product(graph, a)
                    + est.ln_internal_selectivity(graph, a)
                    + est.ln_filter_selectivity(graph, a)
            })
            .collect();
        // Cross-atom edges as (vertex-pair mask, ln selectivity);
        // edges internal to a compound atom are already inside its
        // `vertex_ln` term.
        let edge_ln: Vec<(RelSet, f64)> = graph
            .edges()
            .iter()
            .filter_map(|e| {
                let (u, v) = (
                    self.ccp.vertex_of[e.left.node],
                    self.ccp.vertex_of[e.right.node],
                );
                (u != usize::MAX && v != usize::MAX && u != v).then(|| {
                    (
                        RelSet::single(u) | RelSet::single(v),
                        est.edge_selectivity(graph, e).ln(),
                    )
                })
            })
            .collect();
        let mut entries: FxHashMap<RelSet, ConvEntry> = FxHashMap::default();
        let mut levels: Vec<Vec<RelSet>> = vec![Vec::new(); m + 1];
        for (v, &ln) in vertex_ln.iter().enumerate() {
            let vs = RelSet::single(v);
            levels[1].push(vs);
            entries.insert(
                vs,
                ConvEntry {
                    ln_rows: ln,
                    rows: est.rows_from_ln(ln),
                    cost: 0.0,
                    split: None,
                },
            );
        }
        // One growth walk per left set: complements of *all* sizes are
        // enumerated together, counting-sorted by size into one flat
        // buffer (offsets[j] .. offsets[j + 1] = size-j complements,
        // walk order preserved within a size), so revisiting `a` at
        // the next split size is a slice lookup, not a re-walk.
        let mut comp_cache: FxHashMap<RelSet, (Vec<RelSet>, Vec<u32>)> = FxHashMap::default();
        let mut all: Vec<RelSet> = Vec::new();
        let mut grown: Vec<RelSet> = Vec::new();
        for s in 2..=m {
            for i in 1..=s / 2 {
                let j = s - i;
                // Indexed loop: relaxations at split (i, j) can append
                // to `levels[s]` only when `i + j == s` never splits
                // into itself (i, j < s), so iterating by index over
                // the growing level-i list is safe and deterministic.
                for ai in 0..levels[i].len() {
                    let a = levels[i][ai];
                    let (a_cost, a_ln) = {
                        let e = &entries[&a];
                        (e.cost, e.ln_rows)
                    };
                    let (sets, offsets) = comp_cache.entry(a).or_insert_with(|| {
                        all.clear();
                        self.ccp.complements_all(a, m - i, &mut all);
                        let mut offsets = vec![0u32; m - i + 2];
                        for &b in &all {
                            offsets[b.len() + 1] += 1;
                        }
                        for k in 1..offsets.len() {
                            offsets[k] += offsets[k - 1];
                        }
                        let mut cursor = offsets.clone();
                        let mut sets = vec![RelSet::EMPTY; all.len()];
                        for &b in &all {
                            sets[cursor[b.len()] as usize] = b;
                            cursor[b.len()] += 1;
                        }
                        (sets, offsets)
                    });
                    grown.clear();
                    grown.extend_from_slice(&sets[offsets[j] as usize..offsets[j + 1] as usize]);
                    for &b in &grown {
                        if i == j && a.min_index() > b.min_index() {
                            continue;
                        }
                        let (b_cost, b_ln) = {
                            let e = &entries[&b];
                            (e.cost, e.ln_rows)
                        };
                        let u = a | b;
                        let children = a_cost + b_cost;
                        match entries.get_mut(&u) {
                            Some(e) => {
                                // Strict improvement only: ties keep
                                // the first split in canonical order.
                                if children + e.rows < e.cost {
                                    e.cost = children + e.rows;
                                    e.split = Some((a, b));
                                }
                            }
                            None => {
                                let ln_rows = a_ln
                                    + b_ln
                                    + edge_ln
                                        .iter()
                                        .filter(|&&(vm, _)| vm.intersects(a) && vm.intersects(b))
                                        .map(|&(_, ln)| ln)
                                        .sum::<f64>();
                                let rows = est.rows_from_ln(ln_rows);
                                levels[s].push(u);
                                entries.insert(
                                    u,
                                    ConvEntry {
                                        ln_rows,
                                        rows,
                                        cost: children + rows,
                                        split: Some((a, b)),
                                    },
                                );
                            }
                        }
                    }
                }
            }
        }

        // Extract the winning tree (iteratively; the lattice is acyclic
        // and splits strictly shrink).
        self.buckets = vec![Vec::new(); m + 1];
        let full = RelSet::first_n(m);
        let mut stack = vec![full];
        while let Some(u) = stack.pop() {
            let Some(&ConvEntry {
                split: Some((a, b)),
                ..
            }) = entries.get(&u)
            else {
                continue;
            };
            self.buckets[u.len()].push((self.ccp.to_base(a), self.ccp.to_base(b)));
            stack.push(a);
            stack.push(b);
        }
        for bucket in &mut self.buckets {
            bucket.sort();
        }
    }
}

impl PairEnumerator for DpConv {
    fn name(&self) -> &'static str {
        EnumeratorKind::DpConv.label()
    }

    fn prepare(&mut self, ctx: &EnumContext<'_>, atoms: &[RelSet], up_to: usize) {
        self.ccp.prepare(ctx, atoms, up_to);
        self.fallback = up_to != atoms.len();
        if !self.fallback && atoms.len() >= 2 {
            self.solve(ctx, atoms, atoms.len());
        }
    }

    fn level_pairs(
        &mut self,
        ctx: &EnumContext<'_>,
        table: &LevelTable,
        s: usize,
    ) -> Vec<(RelSet, RelSet)> {
        if self.fallback {
            return self.ccp.level_pairs(ctx, table, s);
        }
        // A pruner may have removed a tree node; joining a pruned side
        // would touch a dead group, so such pairs are dropped (the
        // greedy completion safety-net then finishes the plan).
        self.buckets
            .get(s)
            .map(|bucket| {
                bucket
                    .iter()
                    .filter(|&&(a, b)| ctx.memo.get(a).is_some() && ctx.memo.get(b).is_some())
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Normalize a pair stream for multiset comparison between
/// enumerators: orientation is immaterial (the engine costs both), so
/// each pair is keyed `(min, max)` and sorted.
pub fn normalized_pair_multiset(pairs: &[(RelSet, RelSet)]) -> Vec<(RelSet, RelSet)> {
    let mut normalized: Vec<(RelSet, RelSet)> = pairs
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    normalized.sort();
    normalized
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::dp::run_levels_with;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    fn pair_multisets_match(topo: Topology, seed: u64) {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, topo, seed).instance(0);
        let n = q.num_relations();
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        for i in 0..n {
            ctx.ensure_base_group(i);
        }
        let atoms: Vec<RelSet> = (0..n).map(RelSet::single).collect();
        let mut scan = LevelScan;
        let table = run_levels_with(&mut ctx, &atoms, n, None, &mut scan).unwrap();

        let mut ccp = Dpccp::default();
        ccp.prepare(&ctx, &atoms, n);
        for s in 2..=n {
            let a = normalized_pair_multiset(&scan.level_pairs(&ctx, &table, s));
            let b = normalized_pair_multiset(&ccp.level_pairs(&ctx, &table, s));
            assert_eq!(a, b, "{topo} level {s}");
        }
    }

    #[test]
    fn dpccp_matches_levelscan_pair_multisets() {
        for (topo, seed) in [
            (Topology::Chain(7), 3),
            (Topology::Star(7), 5),
            (Topology::Cycle(7), 1),
            (Topology::Clique(6), 2),
            (Topology::star_chain(9), 4),
        ] {
            pair_multisets_match(topo, seed);
        }
    }

    #[test]
    fn kind_parses_env_names() {
        assert_eq!(
            EnumeratorKind::parse("levelscan"),
            Some(EnumeratorKind::LevelScan)
        );
        assert_eq!(
            EnumeratorKind::parse("LevelScan"),
            Some(EnumeratorKind::LevelScan)
        );
        assert_eq!(
            EnumeratorKind::parse("level-scan"),
            Some(EnumeratorKind::LevelScan)
        );
        assert_eq!(EnumeratorKind::parse("dpccp"), Some(EnumeratorKind::Dpccp));
        assert_eq!(
            EnumeratorKind::parse("DPconv"),
            Some(EnumeratorKind::DpConv)
        );
        assert_eq!(EnumeratorKind::parse("bogus"), None);
        assert_eq!(EnumeratorKind::default(), EnumeratorKind::LevelScan);
    }

    #[test]
    fn frontier_mask_does_not_change_the_stream() {
        // The mask only skips entries that emit nothing; compare the
        // masked stream against a maskless reference scan.
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::star_chain(10), 9).instance(0);
        let n = q.num_relations();
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        for i in 0..n {
            ctx.ensure_base_group(i);
        }
        let atoms: Vec<RelSet> = (0..n).map(RelSet::single).collect();
        let mut scan = LevelScan;
        let table = run_levels_with(&mut ctx, &atoms, n, None, &mut scan).unwrap();
        for s in 2..=n {
            let reference: Vec<(RelSet, RelSet)> = {
                let mut pairs = Vec::new();
                for i in 1..=s / 2 {
                    let j = s - i;
                    let (ll, rl) = (&table.levels[i - 1], &table.levels[j - 1]);
                    for (li, &(a, a_nb)) in ll.iter().enumerate() {
                        for (ri, &(b, _)) in rl.iter().enumerate() {
                            if i == j && li >= ri {
                                continue;
                            }
                            if !a.is_disjoint(b) || !a_nb.intersects(b) {
                                continue;
                            }
                            pairs.push((a, b));
                        }
                    }
                }
                pairs
            };
            assert_eq!(scan.level_pairs(&ctx, &table, s), reference, "level {s}");
        }
    }

    #[test]
    fn dpccp_contracts_compound_atoms() {
        // IDP-shaped atoms: contract {0,1} of a chain into one vertex
        // and enumerate over the compound list.
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(5), 11).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        for i in 0..5 {
            ctx.ensure_base_group(i);
        }
        ctx.join_pair(RelSet::single(0), RelSet::single(1));
        let compound = RelSet::from_indices([0, 1]);
        let atoms = vec![
            compound,
            RelSet::single(2),
            RelSet::single(3),
            RelSet::single(4),
        ];

        let run = |kind: EnumeratorKind, ctx: &mut EnumContext<'_>| {
            let mut e = kind.build();
            let table = run_levels_with(ctx, &atoms, atoms.len(), None, e.as_mut()).unwrap();
            table.sets_at(atoms.len()).collect::<Vec<_>>()
        };
        let full_scan = run(EnumeratorKind::LevelScan, &mut ctx);

        let mut ctx2 = EnumContext::new(&q, &model, Budget::unlimited());
        ctx2.set_parallelism(1);
        for i in 0..5 {
            ctx2.ensure_base_group(i);
        }
        ctx2.join_pair(RelSet::single(0), RelSet::single(1));
        let full_ccp = run(EnumeratorKind::Dpccp, &mut ctx2);

        assert_eq!(full_scan, full_ccp);
        assert_eq!(full_scan, vec![q.graph.all_nodes()]);
        assert_eq!(
            ctx.memo
                .get(q.graph.all_nodes())
                .unwrap()
                .best_cost()
                .to_bits(),
            ctx2.memo
                .get(q.graph.all_nodes())
                .unwrap()
                .best_cost()
                .to_bits(),
        );
    }

    #[test]
    fn dpconv_emits_a_single_tree() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(8), 2).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        for i in 0..8 {
            ctx.ensure_base_group(i);
        }
        let atoms: Vec<RelSet> = (0..8).map(RelSet::single).collect();
        let mut conv = DpConv::default();
        let table = run_levels_with(&mut ctx, &atoms, 8, None, &mut conv).unwrap();
        // Exactly n - 1 = 7 pairs across all levels: one per tree join.
        let total: usize = (2..=8)
            .map(|s| conv.buckets.get(s).map_or(0, |b| b.len()))
            .sum();
        assert_eq!(total, 7);
        assert_eq!(table.sets_at(8).count(), 1);
        let plan = ctx.finalize(q.graph.all_nodes()).unwrap();
        plan.check_invariants().unwrap();
    }
}
