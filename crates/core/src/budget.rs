//! Resource budgets and the infeasibility errors behind the paper's
//! `*` table cells.
//!
//! The paper ran on "vanilla Pentium-IV PCs with 1 GB of memory"; DP
//! on Star-20, and later IDP(7) on Star-23, simply ran out of physical
//! memory. We model that wall with a deterministic *memory model*:
//! each live memo group and each live plan node is charged a constant
//! number of bytes, calibrated so that the feasibility frontier of the
//! paper (DP feasible at Star-15/16, infeasible at Star-20; see
//! DESIGN.md) is reproduced. The harness additionally reports real
//! allocator bytes; the model is what decides feasibility.
//!
//! The node count comes from the run's shared [`NodeCounter`] (an
//! atomic), so plan nodes allocated by parallel level workers are
//! charged against the same budget. Workers cannot hold the mutable
//! [`MemoryModel`], so they probe a read-only [`BudgetProbe`] snapshot
//! instead; the coordinating thread performs the exact check at every
//! level barrier.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::plan::NodeCounter;

/// Paper-equivalent bytes charged per live memo group.
///
/// Calibrated (together with [`NODE_MODEL_BYTES`]) so that the paper's
/// feasibility frontier is reproduced under the 1 GB default budget:
/// DP feasible at Star-16 (~300 MB here, 326 MB in the paper) but not
/// at Star-20 or Star-Chain-23; IDP(7) feasible at Star-20 but not at
/// Star-23.
pub const GROUP_MODEL_BYTES: u64 = 6144;
/// Paper-equivalent bytes charged per live plan node (see
/// [`GROUP_MODEL_BYTES`] for the calibration).
pub const NODE_MODEL_BYTES: u64 = 3072;

/// Why optimization could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The memory model exceeded the budget — the analogue of the
    /// paper's out-of-physical-memory `*` entries.
    MemoryExhausted {
        /// Model bytes in use when the budget tripped.
        used_bytes: u64,
        /// The configured budget.
        budget_bytes: u64,
    },
    /// Wall-clock limit exceeded.
    TimedOut {
        /// Elapsed time when the deadline tripped.
        elapsed: Duration,
        /// The configured limit.
        limit: Duration,
    },
    /// The query's join graph is disconnected — no cartesian-product-
    /// free plan exists.
    DisconnectedJoinGraph,
    /// The query has no relations.
    EmptyQuery,
    /// The caller cancelled the run through its governor's
    /// [`CancelHandle`](crate::governor::CancelHandle).
    Cancelled,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::MemoryExhausted {
                used_bytes,
                budget_bytes,
            } => write!(
                f,
                "optimizer memory exhausted: {:.1} MB used, {:.1} MB budget",
                *used_bytes as f64 / 1048576.0,
                *budget_bytes as f64 / 1048576.0
            ),
            OptError::TimedOut { elapsed, limit } => write!(
                f,
                "optimization timed out after {:.1}s (limit {:.1}s)",
                elapsed.as_secs_f64(),
                limit.as_secs_f64()
            ),
            OptError::DisconnectedJoinGraph => {
                write!(
                    f,
                    "join graph is disconnected (cartesian products excluded)"
                )
            }
            OptError::EmptyQuery => write!(f, "query joins zero relations"),
            OptError::Cancelled => write!(f, "optimization cancelled by caller"),
        }
    }
}

impl std::error::Error for OptError {}

/// Resource limits for one optimization run.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Memory-model budget in bytes (default: the paper's 1 GB).
    pub max_model_bytes: u64,
    /// Wall-clock limit (default: 5 minutes — the paper's slowest
    /// feasible run, DP on Star-16, took ~2 minutes).
    pub max_elapsed: Duration,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_model_bytes: 1 << 30,
            max_elapsed: Duration::from_secs(300),
        }
    }
}

impl Budget {
    /// A budget that never trips (for unit tests of small queries).
    pub fn unlimited() -> Self {
        Budget {
            max_model_bytes: u64::MAX,
            max_elapsed: Duration::from_secs(u32::MAX as u64),
        }
    }

    /// Budget with a specific memory-model limit.
    pub fn with_memory(bytes: u64) -> Self {
        Budget {
            max_model_bytes: bytes,
            ..Budget::default()
        }
    }
}

/// Tracks live groups/nodes against a [`Budget`] and remembers peaks.
#[derive(Debug, Clone)]
pub struct MemoryModel {
    budget: Budget,
    start: Instant,
    nodes: NodeCounter,
    live_groups: u64,
    peak_bytes: u64,
    /// Cooperative cancellation flag shared with the caller's
    /// governor; polled by every budget check until acknowledged.
    cancel: Option<Arc<AtomicBool>>,
    cancel_acknowledged: bool,
    /// Logical clock of level barriers passed so far. Ticks only on
    /// the coordinating thread (see [`MemoryModel::barrier_check`]),
    /// so it advances identically at every enumeration parallelism.
    barriers: u64,
    #[cfg(feature = "testkit")]
    faults: Option<sdp_testkit::FaultPlan>,
}

impl MemoryModel {
    /// Start tracking. `nodes` is the run's live-node counter — fresh
    /// per run, so plans owned by the caller (from earlier runs) are
    /// not charged.
    pub fn new(budget: Budget, nodes: NodeCounter) -> Self {
        MemoryModel {
            budget,
            start: Instant::now(),
            nodes,
            live_groups: 0,
            peak_bytes: 0,
            cancel: None,
            cancel_acknowledged: false,
            barriers: 0,
            #[cfg(feature = "testkit")]
            faults: None,
        }
    }

    /// Record `n` additional live groups.
    pub fn add_groups(&mut self, n: u64) {
        self.live_groups += n;
    }

    /// Record `n` groups freed.
    pub fn remove_groups(&mut self, n: u64) {
        self.live_groups = self.live_groups.saturating_sub(n);
    }

    /// Current model bytes in use.
    pub fn used_bytes(&self) -> u64 {
        self.live_groups * GROUP_MODEL_BYTES + self.nodes.live() * NODE_MODEL_BYTES
    }

    /// Peak model bytes observed so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    /// Elapsed wall-clock time since tracking began.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// The budget currently in force.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Replace the budget in force. The governor swaps per-rung
    /// budgets in here between ladder attempts; elapsed time keeps
    /// counting from the run's start, so a rung's deadline is a
    /// fraction of the request's total deadline, not a fresh window.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Attach a caller cancellation flag; every subsequent budget
    /// check reports [`OptError::Cancelled`] while it is set (until
    /// [`MemoryModel::acknowledge_cancel`]).
    pub fn set_cancel_flag(&mut self, flag: Arc<AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Stop reporting a pending cancellation. The governor calls this
    /// after observing [`OptError::Cancelled`] so its final, cheapest
    /// rung can still produce a best-effort plan for the caller.
    pub fn acknowledge_cancel(&mut self) {
        self.cancel_acknowledged = true;
    }

    /// Number of level barriers passed so far.
    pub fn barriers(&self) -> u64 {
        self.barriers
    }

    /// Install a fault-injection schedule consulted at every barrier.
    #[cfg(feature = "testkit")]
    pub fn set_fault_plan(&mut self, faults: sdp_testkit::FaultPlan) {
        self.faults = Some(faults);
    }

    fn cancelled(&self) -> bool {
        !self.cancel_acknowledged
            && self
                .cancel
                .as_ref()
                .is_some_and(|c| c.load(Ordering::Relaxed))
    }

    /// Check the budget; updates the peak. Call once per enumeration
    /// batch (checking per-plan would be wasteful).
    pub fn check(&mut self) -> Result<(), OptError> {
        let used = self.used_bytes();
        self.peak_bytes = self.peak_bytes.max(used);
        if self.cancelled() {
            return Err(OptError::Cancelled);
        }
        if used > self.budget.max_model_bytes {
            return Err(OptError::MemoryExhausted {
                used_bytes: used,
                budget_bytes: self.budget.max_model_bytes,
            });
        }
        let elapsed = self.start.elapsed();
        if elapsed > self.budget.max_elapsed {
            return Err(OptError::TimedOut {
                elapsed,
                limit: self.budget.max_elapsed,
            });
        }
        Ok(())
    }

    /// [`MemoryModel::check`] at a level barrier: ticks the barrier
    /// counter first, and (under the `testkit` feature) applies any
    /// faults scheduled for the new tick before checking. Barriers
    /// happen twice per DP level — after enumeration and after the
    /// pruner — and only ever on the coordinating thread, so the
    /// counter is a deterministic logical clock at every parallelism.
    pub fn barrier_check(&mut self) -> Result<(), OptError> {
        self.barriers += 1;
        #[cfg(feature = "testkit")]
        if let Some(faults) = &self.faults {
            let fault = faults.at_barrier(self.barriers);
            if let Some(bytes) = fault.shrink_memory_to {
                self.budget.max_model_bytes = bytes;
            }
            if let Some(delay) = fault.delay {
                std::thread::sleep(delay);
            }
        }
        self.check()
    }

    /// Snapshot a read-only probe for worker threads. The probe's
    /// group count is frozen at snapshot time (groups only change at
    /// level barriers, where the exact [`MemoryModel::check`] runs);
    /// the node count stays live through the shared atomic counter.
    pub fn probe(&self) -> BudgetProbe {
        BudgetProbe {
            budget: self.budget,
            start: self.start,
            base_groups: self.live_groups,
            nodes: self.nodes.clone(),
            cancel: if self.cancel_acknowledged {
                None
            } else {
                self.cancel.clone()
            },
        }
    }
}

/// A read-only budget view for parallel enumeration workers: checks
/// the live (atomic) node count and the wall clock against the budget
/// without needing `&mut MemoryModel`. Slightly conservative on
/// memory — shard groups under construction are not yet counted — so
/// the coordinating thread repeats the exact check at the barrier.
#[derive(Debug, Clone)]
pub struct BudgetProbe {
    budget: Budget,
    start: Instant,
    base_groups: u64,
    nodes: NodeCounter,
    cancel: Option<Arc<AtomicBool>>,
}

impl BudgetProbe {
    /// Return the budget violation in force, if any.
    pub fn over_budget(&self) -> Option<OptError> {
        if self
            .cancel
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed))
        {
            return Some(OptError::Cancelled);
        }
        let used = self.base_groups * GROUP_MODEL_BYTES + self.nodes.live() * NODE_MODEL_BYTES;
        if used > self.budget.max_model_bytes {
            return Some(OptError::MemoryExhausted {
                used_bytes: used,
                budget_bytes: self.budget.max_model_bytes,
            });
        }
        let elapsed = self.start.elapsed();
        if elapsed > self.budget.max_elapsed {
            return Some(OptError::TimedOut {
                elapsed,
                limit: self.budget.max_elapsed,
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_one_gigabyte() {
        let b = Budget::default();
        assert_eq!(b.max_model_bytes, 1 << 30);
    }

    #[test]
    fn memory_model_counts_groups() {
        let mut m = MemoryModel::new(Budget::unlimited(), NodeCounter::new());
        assert_eq!(m.used_bytes(), 0);
        m.add_groups(10);
        assert_eq!(m.used_bytes(), 10 * GROUP_MODEL_BYTES);
        m.remove_groups(4);
        assert_eq!(m.used_bytes(), 6 * GROUP_MODEL_BYTES);
        assert!(m.check().is_ok());
        assert_eq!(m.peak_bytes(), 6 * GROUP_MODEL_BYTES);
    }

    #[test]
    fn memory_model_counts_live_nodes() {
        use crate::plan::{PlanNode, PlanOp};
        use sdp_catalog::RelId;
        use sdp_query::RelSet;
        let counter = NodeCounter::new();
        let m = MemoryModel::new(Budget::unlimited(), counter.clone());
        let plan = PlanNode::new(
            &counter,
            PlanOp::SeqScan {
                rel: RelId(0),
                node: 0,
            },
            RelSet::single(0),
            1.0,
            1.0,
            None,
            vec![],
        );
        assert_eq!(m.used_bytes(), NODE_MODEL_BYTES);
        drop(plan);
        assert_eq!(m.used_bytes(), 0);
    }

    #[test]
    fn budget_trips_on_memory() {
        let mut m = MemoryModel::new(Budget::with_memory(GROUP_MODEL_BYTES), NodeCounter::new());
        m.add_groups(2);
        match m.check() {
            Err(OptError::MemoryExhausted { used_bytes, .. }) => {
                assert_eq!(used_bytes, 2 * GROUP_MODEL_BYTES)
            }
            other => panic!("expected memory exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn budget_trips_on_time() {
        let mut m = MemoryModel::new(
            Budget {
                max_model_bytes: u64::MAX,
                max_elapsed: Duration::from_nanos(1),
            },
            NodeCounter::new(),
        );
        std::thread::sleep(Duration::from_millis(2));
        assert!(matches!(m.check(), Err(OptError::TimedOut { .. })));
    }

    #[test]
    fn probe_sees_budget_violations() {
        let mut m = MemoryModel::new(Budget::with_memory(GROUP_MODEL_BYTES), NodeCounter::new());
        assert!(m.probe().over_budget().is_none());
        m.add_groups(2);
        assert!(matches!(
            m.probe().over_budget(),
            Some(OptError::MemoryExhausted { .. })
        ));
    }

    #[test]
    fn cancel_flag_trips_checks_until_acknowledged() {
        let mut m = MemoryModel::new(Budget::unlimited(), NodeCounter::new());
        let flag = Arc::new(AtomicBool::new(false));
        m.set_cancel_flag(Arc::clone(&flag));
        assert!(m.check().is_ok());
        flag.store(true, Ordering::Relaxed);
        assert_eq!(m.check(), Err(OptError::Cancelled));
        assert_eq!(m.probe().over_budget(), Some(OptError::Cancelled));
        m.acknowledge_cancel();
        assert!(m.check().is_ok(), "acknowledged cancel no longer trips");
        assert!(m.probe().over_budget().is_none());
    }

    #[test]
    fn barrier_check_ticks_the_logical_clock() {
        let mut m = MemoryModel::new(Budget::unlimited(), NodeCounter::new());
        assert_eq!(m.barriers(), 0);
        assert!(m.barrier_check().is_ok());
        assert!(m.barrier_check().is_ok());
        assert_eq!(m.barriers(), 2);
        // Plain checks do not tick the clock.
        assert!(m.check().is_ok());
        assert_eq!(m.barriers(), 2);
    }

    #[test]
    fn set_budget_swaps_limits_mid_run() {
        let mut m = MemoryModel::new(Budget::unlimited(), NodeCounter::new());
        m.add_groups(4);
        assert!(m.check().is_ok());
        m.set_budget(Budget::with_memory(GROUP_MODEL_BYTES));
        assert!(matches!(m.check(), Err(OptError::MemoryExhausted { .. })));
        m.set_budget(Budget::unlimited());
        assert!(m.check().is_ok());
        assert_eq!(m.budget().max_model_bytes, u64::MAX);
    }

    #[cfg(feature = "testkit")]
    #[test]
    fn fault_plan_shrinks_budget_at_its_barrier() {
        let mut m = MemoryModel::new(Budget::unlimited(), NodeCounter::new());
        m.set_fault_plan(sdp_testkit::FaultPlan::new().shrink_memory_at(2, 0));
        m.add_groups(1);
        assert!(m.barrier_check().is_ok(), "barrier 1 is unscheduled");
        assert!(
            matches!(m.barrier_check(), Err(OptError::MemoryExhausted { .. })),
            "barrier 2 shrinks the budget to zero"
        );
    }

    #[test]
    fn errors_display_helpfully() {
        let e = OptError::MemoryExhausted {
            used_bytes: 2 << 30,
            budget_bytes: 1 << 30,
        };
        assert!(e.to_string().contains("MB"));
        assert!(OptError::DisconnectedJoinGraph
            .to_string()
            .contains("disconnected"));
    }
}
