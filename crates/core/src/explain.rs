//! Plan pretty-printing, in the spirit of `EXPLAIN`.

use std::fmt::Write as _;

use crate::plan::{PlanNode, PlanOp};

/// Render a plan tree as an indented `EXPLAIN`-style listing.
pub fn explain(plan: &PlanNode) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(node: &PlanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let label = match &node.op {
        PlanOp::SeqScan { rel, node } => format!("Seq Scan on {rel} (n{node})"),
        PlanOp::IndexScan { rel, node, col } => {
            format!("Index Scan on {rel}.{col} (n{node})")
        }
        PlanOp::Join { method } => method.label().to_string(),
        PlanOp::Sort { class } => format!("Sort (class {class})"),
    };
    let ordering = match node.ordering {
        Some(c) => format!(" order=c{c}"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "{label}  (rows={:.0} cost={:.2}{ordering})",
        node.rows, node.cost
    );
    for child in &node.children {
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn explain_renders_every_node() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(4), 3).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let text = explain(&plan);
        assert_eq!(text.lines().count(), plan.node_count());
        assert!(text.contains("Scan"));
        assert!(text.contains("rows="));
    }

    #[test]
    fn explain_indents_children() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let text = explain(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].starts_with(' '));
        assert!(lines[1].starts_with("  "));
    }
}

/// Render a plan tree as a Graphviz `digraph`: operators as boxes,
/// data flow bottom-up, estimated rows on the edges.
pub fn plan_to_dot(plan: &PlanNode, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=BT; node [shape=box];");
    let mut counter = 0usize;
    fn walk(node: &PlanNode, counter: &mut usize, out: &mut String) -> usize {
        use std::fmt::Write as _;
        let id = *counter;
        *counter += 1;
        let label = match &node.op {
            PlanOp::SeqScan { rel, .. } => format!("Seq Scan {rel}"),
            PlanOp::IndexScan { rel, col, .. } => format!("Index Scan {rel}.{col}"),
            PlanOp::Join { method } => method.label().to_string(),
            PlanOp::Sort { class } => format!("Sort c{class}"),
        };
        let _ = writeln!(out, "  p{id} [label=\"{label}\\ncost {:.0}\"];", node.cost);
        for child in &node.children {
            let cid = walk(child, counter, out);
            let _ = writeln!(out, "  p{cid} -> p{id} [label=\"{:.0}\"];", child.rows);
        }
        id
    }
    walk(plan, &mut counter, &mut out);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn plan_dot_has_one_box_per_operator() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(5), 2).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let dot = plan_to_dot(&plan, "plan");
        assert_eq!(dot.matches("\\ncost ").count(), plan.node_count());
        // n - 1 joins + scans: each non-root node has one outgoing edge.
        assert_eq!(dot.matches(" -> ").count(), plan.node_count() - 1);
    }
}
