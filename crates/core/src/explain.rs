//! Plan pretty-printing, in the spirit of `EXPLAIN`, plus the
//! provenance-carrying `EXPLAIN ANALYZE` report for governed plans.

use std::fmt::Write as _;

use crate::governor::GovernedPlan;
use crate::plan::{PlanNode, PlanOp};

/// Render a plan tree as an indented `EXPLAIN`-style listing.
pub fn explain(plan: &PlanNode) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(node: &PlanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let label = match &node.op {
        PlanOp::SeqScan { rel, node } => format!("Seq Scan on {rel} (n{node})"),
        PlanOp::IndexScan { rel, node, col } => {
            format!("Index Scan on {rel}.{col} (n{node})")
        }
        PlanOp::Join { method } => method.label().to_string(),
        PlanOp::Sort { class } => format!("Sort (class {class})"),
    };
    let ordering = match node.ordering {
        Some(c) => format!(" order=c{c}"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "{label}  (rows={:.0} cost={:.2}{ordering})",
        node.rows, node.cost
    );
    for child in &node.children {
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn explain_renders_every_node() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(4), 3).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let text = explain(&plan);
        assert_eq!(text.lines().count(), plan.node_count());
        assert!(text.contains("Scan"));
        assert!(text.contains("rows="));
    }

    #[test]
    fn explain_indents_children() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let text = explain(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].starts_with(' '));
        assert!(lines[1].starts_with("  "));
    }
}

/// Render a governed optimization as an `EXPLAIN ANALYZE`-style
/// report carrying plan provenance: a header naming the requested and
/// producing strategies plus the governor's descent history, the plan
/// tree annotated per node with cumulative and self cost and the rung
/// that produced it, and the per-level enumeration profile (pairs
/// considered, plans costed, pruning counters, skyline partitions and
/// survivors, interesting-order rescues, memo footprint).
pub fn explain_analyze(governed: &GovernedPlan) -> String {
    let plan = &governed.plan;
    let stats = &plan.stats;
    let rung = governed.rung_label();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "requested={}  produced={}{}",
        governed.requested.label(),
        rung,
        if governed.degraded() {
            "  (degraded)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "cost={:.2}  rows={:.0}  plans_costed={}  jcrs_processed={}  jcrs_pruned={}  peak_model_bytes={}{}",
        plan.cost,
        plan.rows,
        stats.plans_costed,
        stats.jcrs_processed,
        stats.jcrs_pruned,
        stats.peak_model_bytes,
        if stats.completed_greedily {
            "  (completed greedily)"
        } else {
            ""
        }
    );
    for d in &governed.degradations {
        let _ = writeln!(
            out,
            "degraded {} -> {}  reason={:?}  after={:.1}ms",
            d.from.label(),
            d.to.label(),
            d.reason,
            d.elapsed.as_secs_f64() * 1e3
        );
    }
    out.push('\n');
    render_analyze(&plan.root, 0, &rung, &mut out);
    if !plan.profile.is_empty() {
        out.push('\n');
        out.push_str("levels:\n");
        for row in &plan.profile {
            let _ = writeln!(
                out,
                "  [{}] level {}: enumerator={} pairs={} costed={} created={} pruned={} retained={} \
                 skyline_partitions={} skyline_survivors={} order_rescued={} sort_enforcers={} \
                 memo={} model_bytes={} contractions={}",
                row.phase,
                row.level,
                row.enumerator,
                row.pairs,
                row.plans_costed,
                row.jcrs_created,
                row.jcrs_pruned,
                row.jcrs_retained,
                row.skyline_partitions,
                row.skyline_survivors,
                row.order_rescued,
                row.sort_enforcers,
                row.memo_groups,
                row.model_bytes,
                row.contractions
            );
        }
    }
    out
}

// Per-node line of the `EXPLAIN ANALYZE` tree: the `EXPLAIN` label
// plus a self-cost breakdown (`cost` is cumulative, `self` is the
// node's own contribution) and the rung that produced the node.
fn render_analyze(node: &PlanNode, depth: usize, rung: &str, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let label = match &node.op {
        PlanOp::SeqScan { rel, node } => format!("Seq Scan on {rel} (n{node})"),
        PlanOp::IndexScan { rel, node, col } => {
            format!("Index Scan on {rel}.{col} (n{node})")
        }
        PlanOp::Join { method } => method.label().to_string(),
        PlanOp::Sort { class } => format!("Sort (class {class})"),
    };
    let ordering = match node.ordering {
        Some(c) => format!(" order=c{c}"),
        None => String::new(),
    };
    let child_cost: f64 = node.children.iter().map(|c| c.cost).sum();
    let self_cost = (node.cost - child_cost).max(0.0);
    let _ = writeln!(
        out,
        "{label}  (rows={:.0} cost={:.2} self={:.2}{ordering}) [rung={rung}]",
        node.rows, node.cost, self_cost
    );
    for child in &node.children {
        render_analyze(child, depth + 1, rung, out);
    }
}

#[cfg(test)]
mod analyze_tests {
    use super::*;
    use crate::governor::Governor;
    use crate::optimizer::{Algorithm, Optimizer};
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn explain_analyze_reports_rung_and_levels() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(6), 3).instance(0);
        let governed = Optimizer::new(&cat)
            .optimize_governed(&q, Algorithm::Dp, &Governor::new())
            .unwrap();
        let text = explain_analyze(&governed);
        assert!(text.contains("requested=DP"));
        assert!(text.contains("produced="));
        assert!(text.contains("[rung="));
        assert!(text.contains("levels:"));
        assert!(text.contains("skyline_partitions="));
        assert!(text.contains("contractions="));
        assert!(text.contains("self="));
        // One tree line per plan node, all tagged with the rung.
        assert_eq!(
            text.matches("[rung=").count(),
            governed.plan.root.node_count()
        );
    }
}

/// Render a "worst estimates" section: the top-`k` entries by Q-error
/// from caller-supplied `(label, estimated_rows, actual_rows)` tuples
/// — typically one per executed plan node, labelled with its tree
/// path and operator. The Q-error is the symmetric ratio
/// `max(est/actual, actual/est)` with both sides floored at one row,
/// so empty results stay finite. Ties break on the label, keeping the
/// listing deterministic. Returns an empty string when `nodes` is
/// empty or `k` is zero.
pub fn worst_estimates(nodes: &[(String, f64, u64)], k: usize) -> String {
    if nodes.is_empty() || k == 0 {
        return String::new();
    }
    let q_of = |est: f64, actual: u64| -> f64 {
        let e = est.max(1.0);
        let a = (actual as f64).max(1.0);
        (e / a).max(a / e)
    };
    let mut ranked: Vec<(f64, &(String, f64, u64))> =
        nodes.iter().map(|n| (q_of(n.1, n.2), n)).collect();
    ranked.sort_by(|a, b| {
        b.0.total_cmp(&a.0)
            .then_with(|| a.1 .0.cmp(&b.1 .0))
            .then_with(|| a.1 .1.total_cmp(&b.1 .1))
            .then_with(|| a.1 .2.cmp(&b.1 .2))
    });
    let mut out = String::from("worst estimates:\n");
    for (q, (label, est, actual)) in ranked.into_iter().take(k) {
        let _ = writeln!(out, "  q={q:.2}  est={est:.0}  actual={actual}  {label}");
    }
    out
}

#[cfg(test)]
mod worst_tests {
    use super::*;

    #[test]
    fn worst_estimates_ranks_by_q_error() {
        let nodes = vec![
            ("r SeqScan".to_string(), 100.0, 100),
            ("r.0 HashJoin".to_string(), 10.0, 500),
            ("r.1 SeqScan".to_string(), 40.0, 10),
        ];
        let text = worst_estimates(&nodes, 2);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "worst estimates:");
        assert!(lines[1].contains("q=50.00") && lines[1].contains("r.0 HashJoin"));
        assert!(lines[2].contains("q=4.00") && lines[2].contains("r.1 SeqScan"));
        assert_eq!(lines.len(), 3, "k=2 caps the listing");
    }

    #[test]
    fn worst_estimates_is_defined_for_zero_rows() {
        // est=0 and actual=0 both floor at one row: finite, symmetric.
        let nodes = vec![
            ("a".to_string(), 0.0, 10),
            ("b".to_string(), 10.0, 0),
            ("c".to_string(), 0.0, 0),
        ];
        let text = worst_estimates(&nodes, 10);
        assert_eq!(text.matches("q=10.00").count(), 2);
        assert!(text.contains("q=1.00"));
        assert!(text.lines().count() == 4);
    }

    #[test]
    fn worst_estimates_empty_inputs_render_nothing() {
        assert_eq!(worst_estimates(&[], 5), "");
        assert_eq!(worst_estimates(&[("a".to_string(), 1.0, 1)], 0), "");
    }
}

/// Render a plan tree as a Graphviz `digraph`: operators as boxes,
/// data flow bottom-up, estimated rows on the edges.
pub fn plan_to_dot(plan: &PlanNode, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=BT; node [shape=box];");
    let mut counter = 0usize;
    fn walk(node: &PlanNode, counter: &mut usize, out: &mut String) -> usize {
        use std::fmt::Write as _;
        let id = *counter;
        *counter += 1;
        let label = match &node.op {
            PlanOp::SeqScan { rel, .. } => format!("Seq Scan {rel}"),
            PlanOp::IndexScan { rel, col, .. } => format!("Index Scan {rel}.{col}"),
            PlanOp::Join { method } => method.label().to_string(),
            PlanOp::Sort { class } => format!("Sort c{class}"),
        };
        let _ = writeln!(out, "  p{id} [label=\"{label}\\ncost {:.0}\"];", node.cost);
        for child in &node.children {
            let cid = walk(child, counter, out);
            let _ = writeln!(out, "  p{cid} -> p{id} [label=\"{:.0}\"];", child.rows);
        }
        id
    }
    walk(plan, &mut counter, &mut out);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn plan_dot_has_one_box_per_operator() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(5), 2).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let dot = plan_to_dot(&plan, "plan");
        assert_eq!(dot.matches("\\ncost ").count(), plan.node_count());
        // n - 1 joins + scans: each non-root node has one outgoing edge.
        assert_eq!(dot.matches(" -> ").count(), plan.node_count() - 1);
    }
}
