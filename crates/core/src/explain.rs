//! Plan pretty-printing, in the spirit of `EXPLAIN`, plus the
//! provenance-carrying `EXPLAIN ANALYZE` report for governed plans.

use std::fmt::Write as _;

use crate::governor::GovernedPlan;
use crate::plan::{PlanNode, PlanOp};

/// Render a plan tree as an indented `EXPLAIN`-style listing.
pub fn explain(plan: &PlanNode) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn render(node: &PlanNode, depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let label = match &node.op {
        PlanOp::SeqScan { rel, node } => format!("Seq Scan on {rel} (n{node})"),
        PlanOp::IndexScan { rel, node, col } => {
            format!("Index Scan on {rel}.{col} (n{node})")
        }
        PlanOp::Join { method } => method.label().to_string(),
        PlanOp::Sort { class } => format!("Sort (class {class})"),
    };
    let ordering = match node.ordering {
        Some(c) => format!(" order=c{c}"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "{label}  (rows={:.0} cost={:.2}{ordering})",
        node.rows, node.cost
    );
    for child in &node.children {
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn explain_renders_every_node() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(4), 3).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let text = explain(&plan);
        assert_eq!(text.lines().count(), plan.node_count());
        assert!(text.contains("Scan"));
        assert!(text.contains("rows="));
    }

    #[test]
    fn explain_indents_children() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 1).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let text = explain(&plan);
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines[0].starts_with(' '));
        assert!(lines[1].starts_with("  "));
    }
}

/// Render a governed optimization as an `EXPLAIN ANALYZE`-style
/// report carrying plan provenance: a header naming the requested and
/// producing strategies plus the governor's descent history, the plan
/// tree annotated per node with cumulative and self cost and the rung
/// that produced it, and the per-level enumeration profile (pairs
/// considered, plans costed, pruning counters, skyline partitions and
/// survivors, interesting-order rescues, memo footprint).
pub fn explain_analyze(governed: &GovernedPlan) -> String {
    let plan = &governed.plan;
    let stats = &plan.stats;
    let rung = governed.rung_label();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "requested={}  produced={}{}",
        governed.requested.label(),
        rung,
        if governed.degraded() {
            "  (degraded)"
        } else {
            ""
        }
    );
    let _ = writeln!(
        out,
        "cost={:.2}  rows={:.0}  plans_costed={}  jcrs_processed={}  jcrs_pruned={}  peak_model_bytes={}{}",
        plan.cost,
        plan.rows,
        stats.plans_costed,
        stats.jcrs_processed,
        stats.jcrs_pruned,
        stats.peak_model_bytes,
        if stats.completed_greedily {
            "  (completed greedily)"
        } else {
            ""
        }
    );
    for d in &governed.degradations {
        let _ = writeln!(
            out,
            "degraded {} -> {}  reason={:?}  after={:.1}ms",
            d.from.label(),
            d.to.label(),
            d.reason,
            d.elapsed.as_secs_f64() * 1e3
        );
    }
    out.push('\n');
    render_analyze(&plan.root, 0, &rung, &mut out);
    if !plan.profile.is_empty() {
        out.push('\n');
        out.push_str("levels:\n");
        for row in &plan.profile {
            let _ = writeln!(
                out,
                "  [{}] level {}: enumerator={} pairs={} costed={} created={} pruned={} retained={} \
                 skyline_partitions={} skyline_survivors={} order_rescued={} sort_enforcers={} \
                 memo={} model_bytes={}",
                row.phase,
                row.level,
                row.enumerator,
                row.pairs,
                row.plans_costed,
                row.jcrs_created,
                row.jcrs_pruned,
                row.jcrs_retained,
                row.skyline_partitions,
                row.skyline_survivors,
                row.order_rescued,
                row.sort_enforcers,
                row.memo_groups,
                row.model_bytes
            );
        }
    }
    out
}

// Per-node line of the `EXPLAIN ANALYZE` tree: the `EXPLAIN` label
// plus a self-cost breakdown (`cost` is cumulative, `self` is the
// node's own contribution) and the rung that produced the node.
fn render_analyze(node: &PlanNode, depth: usize, rung: &str, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    let label = match &node.op {
        PlanOp::SeqScan { rel, node } => format!("Seq Scan on {rel} (n{node})"),
        PlanOp::IndexScan { rel, node, col } => {
            format!("Index Scan on {rel}.{col} (n{node})")
        }
        PlanOp::Join { method } => method.label().to_string(),
        PlanOp::Sort { class } => format!("Sort (class {class})"),
    };
    let ordering = match node.ordering {
        Some(c) => format!(" order=c{c}"),
        None => String::new(),
    };
    let child_cost: f64 = node.children.iter().map(|c| c.cost).sum();
    let self_cost = (node.cost - child_cost).max(0.0);
    let _ = writeln!(
        out,
        "{label}  (rows={:.0} cost={:.2} self={:.2}{ordering}) [rung={rung}]",
        node.rows, node.cost, self_cost
    );
    for child in &node.children {
        render_analyze(child, depth + 1, rung, out);
    }
}

#[cfg(test)]
mod analyze_tests {
    use super::*;
    use crate::governor::Governor;
    use crate::optimizer::{Algorithm, Optimizer};
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn explain_analyze_reports_rung_and_levels() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(6), 3).instance(0);
        let governed = Optimizer::new(&cat)
            .optimize_governed(&q, Algorithm::Dp, &Governor::new())
            .unwrap();
        let text = explain_analyze(&governed);
        assert!(text.contains("requested=DP"));
        assert!(text.contains("produced="));
        assert!(text.contains("[rung="));
        assert!(text.contains("levels:"));
        assert!(text.contains("skyline_partitions="));
        assert!(text.contains("self="));
        // One tree line per plan node, all tagged with the rung.
        assert_eq!(
            text.matches("[rung=").count(),
            governed.plan.root.node_count()
        );
    }
}

/// Render a plan tree as a Graphviz `digraph`: operators as boxes,
/// data flow bottom-up, estimated rows on the edges.
pub fn plan_to_dot(plan: &PlanNode, name: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=BT; node [shape=box];");
    let mut counter = 0usize;
    fn walk(node: &PlanNode, counter: &mut usize, out: &mut String) -> usize {
        use std::fmt::Write as _;
        let id = *counter;
        *counter += 1;
        let label = match &node.op {
            PlanOp::SeqScan { rel, .. } => format!("Seq Scan {rel}"),
            PlanOp::IndexScan { rel, col, .. } => format!("Index Scan {rel}.{col}"),
            PlanOp::Join { method } => method.label().to_string(),
            PlanOp::Sort { class } => format!("Sort c{class}"),
        };
        let _ = writeln!(out, "  p{id} [label=\"{label}\\ncost {:.0}\"];", node.cost);
        for child in &node.children {
            let cid = walk(child, counter, out);
            let _ = writeln!(out, "  p{cid} -> p{id} [label=\"{:.0}\"];", child.rows);
        }
        id
    }
    walk(plan, &mut counter, &mut out);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod dot_tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn plan_dot_has_one_box_per_operator() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(5), 2).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        let dot = plan_to_dot(&plan, "plan");
        assert_eq!(dot.matches("\\ncost ").count(), plan.node_count());
        // n - 1 joins + scans: each non-root node has one outgoing edge.
        assert_eq!(dot.matches(" -> ").count(), plan.node_count() - 1);
    }
}
