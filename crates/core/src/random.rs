//! Randomized join-order search: Iterative Improvement and Simulated
//! Annealing.
//!
//! The paper's introduction contrasts DP-pruning heuristics with
//! approaches that "completely jettison the DP approach and resort to
//! alternative techniques such as randomized algorithms"
//! (Swami/Gupta, Ioannidis/Kang). These two classics are provided as
//! additional baselines for the quality/effort trade-off plots:
//!
//! * **II** — repeated random restarts, each hill-climbed to a local
//!   minimum under the *swap* neighbourhood;
//! * **SA** — one II seed followed by simulated annealing with a
//!   geometric cooling schedule, accepting uphill moves with
//!   probability `exp(−Δ/T)`.
//!
//! The search state is a *connected left-deep order*: a permutation of
//! the base relations in which every prefix induces a connected
//! subgraph (cartesian products excluded, as everywhere else). Each
//! candidate order is costed operator-by-operator with the same cost
//! model the DP enumerators use, so costs are directly comparable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdp_cost::{InnerIndex, JoinInput};
use sdp_query::{ClassId, RelSet};

use crate::budget::OptError;
use crate::context::EnumContext;
use crate::plan::PlanNode;
use std::sync::Arc;

/// Tuning parameters for the randomized searches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomConfig {
    /// RNG seed.
    pub seed: u64,
    /// Random restarts (II) / annealing chains (SA).
    pub restarts: usize,
    /// Moves examined per hill-climb / per temperature step.
    pub moves_per_round: usize,
    /// SA cooling factor per temperature step (ignored by II).
    pub cooling: f64,
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            seed: 0x5d9_2007,
            restarts: 8,
            moves_per_round: 64,
            cooling: 0.85,
        }
    }
}

/// Evaluates connected left-deep orders under the shared cost model.
struct OrderCoster<'a, 'q> {
    ctx: &'a mut EnumContext<'q>,
}

impl OrderCoster<'_, '_> {
    /// Cost of executing the relations in `order` as a left-deep
    /// pipeline, choosing the cheapest join method at every step.
    /// Returns `None` if some prefix is disconnected.
    fn cost(&mut self, order: &[usize]) -> Option<f64> {
        let graph = self.ctx.graph();
        let model = self.ctx.model();
        let est = model.estimator();

        let first = order[0];
        self.ctx
            .ensure_base_group(RelSet::single(first).min_index().unwrap());
        let g0 = self.ctx.memo.get(RelSet::single(first)).expect("base");
        let mut set = RelSet::single(first);
        let mut cost = g0.best().cost;
        let mut rows = g0.rows;
        let mut width = g0.width;
        let mut ordering: Option<ClassId> = g0.best().ordering;

        for &next in &order[1..] {
            let nset = RelSet::single(next);
            if !graph.sets_connected(set, nset) {
                return None;
            }
            self.ctx.ensure_base_group(next);
            let (n_rows, n_width, n_cost, n_ordering) = {
                let g = self.ctx.memo.get(nset).expect("base");
                (g.rows, g.width, g.best().cost, g.best().ordering)
            };
            let crossing = est.crossing_selectivity(graph, set, nset);
            let out_rows = est.rows_for_set(graph, set | nset);
            let classes: Vec<ClassId> = graph
                .crossing_edges(set, nset)
                .filter_map(|e| self.ctx.classes().class_of(e.left))
                .collect();
            let rel = graph.relation(next);
            let relation = model.catalog().relation(rel).expect("valid");
            let idx_usable = graph.crossing_edges(set, nset).any(|e| {
                let inner = if e.left.node == next { e.left } else { e.right };
                inner.node == next && relation.has_index_on(inner.col)
            });
            let inner_index = idx_usable.then(|| {
                let s = model.catalog().stats(rel).expect("valid").relation;
                InnerIndex {
                    tuples: s.tuples,
                    pages: s.pages,
                }
            });
            let outer = JoinInput {
                rows,
                cost,
                width,
                ordering,
            };
            let inner = JoinInput {
                rows: n_rows,
                cost: n_cost,
                width: n_width,
                ordering: n_ordering,
            };
            let mut best: Option<(f64, Option<ClassId>)> = None;
            for cand in model.join_candidates(
                &outer,
                &inner,
                crossing,
                out_rows,
                classes.first().copied(),
                inner_index,
            ) {
                self.ctx.plans_costed += 1;
                if best.is_none_or(|(c, _)| cand.cost < c) {
                    best = Some((cand.cost, cand.ordering));
                }
            }
            let (c, o) = best.expect("at least one join method applies");
            set = set | nset;
            cost = c;
            rows = out_rows;
            width += n_width;
            ordering = o;
        }

        // Account for the ORDER BY enforcement, like finalize().
        if let Some(target) = self.ctx.order_target() {
            if ordering != Some(target) {
                cost += self.ctx.model().sort_cost(rows, width);
            }
        }
        Some(cost)
    }
}

/// A random connected order: start anywhere, repeatedly append a
/// random neighbour of the prefix.
fn random_connected_order(ctx: &EnumContext<'_>, rng: &mut StdRng) -> Vec<usize> {
    let graph = ctx.graph();
    let n = graph.len();
    let mut order = vec![rng.gen_range(0..n)];
    let mut set = RelSet::single(order[0]);
    while order.len() < n {
        let frontier: Vec<usize> = graph.neighbors(set).iter().collect();
        let next = frontier[rng.gen_range(0..frontier.len())];
        order.push(next);
        set = set.insert(next);
    }
    order
}

/// A random swap move that keeps every prefix connected; `None` if the
/// sampled swap is invalid.
fn swapped(ctx: &EnumContext<'_>, order: &[usize], rng: &mut StdRng) -> Option<Vec<usize>> {
    let n = order.len();
    if n < 3 {
        return None;
    }
    let i = rng.gen_range(0..n);
    let j = rng.gen_range(0..n);
    if i == j {
        return None;
    }
    let mut cand = order.to_vec();
    cand.swap(i, j);
    // Validate connected prefixes.
    let graph = ctx.graph();
    let mut set = RelSet::single(cand[0]);
    for &next in &cand[1..] {
        if !graph.sets_connected(set, RelSet::single(next)) {
            return None;
        }
        set = set.insert(next);
    }
    Some(cand)
}

fn search(
    ctx: &mut EnumContext<'_>,
    config: RandomConfig,
    anneal: bool,
) -> Result<Arc<PlanNode>, OptError> {
    let n = ctx.graph().len();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let all = ctx.graph().all_nodes();
    if !ctx.graph().is_connected(all) {
        return Err(OptError::DisconnectedJoinGraph);
    }
    if n == 1 {
        ctx.ensure_base_group(0);
        return ctx.finalize(all);
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut best_order: Option<(Vec<usize>, f64)> = None;

    for _ in 0..config.restarts.max(1) {
        let mut order = random_connected_order(ctx, &mut rng);
        let mut cost = OrderCoster { ctx }
            .cost(&order)
            .expect("random connected order is valid");
        let mut temperature = if anneal { cost * 0.1 } else { 0.0 };

        loop {
            let mut improved = false;
            for _ in 0..config.moves_per_round {
                let Some(cand) = swapped(ctx, &order, &mut rng) else {
                    continue;
                };
                let Some(cand_cost) = OrderCoster { ctx }.cost(&cand) else {
                    continue;
                };
                let delta = cand_cost - cost;
                let accept = delta < 0.0
                    || (anneal
                        && temperature > 0.0
                        && rng.gen::<f64>() < (-delta / temperature).exp());
                if accept {
                    if delta < 0.0 {
                        improved = true;
                    }
                    order = cand;
                    cost = cand_cost;
                }
            }
            ctx.memory.check()?;
            if anneal {
                temperature *= config.cooling;
                if temperature < cost * 1e-4 {
                    break;
                }
            } else if !improved {
                break; // local minimum reached
            }
        }
        if best_order.as_ref().is_none_or(|(_, c)| cost < *c) {
            best_order = Some((order, cost));
        }
    }

    // Materialize the winning order as a real plan through the memo.
    let (order, _) = best_order.expect("at least one restart ran");
    let mut set = RelSet::single(order[0]);
    ctx.ensure_base_group(order[0]);
    for &next in &order[1..] {
        ctx.ensure_base_group(next);
        ctx.join_pair(set, RelSet::single(next));
        set = set.insert(next);
    }
    ctx.finalize(all)
}

/// Optimize with Iterative Improvement (random restarts +
/// hill-climbing).
pub fn optimize_ii(
    ctx: &mut EnumContext<'_>,
    config: RandomConfig,
) -> Result<Arc<PlanNode>, OptError> {
    search(ctx, config, false)
}

/// Optimize with Simulated Annealing.
pub fn optimize_sa(
    ctx: &mut EnumContext<'_>,
    config: RandomConfig,
) -> Result<Arc<PlanNode>, OptError> {
    search(ctx, config, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    fn run(topo: Topology, seed: u64, anneal: bool) -> (f64, f64) {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, topo, seed).instance(0);
        let mut rctx = EnumContext::new(&q, &model, Budget::unlimited());
        let random = search(&mut rctx, RandomConfig::default(), anneal).unwrap();
        let mut dctx = EnumContext::new(&q, &model, Budget::unlimited());
        let dp = optimize_complete(&mut dctx, None).unwrap();
        (random.cost, dp.cost)
    }

    #[test]
    fn ii_finds_valid_competitive_plans() {
        for topo in [
            Topology::Chain(8),
            Topology::Star(8),
            Topology::star_chain(9),
        ] {
            let (ii, dp) = run(topo, 4, false);
            assert!(ii >= dp * (1.0 - 1e-9), "{topo}: II beat DP");
            assert!(ii / dp < 10.0, "{topo}: II ratio {}", ii / dp);
        }
    }

    #[test]
    fn sa_finds_valid_competitive_plans() {
        for topo in [Topology::Chain(8), Topology::Star(8)] {
            let (sa, dp) = run(topo, 9, true);
            assert!(sa >= dp * (1.0 - 1e-9), "{topo}: SA beat DP");
            assert!(sa / dp < 10.0, "{topo}: SA ratio {}", sa / dp);
        }
    }

    #[test]
    fn random_plans_are_structurally_valid() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::star_chain(10), 3).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_sa(&mut ctx, RandomConfig::default()).unwrap();
        assert_eq!(plan.set, q.graph.all_nodes());
        plan.check_invariants().unwrap();
        assert_eq!(plan.join_count(), 9);
    }

    #[test]
    fn randomized_search_is_deterministic_per_seed() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(9), 5).instance(0);
        let cost = |seed: u64| {
            let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
            optimize_ii(
                &mut ctx,
                RandomConfig {
                    seed,
                    ..RandomConfig::default()
                },
            )
            .unwrap()
            .cost
        };
        assert_eq!(cost(1), cost(1));
    }

    #[test]
    fn ordered_queries_get_enforced_orders() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(6), 8).ordered_instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_sa(&mut ctx, RandomConfig::default()).unwrap();
        assert_eq!(plan.ordering, ctx.order_target());
    }

    #[test]
    fn single_relation_short_circuits() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let g = sdp_query::JoinGraph::new(vec![sdp_catalog::RelId(2)], vec![]);
        let q = sdp_query::Query::new(g);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_ii(&mut ctx, RandomConfig::default()).unwrap();
        assert_eq!(plan.join_count(), 0);
    }
}
