//! Greedy Operator Ordering — a cheap non-DP baseline.
//!
//! Not part of the paper's comparison set, but a useful lower anchor
//! for the quality/effort trade-off plots: GOO repeatedly joins the
//! connected pair of components with the smallest estimated result,
//! costing only `O(n²)` plans, and typically lands well above DP cost
//! on hub-bearing graphs.

use std::sync::Arc;

use sdp_query::RelSet;

use crate::budget::OptError;
use crate::context::EnumContext;
use crate::plan::PlanNode;

/// Optimize with greedy operator ordering (MinRows merge criterion).
pub fn optimize_goo(ctx: &mut EnumContext<'_>) -> Result<Arc<PlanNode>, OptError> {
    let n = ctx.graph().len();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let all = ctx.graph().all_nodes();
    if !ctx.graph().is_connected(all) {
        return Err(OptError::DisconnectedJoinGraph);
    }
    let mut components: Vec<RelSet> = (0..n).map(RelSet::single).collect();
    for i in 0..n {
        ctx.ensure_base_group(i);
    }

    while components.len() > 1 {
        let graph = ctx.graph();
        let est = ctx.model().estimator();
        let mut best: Option<(f64, usize, usize)> = None;
        for i in 0..components.len() {
            for j in i + 1..components.len() {
                let (a, b) = (components[i], components[j]);
                if !graph.sets_connected(a, b) {
                    continue;
                }
                let rows = ctx.memo.get(a).expect("live").rows
                    * ctx.memo.get(b).expect("live").rows
                    * est.crossing_selectivity(graph, a, b);
                if best.is_none_or(|(r, _, _)| rows < r) {
                    best = Some((rows, i, j));
                }
            }
        }
        let (_, i, j) = best.ok_or(OptError::DisconnectedJoinGraph)?;
        let (a, b) = (components[i], components[j]);
        ctx.join_pair(a, b);
        components.swap_remove(j);
        components[i] = a | b;
        ctx.memory.check()?;
    }
    ctx.finalize(all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn goo_produces_valid_complete_plans() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        for topo in [
            Topology::Chain(10),
            Topology::Star(10),
            Topology::star_chain(12),
        ] {
            let q = QueryGenerator::new(&cat, topo, 9).instance(0);
            let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
            let plan = optimize_goo(&mut ctx).unwrap();
            assert_eq!(plan.set, q.graph.all_nodes());
            plan.check_invariants().unwrap();
        }
    }

    #[test]
    fn goo_never_beats_dp_and_costs_far_fewer_plans() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(9), 4).instance(0);
        let mut goo_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let goo = optimize_goo(&mut goo_ctx).unwrap();
        let mut dp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let dp = optimize_complete(&mut dp_ctx, None).unwrap();
        assert!(goo.cost >= dp.cost * (1.0 - 1e-9));
        assert!(goo_ctx.stats().plans_costed * 10 < dp_ctx.stats().plans_costed);
    }

    #[test]
    fn goo_handles_single_relation() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let g = sdp_query::JoinGraph::new(vec![sdp_catalog::RelId(3)], vec![]);
        let q = sdp_query::Query::new(g);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_goo(&mut ctx).unwrap();
        assert_eq!(plan.join_count(), 0);
    }
}
