//! Re-costing a fixed plan under a (possibly different) cost model.
//!
//! Used by the statistics-robustness experiments: optimize under
//! *noisy* (sampled) statistics, then ask what the chosen plan costs
//! under the *true* model. Under the model the plan was built with,
//! `recost` reproduces the optimizer's own cost — which doubles as a
//! strong internal-consistency test of the whole costing stack.

use sdp_cost::{CostModel, InnerIndex, JoinInput, ScanKind};
use sdp_query::{ClassId, EquivClasses, JoinGraph, RelSet};

use crate::plan::{PlanNode, PlanOp};

/// Recomputed properties of a subtree.
#[derive(Debug, Clone, Copy)]
struct Recosted {
    rows: f64,
    cost: f64,
    width: f64,
    ordering: Option<ClassId>,
}

/// Total cost of `plan` under `model` (with `graph` supplying
/// cardinalities and `classes` the order-class structure).
///
/// # Panics
/// Panics if the plan's shape is inconsistent with the graph (wrong
/// children counts); such plans cannot come out of the enumerators.
pub fn recost(
    plan: &PlanNode,
    model: &CostModel<'_>,
    graph: &JoinGraph,
    classes: &EquivClasses,
) -> f64 {
    walk(plan, model, graph, classes).cost
}

fn walk(
    node: &PlanNode,
    model: &CostModel<'_>,
    graph: &JoinGraph,
    classes: &EquivClasses,
) -> Recosted {
    let est = model.estimator();
    match &node.op {
        PlanOp::SeqScan { node: n, .. } | PlanOp::IndexScan { node: n, .. } => {
            let set = RelSet::single(*n);
            let rows = est.rows_for_set(graph, set);
            let width = est.width_for_set(graph, set);
            let wanted = match node.op {
                PlanOp::SeqScan { .. } => ScanKind::Seq,
                _ => ScanKind::IndexFull,
            };
            let paths = model.scan_paths_for_node(graph, *n);
            let path = paths
                .iter()
                .find(|p| {
                    p.kind == wanted
                        || (wanted == ScanKind::IndexFull && p.kind == ScanKind::IndexRange)
                })
                .or_else(|| paths.first())
                .expect("scan paths are never empty");
            Recosted {
                rows,
                cost: path.cost,
                width,
                ordering: node.ordering,
            }
        }
        PlanOp::Sort { class } => {
            let child = walk(&node.children[0], model, graph, classes);
            Recosted {
                rows: child.rows,
                cost: child.cost + model.sort_cost(child.rows, child.width),
                width: child.width,
                ordering: Some(*class),
            }
        }
        PlanOp::Join { method } => {
            let outer = walk(&node.children[0], model, graph, classes);
            let inner = walk(&node.children[1], model, graph, classes);
            let (oset, iset) = (node.children[0].set, node.children[1].set);
            let crossing = est.crossing_selectivity(graph, oset, iset);
            let out_rows = est.rows_for_set(graph, oset | iset);

            // Inner-index availability, mirroring the enumerator.
            let inner_index: Option<InnerIndex> = iset.min_index().and_then(|n| {
                if iset.len() != 1 {
                    return None;
                }
                let rel = graph.relation(n);
                let relation = model.catalog().relation(rel).expect("valid binding");
                let usable = graph.crossing_edges(oset, iset).any(|e| {
                    let i = if e.left.node == n { e.left } else { e.right };
                    i.node == n && relation.has_index_on(i.col)
                });
                usable.then(|| {
                    let s = model.catalog().stats(rel).expect("valid binding");
                    InnerIndex {
                        tuples: s.relation.tuples,
                        pages: s.relation.pages,
                    }
                })
            });
            // The merge class is the plan node's recorded ordering (if
            // merge), else any crossing class.
            let class = node.ordering.or_else(|| {
                graph
                    .crossing_edges(oset, iset)
                    .find_map(|e| classes.class_of(e.left))
            });
            let outer_in = JoinInput {
                rows: outer.rows,
                cost: outer.cost,
                width: outer.width,
                ordering: outer.ordering,
            };
            let inner_in = JoinInput {
                rows: inner.rows,
                cost: inner.cost,
                width: inner.width,
                ordering: inner.ordering,
            };
            let cands =
                model.join_candidates(&outer_in, &inner_in, crossing, out_rows, class, inner_index);
            let cost = cands
                .iter()
                .find(|c| c.method == *method)
                .map(|c| c.cost)
                // A plan built under different statistics may pick a
                // method inapplicable here (e.g. INL without a usable
                // index under the true catalog); charge the plain
                // nested loop in that case.
                .unwrap_or_else(|| {
                    cands
                        .iter()
                        .find(|c| c.method == sdp_cost::JoinMethod::NestedLoop)
                        .expect("nested loop always applies")
                        .cost
                });
            Recosted {
                rows: out_rows,
                cost,
                width: outer.width + inner.width,
                ordering: node.ordering,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::context::EnumContext;
    use crate::optimizer::{Algorithm, Optimizer};
    use crate::sdp::SdpConfig;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{infer_transitive_edges, QueryGenerator, Topology};

    #[test]
    fn recost_under_the_same_model_reproduces_the_cost() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        for topo in [
            Topology::Chain(6),
            Topology::Star(7),
            Topology::star_chain(8),
        ] {
            for seed in 0..3 {
                let mut q = QueryGenerator::new(&cat, topo, seed)
                    .with_filter_probability(0.3)
                    .instance(0);
                infer_transitive_edges(&mut q.graph);
                let classes = q.equiv_classes();
                let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
                let plan = crate::dp::optimize_complete(&mut ctx, None).unwrap();
                let re = recost(&plan, &model, &q.graph, &classes);
                let rel = (re - plan.cost).abs() / plan.cost;
                assert!(
                    rel < 1e-9,
                    "{topo} seed {seed}: optimizer {} vs recost {re}",
                    plan.cost
                );
            }
        }
    }

    #[test]
    fn recost_is_consistent_for_every_algorithm() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::star_chain(9), 2).ordered_instance(0);
        let optimizer = Optimizer::new(&cat);
        for alg in [
            Algorithm::Dp,
            Algorithm::Sdp(SdpConfig::paper()),
            Algorithm::Idp { k: 4 },
            Algorithm::Goo,
        ] {
            let plan = optimizer.optimize(&q, alg).unwrap();
            // The optimizer rewrites the graph (closure) before
            // planning; recost against the same rewritten graph.
            let mut rewritten = q.clone();
            infer_transitive_edges(&mut rewritten.graph);
            let classes = rewritten.equiv_classes();
            let re = recost(&plan.root, &model, &rewritten.graph, &classes);
            let rel = (re - plan.cost).abs() / plan.cost;
            assert!(rel < 1e-9, "{}: {} vs {re}", alg.label(), plan.cost);
        }
    }

    #[test]
    fn recost_under_different_statistics_differs() {
        use sdp_catalog::SchemaSpec;
        let cat = Catalog::paper();
        // A second catalog with the same shape but different RNG seed
        // (different index placement, domains).
        let other = sdp_catalog::SchemaBuilder::new(SchemaSpec {
            seed: 999,
            ..SchemaSpec::paper()
        })
        .build()
        .unwrap();
        let q = QueryGenerator::new(&cat, Topology::Star(6), 3).instance(0);
        let plan = Optimizer::new(&cat).optimize(&q, Algorithm::Dp).unwrap();
        let mut rewritten = q.clone();
        infer_transitive_edges(&mut rewritten.graph);
        let classes = rewritten.equiv_classes();
        let other_model = CostModel::with_defaults(&other);
        let re = recost(&plan.root, &other_model, &rewritten.graph, &classes);
        assert!(re.is_finite() && re > 0.0);
        assert!(
            (re - plan.cost).abs() / plan.cost > 1e-6,
            "different statistics should change the cost"
        );
    }
}
