//! Skyline Dynamic Programming — the paper's contribution.
//!
//! SDP augments exhaustive DP with a localized pruning filter
//! (Section 2.1):
//!
//! 1. **Where to prune.** Only levels `2 ..= N − 2`, and only when at
//!    least one *hub* is present (the worked example of Figure 2.2:
//!    a 9-relation query prunes levels 2–7 and runs plain DP at
//!    levels 1, 8 and 9). JCRs that contain no hub form the
//!    *FreeGroup* and are never pruned — "there is no pruning at all
//!    for a chain or cycle query".
//! 2. **How to partition.** The *PruneGroup* (hub-bearing JCRs) is
//!    partitioned per hub: Root-Hub partitioning keys on the hubs of
//!    the original join graph (the variant the paper evaluates, found
//!    to match Parent-Hub quality "with much lesser overheads");
//!    Parent-Hub keys on the hub-parents of the previous level. A JCR
//!    containing several hubs joins *all* the corresponding
//!    partitions and "such JCRs are pruned since they are not
//!    universally considered, by all parent-hubs, to be … worth
//!    pursuing further" unless they survive in every one. The
//!    Global variant (Table 3.6's ablation) throws every JCR of the
//!    level into a single partition.
//! 3. **What to keep.** Within a partition, survivors are the
//!    disjunctive union of the pairwise skylines (RC ∪ CS ∪ RS) of
//!    the `[Rows, Cost, Selectivity]` feature vectors — "Option 2".
//!    Option 1 (one full-vector skyline) and the k-dominant "strong
//!    skyline" of the paper's future work are available for the
//!    ablation experiments.
//! 4. **Interesting orders.** For a user `ORDER BY` on a join column,
//!    an extra partition per relation owning that column collects all
//!    JCRs *not* containing the relation; their skyline survivors are
//!    added to the output so that order-producing combinations remain
//!    reachable (Section 2.1.4).

use sdp_query::{hubs, RelSet};
use sdp_skyline::{k_dominant_skyline, pairwise_union_skyline_threaded, skyline_sfs};

use crate::context::EnumContext;
use crate::dp::{LevelPruner, PruneStats};
use crate::fx::FxHashMap;

/// Minimum level size (in JCRs) before the per-partition skylines are
/// fanned out to worker threads; below this the scans are too cheap
/// to amortize thread startup.
const PARALLEL_PARTITION_THRESHOLD: usize = 64;

/// How the PruneGroup is partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partitioning {
    /// Partition by the hubs of the original join graph — the
    /// variant the paper evaluates.
    #[default]
    RootHub,
    /// Partition by the hub-parents of the immediately previous
    /// level (composite hubs recomputed each iteration).
    ParentHub,
    /// One partition holding the whole level — the "global pruning"
    /// ablation of Table 3.6. Applied at every prunable level
    /// regardless of hubs, with no FreeGroup exemption.
    Global,
}

/// Which skyline function prunes within a partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SkylineOption {
    /// Option 2: union of the pairwise RC, CS, RS skylines — strong
    /// pruning at full plan quality (the paper's choice).
    #[default]
    PairwiseUnion,
    /// Option 1: a single skyline over the full `[R, C, S]` vector —
    /// "high-quality plans but … very little pruning".
    FullVector,
    /// The k-dominant "strong skyline" (future work, the paper’s reference \[12\]); `k` is the
    /// number of dimensions a dominator must win on (2 or 3 for the
    /// 3-attribute vector). An empty k-dominant skyline (cyclic
    /// dominance) falls back to the full-vector skyline so a level is
    /// never wiped out.
    KDominant(usize),
}

/// SDP configuration: partitioning × skyline function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SdpConfig {
    /// PruneGroup partitioning variant.
    pub partitioning: Partitioning,
    /// Skyline pruning function.
    pub skyline: SkylineOption,
}

impl SdpConfig {
    /// The paper's evaluated configuration: Root-Hub partitioning
    /// with the pairwise-union skyline.
    pub fn paper() -> Self {
        SdpConfig::default()
    }
}

/// The SDP pruning hook plugged into the DP level loop.
#[derive(Debug)]
pub struct SdpPruner {
    config: SdpConfig,
    /// Hubs of the original join graph (computed once).
    root_hubs: Vec<usize>,
    /// Hub-parents: surviving JCRs of the previous level that act as
    /// hubs in the contracted graph (Parent-Hub mode only).
    hub_parents: Vec<RelSet>,
    /// Relations owning a column of the `ORDER BY` class, each of
    /// which sponsors an extra "interesting order" partition.
    order_relations: Vec<usize>,
    /// Skyline accounting for the most recent `prune_level` call.
    last: PruneStats,
}

impl SdpPruner {
    /// Build the pruner for the query in `ctx`.
    pub fn new(ctx: &EnumContext<'_>, config: SdpConfig) -> Self {
        let graph = ctx.graph();
        let root_hubs: Vec<usize> = hubs::root_hubs(graph).iter().collect();
        // Level-1 hub-parents are exactly the root hubs.
        let hub_parents: Vec<RelSet> = root_hubs.iter().map(|&h| RelSet::single(h)).collect();
        let order_relations: Vec<usize> = match ctx.order_target() {
            None => Vec::new(),
            Some(class) => {
                let mut nodes: Vec<usize> = ctx
                    .classes()
                    .members(class)
                    .iter()
                    .map(|c| c.node)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            }
        };
        SdpPruner {
            config,
            root_hubs,
            hub_parents,
            order_relations,
            last: PruneStats::default(),
        }
    }

    /// Apply the configured skyline function within one partition,
    /// returning the indices of the surviving members. `threads > 1`
    /// lets the pairwise-union option compute its RC/CS/RS projection
    /// skylines concurrently (the result is identical either way).
    fn skyline(&self, features: &[Vec<f64>], threads: usize) -> Vec<usize> {
        match self.config.skyline {
            SkylineOption::PairwiseUnion => pairwise_union_skyline_threaded(features, threads),
            SkylineOption::FullVector => skyline_sfs(features),
            SkylineOption::KDominant(k) => {
                let s = k_dominant_skyline(features, k.clamp(1, 3));
                if s.is_empty() && !features.is_empty() {
                    // Cyclic k-dominance wiped the partition; fall
                    // back to the ordinary skyline (never empty).
                    skyline_sfs(features)
                } else {
                    s
                }
            }
        }
    }

    fn prune_level(
        &mut self,
        ctx: &EnumContext<'_>,
        level: usize,
        level_sets: &[RelSet],
    ) -> Vec<RelSet> {
        let n = ctx.graph().len();
        self.last = PruneStats::default();
        // Plain DP at level 1 and the last two levels (Figure 2.2).
        let prunable = (2..=n.saturating_sub(2)).contains(&level);
        if !prunable || level_sets.is_empty() {
            self.refresh_hub_parents(ctx, level_sets);
            return Vec::new();
        }

        let features: Vec<Vec<f64>> = level_sets
            .iter()
            .map(|&s| {
                ctx.memo
                    .get(s)
                    .expect("level set is live")
                    .feature_vector()
                    .to_vec()
            })
            .collect();

        // partition key → member indices into level_sets.
        let mut partitions: FxHashMap<RelSet, Vec<usize>> = FxHashMap::default();
        // Per JCR: number of hub partitions it belongs to.
        let mut membership = vec![0u32; level_sets.len()];

        match self.config.partitioning {
            Partitioning::Global => {
                partitions.insert(RelSet::EMPTY, (0..level_sets.len()).collect());
                membership.fill(1);
            }
            Partitioning::RootHub => {
                for (i, &s) in level_sets.iter().enumerate() {
                    for &h in &self.root_hubs {
                        if s.contains(h) {
                            partitions.entry(RelSet::single(h)).or_default().push(i);
                            membership[i] += 1;
                        }
                    }
                }
            }
            Partitioning::ParentHub => {
                for (i, &s) in level_sets.iter().enumerate() {
                    for &hp in &self.hub_parents {
                        if s.is_superset(hp) {
                            partitions.entry(hp).or_default().push(i);
                            membership[i] += 1;
                        }
                    }
                }
            }
        }

        // No hub partition formed (e.g. chain region only): nothing
        // to prune at this level.
        if partitions.is_empty() {
            self.refresh_hub_parents(ctx, level_sets);
            return Vec::new();
        }

        // Survival in every containing partition is required.
        let mut survived_in = vec![0u32; level_sets.len()];
        let mut keys: Vec<RelSet> = partitions.keys().copied().collect();
        keys.sort_unstable(); // deterministic partition order

        // Per-partition skylines are independent reads, so large
        // levels fan them out across worker threads; the survivor
        // marks are merged in sorted key order either way, so the
        // outcome never depends on the thread count. When partitions
        // run sequentially, the pairwise-union projections themselves
        // run threaded instead (no nested oversubscription).
        let threads = ctx.parallelism();
        let this: &SdpPruner = self;
        let winner_lists: Vec<Vec<usize>> =
            if threads > 1 && keys.len() > 1 && level_sets.len() >= PARALLEL_PARTITION_THRESHOLD {
                let workers = threads.min(keys.len());
                let chunk = keys.len().div_ceil(workers);
                let (partitions, features) = (&partitions, &features);
                std::thread::scope(|scope| {
                    let handles: Vec<_> = keys
                        .chunks(chunk)
                        .map(|chunk_keys| {
                            scope.spawn(move || {
                                chunk_keys
                                    .iter()
                                    .map(|key| {
                                        let members = &partitions[key];
                                        let part_features: Vec<Vec<f64>> =
                                            members.iter().map(|&i| features[i].clone()).collect();
                                        this.skyline(&part_features, 1)
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("partition skyline panicked"))
                        .collect()
                })
            } else {
                keys.iter()
                    .map(|key| {
                        let members = &partitions[key];
                        let part_features: Vec<Vec<f64>> =
                            members.iter().map(|&i| features[i].clone()).collect();
                        this.skyline(&part_features, threads)
                    })
                    .collect()
            };
        let mut total_survivors = 0u64;
        for (key, mut winners) in keys.iter().zip(winner_lists) {
            let members = &partitions[key];
            if winners.is_empty() && !members.is_empty() {
                // Completeness safeguard: never let a partition lose
                // everything (cannot happen with the built-in skyline
                // options, but a defensive guarantee regardless).
                winners.push(0);
            }
            total_survivors += winners.len() as u64;
            // Partition spans emit in sorted-key order on the
            // coordinating thread, so the sequence is deterministic.
            #[cfg(feature = "trace")]
            ctx.tracer().emit_with(|| {
                sdp_trace::Event::new("skyline_partition")
                    .with("level", level)
                    .with("hub", key.0)
                    .with("members", members.len())
                    .with("survivors", winners.len())
            });
            for w in winners {
                survived_in[members[w]] += 1;
            }
        }

        // FreeGroup (membership == 0) always survives; PruneGroup
        // members must have survived in all their partitions.
        let mut keep: Vec<bool> = (0..level_sets.len())
            .map(|i| membership[i] == 0 || survived_in[i] == membership[i])
            .collect();

        // Interesting-order partitions rescue JCRs that keep an
        // order-producing combination reachable.
        let mut order_rescued = 0u64;
        for &t in &self.order_relations {
            let members =
                sdp_skyline::exclusion_partition(level_sets.len(), |i| level_sets[i].contains(t));
            if members.is_empty() {
                continue;
            }
            let rescued_here =
                sdp_skyline::rescue_order_partition(&features, &members, &mut keep, |part| {
                    self.skyline(part, threads)
                });
            order_rescued += rescued_here;
            #[cfg(feature = "trace")]
            ctx.tracer().emit_with(|| {
                sdp_trace::Event::new("order_partition")
                    .with("level", level)
                    .with("relation", t)
                    .with("members", members.len())
                    .with("rescued", rescued_here)
            });
        }

        // Per-hub completeness safeguard: if pruning eliminated every
        // JCR of some hub partition, resurrect that partition's
        // cheapest member so the hub region can still grow. Iterated
        // in sorted key order so the (rare) resurrection spans emit
        // deterministically.
        for key in &keys {
            let members = &partitions[key];
            if members.iter().any(|&i| keep[i]) {
                continue;
            }
            let best = members
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    features[a][1]
                        .partial_cmp(&features[b][1])
                        .expect("finite costs")
                })
                .expect("partition non-empty");
            keep[best] = true;
            #[cfg(feature = "trace")]
            ctx.tracer().emit_with(|| {
                sdp_trace::Event::new("partition_resurrect")
                    .with("level", level)
                    .with("hub", key.0)
                    .with("set", level_sets[best].0)
            });
        }

        self.last = PruneStats {
            partitions: keys.len() as u64,
            survivors: total_survivors,
            order_rescued,
        };

        let victims: Vec<RelSet> = (0..level_sets.len())
            .filter(|&i| !keep[i])
            .map(|i| level_sets[i])
            .collect();

        // Track hub-parents among the survivors for the next level.
        let survivors: Vec<RelSet> = (0..level_sets.len())
            .filter(|&i| keep[i])
            .map(|i| level_sets[i])
            .collect();
        self.refresh_hub_parents(ctx, &survivors);

        victims
    }

    /// Recompute the hub-parents from the survivors of the level just
    /// finished ("the identification of hub relations … is computed
    /// afresh in each iteration of SDP with the current version of
    /// the join graph").
    fn refresh_hub_parents(&mut self, ctx: &EnumContext<'_>, survivors: &[RelSet]) {
        if self.config.partitioning == Partitioning::ParentHub {
            self.hub_parents = hubs::hub_parents(ctx.graph(), survivors.iter());
        }
    }
}

impl LevelPruner for SdpPruner {
    fn prune(&mut self, ctx: &EnumContext<'_>, level: usize, level_sets: &[RelSet]) -> Vec<RelSet> {
        self.prune_level(ctx, level, level_sets)
    }

    fn last_prune_stats(&self) -> PruneStats {
        self.last
    }
}

/// Convenience: run SDP end-to-end within an existing context.
pub fn optimize_sdp(
    ctx: &mut EnumContext<'_>,
    config: SdpConfig,
) -> Result<std::sync::Arc<crate::plan::PlanNode>, crate::budget::OptError> {
    let mut pruner = SdpPruner::new(ctx, config);
    crate::dp::optimize_complete(ctx, Some(&mut pruner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    fn run(
        topo: Topology,
        seed: u64,
        config: SdpConfig,
        ordered: bool,
    ) -> (f64, crate::context::RunStats, f64) {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let gen = QueryGenerator::new(&cat, topo, seed);
        let q = if ordered {
            gen.ordered_instance(0)
        } else {
            gen.instance(0)
        };

        let mut sdp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let sdp_plan = optimize_sdp(&mut sdp_ctx, config).unwrap();
        let sdp_stats = sdp_ctx.stats();

        let mut dp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let dp_plan = optimize_complete(&mut dp_ctx, None).unwrap();

        (sdp_plan.cost, sdp_stats, dp_plan.cost)
    }

    #[test]
    fn sdp_never_prunes_chain_queries() {
        let (sdp_cost, stats, dp_cost) = run(Topology::Chain(8), 3, SdpConfig::paper(), false);
        assert_eq!(stats.jcrs_pruned, 0, "no hubs → no pruning");
        assert!((sdp_cost - dp_cost).abs() / dp_cost < 1e-9);
    }

    #[test]
    fn sdp_never_prunes_cycle_queries() {
        let (sdp_cost, stats, dp_cost) = run(Topology::Cycle(8), 4, SdpConfig::paper(), false);
        assert_eq!(stats.jcrs_pruned, 0);
        assert!((sdp_cost - dp_cost).abs() / dp_cost < 1e-9);
    }

    #[test]
    fn sdp_prunes_star_queries_strongly() {
        let (_, stats, _) = run(Topology::Star(9), 5, SdpConfig::paper(), false);
        assert!(stats.jcrs_pruned > 0, "stars must trigger pruning");
        assert!(!stats.completed_greedily);
    }

    #[test]
    fn sdp_star_quality_is_good() {
        // Over several instances: SDP cost within 2x of DP optimal
        // (the paper's "good plan" bound; usually it is ideal).
        for seed in 0..5 {
            let (sdp_cost, _, dp_cost) = run(Topology::Star(8), seed, SdpConfig::paper(), false);
            let ratio = sdp_cost / dp_cost;
            assert!((0.999..=2.0).contains(&ratio), "seed {seed}: ratio {ratio}");
        }
    }

    #[test]
    fn sdp_costs_fewer_plans_than_dp() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(10), 6).instance(0);
        let mut sdp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        optimize_sdp(&mut sdp_ctx, SdpConfig::paper()).unwrap();
        let mut dp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        optimize_complete(&mut dp_ctx, None).unwrap();
        assert!(
            sdp_ctx.stats().plans_costed * 2 < dp_ctx.stats().plans_costed,
            "SDP {} vs DP {}",
            sdp_ctx.stats().plans_costed,
            dp_ctx.stats().plans_costed
        );
    }

    #[test]
    fn option1_keeps_more_jcrs_than_option2() {
        // Aggregated over instances (single instances can tie): the
        // pairwise-union skyline (Option 2) processes fewer JCRs than
        // the full-vector skyline (Option 1) — paper Table 2.3.
        let cfg1 = SdpConfig {
            skyline: SkylineOption::FullVector,
            ..SdpConfig::paper()
        };
        let (mut p1, mut p2) = (0u64, 0u64);
        for seed in 0..5 {
            let (_, s1, _) = run(Topology::star_chain(11), seed, cfg1, false);
            let (_, s2, _) = run(Topology::star_chain(11), seed, SdpConfig::paper(), false);
            p1 += s1.jcrs_processed;
            p2 += s2.jcrs_processed;
        }
        assert!(
            p2 < p1,
            "Option 2 processed {p2} JCRs, Option 1 {p1}; expected Option 2 to prune harder"
        );
    }

    #[test]
    fn parent_hub_variant_works() {
        let cfg = SdpConfig {
            partitioning: Partitioning::ParentHub,
            ..SdpConfig::paper()
        };
        for seed in 0..3 {
            let (sdp_cost, stats, dp_cost) = run(Topology::star_chain(9), seed, cfg, false);
            assert!(stats.jcrs_pruned > 0);
            assert!(sdp_cost / dp_cost < 2.0, "seed {seed}");
        }
    }

    #[test]
    fn global_variant_prunes_chains_too() {
        let cfg = SdpConfig {
            partitioning: Partitioning::Global,
            ..SdpConfig::paper()
        };
        let (_, stats, _) = run(Topology::Chain(9), 2, cfg, false);
        assert!(stats.jcrs_pruned > 0, "global pruning ignores hubs");
    }

    #[test]
    fn k_dominant_variant_completes() {
        let cfg = SdpConfig {
            skyline: SkylineOption::KDominant(2),
            ..SdpConfig::paper()
        };
        let (sdp_cost, _, dp_cost) = run(Topology::Star(8), 9, cfg, false);
        assert!(sdp_cost / dp_cost < 10.0);
    }

    #[test]
    fn ordered_star_sdp_close_to_dp() {
        for seed in 0..3 {
            let (sdp_cost, _, dp_cost) = run(Topology::Star(7), seed, SdpConfig::paper(), true);
            assert!(sdp_cost / dp_cost < 2.0, "seed {seed}");
        }
    }

    #[test]
    fn sdp_parallel_matches_sequential() {
        // Parallel level enumeration + parallel partition skylines
        // must leave every observable counter and the chosen plan
        // bit-identical to the sequential run.
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::star_chain(13), 3).instance(0);
        let run_threads = |threads: usize| {
            let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
            ctx.set_parallelism(threads);
            let plan = optimize_sdp(&mut ctx, SdpConfig::paper()).unwrap();
            let s = ctx.stats();
            (
                plan.cost.to_bits(),
                s.plans_costed,
                s.jcrs_processed,
                s.jcrs_pruned,
            )
        };
        let sequential = run_threads(1);
        assert_eq!(sequential, run_threads(2));
        assert_eq!(sequential, run_threads(4));
    }

    #[test]
    fn sdp_is_enumerator_invariant() {
        // Candidate-pair generation strategy must not change what SDP
        // retains: DPccp emits the same joinable pairs as the level
        // scan (in a different order), and the memo's cost frontier is
        // insertion-order-insensitive, so plan cost and every counter
        // must match bit-for-bit.
        use crate::enumerate::EnumeratorKind;
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        for topo in [
            Topology::star_chain(12),
            Topology::Star(9),
            Topology::Cycle(9),
        ] {
            let q = QueryGenerator::new(&cat, topo, 7).instance(0);
            let run_kind = |kind: EnumeratorKind| {
                let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
                ctx.set_enumerator(kind);
                let plan = optimize_sdp(&mut ctx, SdpConfig::paper()).unwrap();
                let s = ctx.stats();
                (
                    plan.cost.to_bits(),
                    s.plans_costed,
                    s.jcrs_processed,
                    s.jcrs_pruned,
                )
            };
            let scan = run_kind(EnumeratorKind::LevelScan);
            assert_eq!(scan, run_kind(EnumeratorKind::Dpccp), "{topo:?}");
        }
    }

    #[test]
    fn star_chain_sdp_matches_paper_quality_band() {
        // The headline claim: Star-Chain SDP is ideal (ratio ≤ 1.01)
        // for the substantial majority of instances and never worse
        // than 2x. Checked over a handful here; the harness checks
        // 100.
        let mut ideal = 0;
        let total = 6;
        for seed in 0..total {
            let (sdp_cost, _, dp_cost) =
                run(Topology::star_chain(10), seed, SdpConfig::paper(), false);
            let ratio = sdp_cost / dp_cost;
            assert!(ratio < 2.0, "seed {seed}: ratio {ratio}");
            if ratio <= 1.01 {
                ideal += 1;
            }
        }
        assert!(ideal * 2 >= total, "only {ideal}/{total} ideal");
    }
}
