//! Iterative Dynamic Programming — the paper's main competitor.
//!
//! The paper benchmarks against "the best overall performer in
//! [Kossmann & Stocker]" — the **IDP1-balanced-bestRow** variant "with
//! a hybrid plan evaluation function that selects 5% of the subplans
//! based on Minimum Intermediate Result (MinRows) … for ballooning to
//! complete plans, and during ballooning again uses the Minimum
//! Intermediate Result plan evaluation function". `k` sets the number
//! of DP levels per iteration; the paper uses `k = 4` and `k = 7`.
//!
//! One iteration:
//!
//! 1. run exhaustive DP over the current atoms up to the (balanced)
//!    block size;
//! 2. pick the top 5 % of the block-size JCRs by MinRows;
//! 3. *balloon* each pick to a complete plan by greedily appending the
//!    MinRows-adjacent atom at every step;
//! 4. commit the pick whose ballooned completion is cheapest, contract
//!    it into a compound atom, discard every other memo entry, and
//!    restart.
//!
//! "Balanced" means the block size is evened out so the final
//! iteration is not a stub: with `r` atoms remaining, the iteration
//! count is fixed at `⌈(r−1)/(k−1)⌉` and the per-iteration block size
//! re-derived from it.

use std::sync::Arc;

use sdp_query::RelSet;

use crate::budget::OptError;
use crate::context::EnumContext;
use crate::dp::run_levels;
use crate::fx::FxHashSet;
use crate::plan::PlanNode;

/// IDP tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdpConfig {
    /// Number of DP levels per iteration (the paper's `k`).
    pub k: usize,
    /// Fraction of block-size subplans selected for ballooning
    /// (paper: 5 %).
    pub selection_fraction: f64,
    /// Balloon the selected blocks to complete plans before
    /// committing (the `bestRow`-hybrid of the paper). `false` gives
    /// Kossmann's *standard* IDP1: commit the MinRows-best block
    /// directly — kept as an ablation showing why the paper calls the
    /// ballooning variant "the best overall performer".
    pub ballooning: bool,
}

impl IdpConfig {
    /// The paper's configuration for a given `k` (4 or 7 in the
    /// evaluation).
    pub fn paper(k: usize) -> Self {
        assert!(k >= 2, "IDP needs k >= 2");
        IdpConfig {
            k,
            selection_fraction: 0.05,
            ballooning: true,
        }
    }

    /// Kossmann's standard IDP1 (no ballooning).
    pub fn standard(k: usize) -> Self {
        IdpConfig {
            ballooning: false,
            ..IdpConfig::paper(k)
        }
    }
}

/// Balanced block size for `r` remaining atoms under parameter `k`.
///
/// Iterations = `⌈(r−1)/(k−1)⌉` (each iteration contracts `bk` atoms
/// into one, reducing the count by `bk − 1`); the balanced block size
/// spreads the reduction evenly.
pub fn balanced_block_size(r: usize, k: usize) -> usize {
    debug_assert!(k >= 2);
    if r <= k {
        return r;
    }
    let iterations = (r - 1).div_ceil(k - 1);
    (1 + (r - 1).div_ceil(iterations)).min(r)
}

/// Optimize with IDP1-balanced-bestRow.
pub fn optimize_idp(
    ctx: &mut EnumContext<'_>,
    config: IdpConfig,
) -> Result<Arc<PlanNode>, OptError> {
    let n = ctx.graph().len();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let all = ctx.graph().all_nodes();
    if !ctx.graph().is_connected(all) {
        return Err(OptError::DisconnectedJoinGraph);
    }

    let mut atoms: Vec<RelSet> = (0..n).map(RelSet::single).collect();
    for i in 0..n {
        ctx.ensure_base_group(i);
    }
    ctx.memory.check()?;

    loop {
        let r = atoms.len();
        let bk = balanced_block_size(r, config.k);
        let table = run_levels(ctx, &atoms, bk, None)?;
        if bk == r {
            return ctx.finalize(all);
        }

        // --- candidate selection: top 5 % by MinRows -------------------
        let mut candidates: Vec<RelSet> = table.sets_at(bk).collect();
        debug_assert!(!candidates.is_empty(), "connected graph has full blocks");
        candidates.sort_by(|&a, &b| {
            let ra = ctx.memo.get(a).expect("live").rows;
            let rb = ctx.memo.get(b).expect("live").rows;
            ra.partial_cmp(&rb).expect("finite rows")
        });
        let take = ((candidates.len() as f64 * config.selection_fraction).ceil() as usize)
            .clamp(1, candidates.len());
        candidates.truncate(take);

        // --- balloon each candidate, commit the best completion --------
        let mut winner: Option<(RelSet, f64)> = None;
        for &cand in &candidates {
            let mir = balloon_mir(ctx, cand, &atoms, all)?;
            if winner.is_none_or(|(_, m)| mir < m) {
                winner = Some((cand, mir));
            }
        }
        let (winner_set, _) = winner.expect("at least one candidate");

        // --- contract: winner becomes a compound atom -------------------
        let remaining: Vec<RelSet> = atoms
            .iter()
            .copied()
            .filter(|a| a.is_disjoint(winner_set))
            .collect();
        let mut keep: FxHashSet<RelSet> = remaining.iter().copied().collect();
        keep.insert(winner_set);
        let to_drop: Vec<RelSet> = ctx.memo.sets().filter(|s| !keep.contains(s)).collect();
        for s in to_drop {
            ctx.prune_group(s);
        }
        atoms = std::iter::once(winner_set).chain(remaining).collect();
        ctx.memory.check()?;
    }
}

/// Greedily complete `start` to `all` by repeatedly appending the
/// MinRows-best adjacent atom, and return the completion's **Minimum
/// Intermediate Result** score: the sum of the intermediate result
/// cardinalities along the way.
///
/// This is deliberately cost-blind, as the paper specifies — both the
/// ballooning steps and the evaluation of the ballooned plan use "the
/// Minimum Intermediate Result plan evaluation function", i.e. pure
/// cardinalities. No plans are constructed or costed: ballooning only
/// *selects* the block to commit; the committed block's plans come
/// from the preceding exhaustive DP.
fn balloon_mir(
    ctx: &mut EnumContext<'_>,
    start: RelSet,
    atoms: &[RelSet],
    all: RelSet,
) -> Result<f64, OptError> {
    let graph = ctx.graph();
    let est = ctx.model().estimator();
    let mut cur = start;
    let mut mir = 0.0;
    while cur != all {
        let mut best: Option<(f64, RelSet)> = None;
        for &a in atoms {
            if !a.is_disjoint(cur) || !graph.sets_connected(cur, a) {
                continue;
            }
            let rows = est.rows_for_set(graph, cur | a);
            if best.is_none_or(|(r, _)| rows < r) {
                best = Some((rows, a));
            }
        }
        let (rows, next) = best.ok_or(OptError::DisconnectedJoinGraph)?;
        mir += rows;
        cur = cur | next;
    }
    Ok(mir)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::dp::optimize_complete;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn balanced_block_sizes_match_hand_computation() {
        // r = 15, k = 7: 3 iterations, blocks of 6.
        assert_eq!(balanced_block_size(15, 7), 6);
        // Small remainder folds into one final full DP.
        assert_eq!(balanced_block_size(5, 7), 5);
        assert_eq!(balanced_block_size(7, 7), 7);
        // r = 10, k = 4: ceil(9/3) = 3 iterations, blocks of 4.
        assert_eq!(balanced_block_size(10, 4), 4);
        // Never exceeds r.
        for r in 2..30 {
            for k in 2..10 {
                let b = balanced_block_size(r, k);
                assert!(b >= 2 && b <= r, "r={r} k={k} b={b}");
            }
        }
    }

    fn costs(topo: Topology, seed: u64, k: usize) -> (f64, f64) {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, topo, seed).instance(0);
        let mut idp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let idp = optimize_idp(&mut idp_ctx, IdpConfig::paper(k)).unwrap();
        let mut dp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let dp = optimize_complete(&mut dp_ctx, None).unwrap();
        (idp.cost, dp.cost)
    }

    #[test]
    fn standard_variant_runs_and_never_beats_hybrid_by_much() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::star_chain(10), 6).instance(0);
        let mut std_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let std_plan = optimize_idp(&mut std_ctx, IdpConfig::standard(4)).unwrap();
        std_plan.check_invariants().unwrap();
        let mut dp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let dp = optimize_complete(&mut dp_ctx, None).unwrap();
        assert!(std_plan.cost >= dp.cost * (1.0 - 1e-9));
    }

    #[test]
    fn idp_equals_dp_when_query_fits_one_block() {
        let (idp, dp) = costs(Topology::star_chain(6), 3, 7);
        assert!((idp - dp).abs() / dp < 1e-9, "idp {idp} dp {dp}");
    }

    #[test]
    fn idp_plans_are_valid_and_complete() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        for topo in [
            Topology::Star(10),
            Topology::star_chain(10),
            Topology::Chain(10),
        ] {
            let q = QueryGenerator::new(&cat, topo, 5).instance(0);
            let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
            let plan = optimize_idp(&mut ctx, IdpConfig::paper(4)).unwrap();
            assert_eq!(plan.set, q.graph.all_nodes(), "{topo}");
            plan.check_invariants().unwrap();
            assert_eq!(plan.join_count(), 9);
        }
    }

    #[test]
    fn idp_never_beats_dp() {
        for seed in 0..4 {
            let (idp, dp) = costs(Topology::Star(9), seed, 4);
            assert!(idp >= dp * (1.0 - 1e-9), "seed {seed}: idp {idp} dp {dp}");
        }
    }

    #[test]
    fn idp_costs_fewer_plans_than_dp_on_stars() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(11), 2).instance(0);
        let mut idp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        optimize_idp(&mut idp_ctx, IdpConfig::paper(4)).unwrap();
        let mut dp_ctx = EnumContext::new(&q, &model, Budget::unlimited());
        optimize_complete(&mut dp_ctx, None).unwrap();
        assert!(idp_ctx.stats().plans_costed < dp_ctx.stats().plans_costed);
    }

    #[test]
    fn idp_ordered_query_roots_are_ordered() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(8), 6).ordered_instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_idp(&mut ctx, IdpConfig::paper(4)).unwrap();
        assert_eq!(plan.ordering, ctx.order_target());
    }

    #[test]
    fn idp_memory_is_reclaimed_between_iterations() {
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let q = QueryGenerator::new(&cat, Topology::Star(12), 7).instance(0);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        optimize_idp(&mut ctx, IdpConfig::paper(4)).unwrap();
        // After the run, the memo holds far fewer groups than were
        // ever created — contraction dropped the rest.
        assert!(ctx.memo.len() as u64 * 4 < ctx.memo.jcrs_created());
    }
}
