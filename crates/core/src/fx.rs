//! A small FxHash-style hasher for `RelSet`-keyed maps.
//!
//! The memo is the hottest data structure in every enumerator and its
//! keys are single `u64` bitsets; SipHash would dominate profile time.
//! This is the Firefox/rustc multiply-rotate hash, implemented locally
//! (≈ 30 lines) instead of pulling an extra dependency.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (the rustc "Fx" algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Not a cryptographic requirement — just sanity that we are
        // not degenerate.
        assert!(seen.len() > 9_990);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(42, "answer");
        m.insert(0, "zero");
        assert_eq!(m.get(&42), Some(&"answer"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn byte_writes_consistent_with_word_writes() {
        let mut a = FxHasher::default();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = FxHasher::default();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
