//! Physical plan trees.
//!
//! Plans are immutable `Arc` trees: subplans are shared between every
//! memo group that references them, and pruning a group (SDP's whole
//! point) drops its `Arc`s, transparently freeing any node no longer
//! reachable — which is what makes the memory-overhead measurements
//! (paper Tables 1.2, 1.4, 2.1, 3.2, 3.3) meaningful. `Arc` (rather
//! than `Rc`) makes plans `Send + Sync`, so the level-wise enumerator
//! can build candidate plans on worker threads and merge them at the
//! level barrier.
//!
//! A per-run [`NodeCounter`] tracks exactly how many plan nodes of
//! that run are alive at any instant; [`crate::budget::MemoryModel`]
//! converts that (plus the group count) into paper-equivalent
//! megabytes. The counter is a shared atomic, so nodes created on
//! worker threads charge the same budget as nodes created on the
//! coordinating thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sdp_catalog::{ColId, RelId};
use sdp_cost::JoinMethod;
use sdp_query::{ClassId, RelSet};

/// Shared live-node counter for one optimization run.
///
/// Every [`PlanNode`] holds a handle to the counter it was created
/// under and decrements it on drop, so the count is exact regardless
/// of which thread allocates or frees a node. Cloning the handle
/// shares the underlying atomic.
#[derive(Debug, Clone, Default)]
pub struct NodeCounter(Arc<AtomicU64>);

impl NodeCounter {
    /// A fresh counter starting at zero.
    pub fn new() -> Self {
        NodeCounter::default()
    }

    /// Number of plan nodes currently alive under this counter.
    pub fn live(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn increment(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    fn decrement(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The operator at a plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    // Variant tags below (see `stable_tag`) are part of the persisted
    // plan format and the structural digest — never renumber.
    /// Sequential scan of a base relation.
    SeqScan {
        /// Catalog relation scanned.
        rel: RelId,
        /// Query-local node index.
        node: usize,
    },
    /// Full index-order scan of a base relation.
    IndexScan {
        /// Catalog relation scanned.
        rel: RelId,
        /// Query-local node index.
        node: usize,
        /// Indexed column providing the output order.
        col: ColId,
    },
    /// Binary join (children: outer, inner).
    Join {
        /// Physical join algorithm.
        method: JoinMethod,
    },
    /// Explicit sort enforcing an output order (child: input).
    Sort {
        /// Order class enforced.
        class: ClassId,
    },
}

impl PlanOp {
    /// Stable numeric tag identifying the operator kind, shared by
    /// [`PlanNode::structural_digest`] and the `sdp-store` binary
    /// codec so a decoded plan digests identically to the original.
    pub fn stable_tag(&self) -> u8 {
        match self {
            PlanOp::SeqScan { .. } => 1,
            PlanOp::IndexScan { .. } => 2,
            PlanOp::Join { .. } => 3,
            PlanOp::Sort { .. } => 4,
        }
    }
}

/// One node of a physical plan tree, annotated with the estimated
/// properties the optimizer derived for it.
#[derive(Debug)]
pub struct PlanNode {
    /// Operator.
    pub op: PlanOp,
    /// Base relations covered by this subtree.
    pub set: RelSet,
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost.
    pub cost: f64,
    /// Order class of the output, if any.
    pub ordering: Option<ClassId>,
    /// Children (empty for scans, `[outer, inner]` for joins,
    /// `[input]` for sorts).
    pub children: Vec<Arc<PlanNode>>,
    counter: NodeCounter,
}

impl PlanNode {
    /// Construct a node (increments `counter`; the node decrements it
    /// again when dropped).
    pub fn new(
        counter: &NodeCounter,
        op: PlanOp,
        set: RelSet,
        rows: f64,
        cost: f64,
        ordering: Option<ClassId>,
        children: Vec<Arc<PlanNode>>,
    ) -> Arc<Self> {
        debug_assert!(rows.is_finite() && rows >= 0.0, "rows = {rows}");
        debug_assert!(cost.is_finite() && cost >= 0.0, "cost = {cost}");
        counter.increment();
        Arc::new(PlanNode {
            op,
            set,
            rows,
            cost,
            ordering,
            children,
            counter: counter.clone(),
        })
    }

    /// The live-node counter this node charges. Useful for asserting
    /// that a run's plans were fully reclaimed: clone the handle, drop
    /// the plan, and check [`NodeCounter::live`] returns to zero.
    pub fn counter(&self) -> NodeCounter {
        self.counter.clone()
    }

    /// Number of nodes in this subtree.
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.node_count()).sum::<usize>()
    }

    /// Depth of the tree (a scan has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(|c| c.depth()).max().unwrap_or(0)
    }

    /// Number of join operators in the subtree.
    pub fn join_count(&self) -> usize {
        let own = usize::from(matches!(self.op, PlanOp::Join { .. }));
        own + self.children.iter().map(|c| c.join_count()).sum::<usize>()
    }

    /// Whether the tree is *bushy* — some join has two composite
    /// (non-scan) children.
    pub fn is_bushy(&self) -> bool {
        let here = matches!(self.op, PlanOp::Join { .. })
            && self.children.iter().all(|c| c.set.len() >= 2);
        here || self.children.iter().any(|c| c.is_bushy())
    }

    /// Stable structural digest of the plan tree: operator identity,
    /// relation sets, estimated rows/cost (as exact bit patterns) and
    /// orderings, folded bottom-up with a platform-independent hash.
    /// Two plans digest equal iff a recursive field-by-field
    /// comparison would find them identical, so the service layer and
    /// the determinism tests use it to assert "bit-identical plan"
    /// without walking two trees in lockstep.
    pub fn structural_digest(&self) -> u64 {
        let tag = self.op.stable_tag() as u64;
        let op_words: [u64; 4] = match self.op {
            PlanOp::SeqScan { rel, node } => [tag, rel.0 as u64, node as u64, 0],
            PlanOp::IndexScan { rel, node, col } => [tag, rel.0 as u64, node as u64, col.0 as u64],
            PlanOp::Join { method } => [tag, method.stable_tag() as u64, 0, 0],
            PlanOp::Sort { class } => [tag, class as u64, 0, 0],
        };
        let mut h = sdp_query::canon::StableHasher::new(0x70_6c_61_6e);
        for w in op_words {
            h.write_u64(w);
        }
        h.write_u64(self.set.0);
        h.write_u64(self.rows.to_bits());
        h.write_u64(self.cost.to_bits());
        h.write_u64(match self.ordering {
            None => u64::MAX,
            Some(c) => c as u64,
        });
        h.write_u64(self.children.len() as u64);
        for c in &self.children {
            h.write_u64(c.structural_digest());
        }
        h.finish()
    }

    /// Validate structural invariants of the subtree; returns a
    /// description of the first violation. Used by integration tests
    /// and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        match &self.op {
            PlanOp::SeqScan { node, .. } | PlanOp::IndexScan { node, .. } => {
                if self.set != RelSet::single(*node) {
                    return Err(format!("scan set {:?} != node {node}", self.set));
                }
                if !self.children.is_empty() {
                    return Err("scan with children".into());
                }
            }
            PlanOp::Join { method } => {
                if self.children.len() != 2 {
                    return Err("join without two children".into());
                }
                let (l, r) = (&self.children[0], &self.children[1]);
                if !l.set.is_disjoint(r.set) {
                    return Err(format!("overlapping join inputs {:?} {:?}", l.set, r.set));
                }
                if (l.set | r.set) != self.set {
                    return Err("join set != union of children".into());
                }
                // An index nested-loop replaces the inner child's scan
                // with per-tuple index probes, so only the outer
                // child's cost is necessarily included.
                let floor = if *method == JoinMethod::IndexNestedLoop {
                    l.cost
                } else {
                    l.cost + r.cost
                };
                if self.cost + 1e-6 < floor {
                    return Err(format!(
                        "join cost {} below input cost floor {floor}",
                        self.cost
                    ));
                }
            }
            PlanOp::Sort { class } => {
                if self.children.len() != 1 {
                    return Err("sort without single child".into());
                }
                if self.ordering != Some(*class) {
                    return Err("sort not ordered by its class".into());
                }
                if self.set != self.children[0].set {
                    return Err("sort changes relation set".into());
                }
            }
        }
        for c in &self.children {
            c.check_invariants()?;
        }
        Ok(())
    }
}

impl Drop for PlanNode {
    fn drop(&mut self) {
        self.counter.decrement();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(counter: &NodeCounter, node: usize, cost: f64) -> Arc<PlanNode> {
        PlanNode::new(
            counter,
            PlanOp::SeqScan {
                rel: RelId(node as u32),
                node,
            },
            RelSet::single(node),
            100.0,
            cost,
            None,
            vec![],
        )
    }

    fn join(counter: &NodeCounter, l: Arc<PlanNode>, r: Arc<PlanNode>) -> Arc<PlanNode> {
        let set = l.set | r.set;
        let cost = l.cost + r.cost + 1.0;
        PlanNode::new(
            counter,
            PlanOp::Join {
                method: JoinMethod::Hash,
            },
            set,
            50.0,
            cost,
            None,
            vec![l, r],
        )
    }

    #[test]
    fn live_counter_tracks_creation_and_drop() {
        let counter = NodeCounter::new();
        {
            let a = scan(&counter, 0, 1.0);
            let b = scan(&counter, 1, 1.0);
            let j = join(&counter, a, b);
            assert_eq!(counter.live(), 3);
            drop(j); // drops all three (children moved into the join)
        }
        assert_eq!(counter.live(), 0);
    }

    #[test]
    fn shared_subplans_freed_only_when_unreachable() {
        let counter = NodeCounter::new();
        let shared = scan(&counter, 0, 1.0);
        let j1 = join(&counter, shared.clone(), scan(&counter, 1, 1.0));
        let j2 = join(&counter, shared.clone(), scan(&counter, 2, 1.0));
        drop(shared);
        assert_eq!(counter.live(), 5);
        drop(j1);
        assert_eq!(counter.live(), 3); // shared survives via j2
        drop(j2);
        assert_eq!(counter.live(), 0);
    }

    #[test]
    fn counter_is_shared_across_threads() {
        let counter = NodeCounter::new();
        let plans: Vec<Arc<PlanNode>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let counter = &counter;
                    scope.spawn(move || scan(counter, t, 1.0))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counter.live(), 4);
        drop(plans);
        assert_eq!(counter.live(), 0);
    }

    #[test]
    fn tree_shape_metrics() {
        let c = NodeCounter::new();
        let left = join(&c, scan(&c, 0, 1.0), scan(&c, 1, 1.0));
        let right = join(&c, scan(&c, 2, 1.0), scan(&c, 3, 1.0));
        let bushy = join(&c, left, right);
        assert_eq!(bushy.node_count(), 7);
        assert_eq!(bushy.join_count(), 3);
        assert_eq!(bushy.depth(), 3);
        assert!(bushy.is_bushy());

        let ld = join(
            &c,
            join(&c, scan(&c, 0, 1.0), scan(&c, 1, 1.0)),
            scan(&c, 2, 1.0),
        );
        assert!(!ld.is_bushy());
    }

    #[test]
    fn invariants_accept_valid_trees() {
        let c = NodeCounter::new();
        let t = join(&c, scan(&c, 0, 1.0), scan(&c, 1, 2.0));
        assert!(t.check_invariants().is_ok());
    }

    #[test]
    fn invariants_reject_overlapping_join() {
        let c = NodeCounter::new();
        let a = scan(&c, 0, 1.0);
        let bad = PlanNode::new(
            &c,
            PlanOp::Join {
                method: JoinMethod::Hash,
            },
            RelSet::single(0),
            1.0,
            10.0,
            None,
            vec![a.clone(), a],
        );
        assert!(bad.check_invariants().is_err());
    }

    #[test]
    fn structural_digest_separates_equal_from_different() {
        let c = NodeCounter::new();
        let a = join(&c, scan(&c, 0, 1.0), scan(&c, 1, 2.0));
        let b = join(&c, scan(&c, 0, 1.0), scan(&c, 1, 2.0));
        assert_eq!(a.structural_digest(), b.structural_digest());

        // A different child cost propagates into the root digest.
        let costlier = join(&c, scan(&c, 0, 1.0), scan(&c, 1, 3.0));
        assert_ne!(a.structural_digest(), costlier.structural_digest());

        // A different join method changes the digest even with
        // identical sets, rows and costs.
        let merge = PlanNode::new(
            &c,
            PlanOp::Join {
                method: JoinMethod::Merge,
            },
            a.set,
            a.rows,
            a.cost,
            None,
            vec![scan(&c, 0, 1.0), scan(&c, 1, 2.0)],
        );
        assert_ne!(a.structural_digest(), merge.structural_digest());

        // Child order matters (join inputs are positional).
        let swapped = join(&c, scan(&c, 1, 2.0), scan(&c, 0, 1.0));
        assert_ne!(a.structural_digest(), swapped.structural_digest());
    }

    #[test]
    fn invariants_reject_cost_regression() {
        let c = NodeCounter::new();
        let a = scan(&c, 0, 10.0);
        let b = scan(&c, 1, 10.0);
        let bad = PlanNode::new(
            &c,
            PlanOp::Join {
                method: JoinMethod::Hash,
            },
            RelSet::from_indices([0, 1]),
            1.0,
            5.0, // cheaper than its inputs: impossible
            None,
            vec![a, b],
        );
        assert!(bad.check_invariants().is_err());
    }
}
