//! The memo: per-JCR groups of Pareto-optimal plans.
//!
//! A *Join-Composite-Relation* (JCR) in the paper is "any group of
//! relations that are joined together during the optimization
//! process … associated with a set of plans — the lowest cost plan …
//! and also the incomparable plans that produce interesting orders".
//! [`Group`] is exactly that: the cheapest plan per output ordering,
//! kept under a dominance rule (a plan is dominated if another is no
//! more expensive *and* provides an ordering at least as useful).
//!
//! The group also carries the JCR feature vector
//! `[Rows, Cost, Selectivity]` that SDP's skyline pruning consumes
//! (paper Figure 2.3).

use std::sync::Arc;

use sdp_query::{ClassId, RelSet};

use crate::fx::FxHashMap;
use crate::plan::PlanNode;

/// All Pareto-optimal plans for one JCR, plus its estimated
/// properties.
#[derive(Debug, Clone)]
pub struct Group {
    /// The base relations this JCR covers.
    pub set: RelSet,
    /// Estimated output rows (identical for every plan of the group).
    pub rows: f64,
    /// The paper's JCR selectivity: `rows / Π |base relations|`.
    pub selectivity: f64,
    /// Estimated tuple width in bytes.
    pub width: f64,
    /// Cached external neighbourhood in the join graph.
    pub neighbors: RelSet,
    entries: Vec<Arc<PlanNode>>,
}

impl Group {
    /// Create an empty group with known estimated properties.
    pub fn new(set: RelSet, rows: f64, selectivity: f64, width: f64, neighbors: RelSet) -> Self {
        Group {
            set,
            rows,
            selectivity,
            width,
            neighbors,
            entries: Vec::with_capacity(2),
        }
    }

    /// Whether `a` makes `b` redundant: no more expensive, and
    /// provides an ordering at least as useful (`b` unordered, or the
    /// same ordering).
    fn entry_dominates(a: &PlanNode, b: &PlanNode) -> bool {
        a.cost <= b.cost && (b.ordering.is_none() || a.ordering == b.ordering)
    }

    /// Offer a plan to the group. Returns `true` if it was retained
    /// (and any newly-dominated entries were evicted).
    pub fn add_plan(&mut self, plan: Arc<PlanNode>) -> bool {
        debug_assert_eq!(plan.set, self.set, "plan covers a different JCR");
        if self.entries.iter().any(|e| Self::entry_dominates(e, &plan)) {
            return false;
        }
        self.entries.retain(|e| !Self::entry_dominates(&plan, e));
        self.entries.push(plan);
        true
    }

    /// Whether a plan with the given cost and ordering would be
    /// retained if offered — the dominance test of [`Group::add_plan`]
    /// without constructing the node. The enumerator uses this to skip
    /// allocating candidates that are already dominated.
    pub fn would_retain(&self, cost: f64, ordering: Option<ClassId>) -> bool {
        !self
            .entries
            .iter()
            .any(|e| e.cost <= cost && (ordering.is_none() || e.ordering == ordering))
    }

    /// The cheapest plan in the group.
    ///
    /// # Panics
    /// Panics if the group is empty (groups are always populated
    /// before being published to the memo).
    pub fn best(&self) -> &Arc<PlanNode> {
        self.entries
            .iter()
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
            .expect("group has at least one plan")
    }

    /// Cost of the cheapest plan.
    pub fn best_cost(&self) -> f64 {
        self.best().cost
    }

    /// Cheapest plan whose output carries the given order class.
    pub fn best_for_order(&self, class: ClassId) -> Option<&Arc<PlanNode>> {
        self.entries
            .iter()
            .filter(|e| e.ordering == Some(class))
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
    }

    /// All retained plans.
    pub fn entries(&self) -> &[Arc<PlanNode>] {
        &self.entries
    }

    /// Whether no plan has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The SDP feature vector `[Rows, Cost, Selectivity]` of
    /// Figure 2.3.
    pub fn feature_vector(&self) -> [f64; 3] {
        [self.rows, self.best_cost(), self.selectivity]
    }
}

/// The memo table: JCR set → group.
#[derive(Debug, Default)]
pub struct Memo {
    groups: FxHashMap<RelSet, Group>,
    /// Total number of distinct JCRs ever materialized (the paper's
    /// "JCRs processed" metric, Table 2.3).
    created: u64,
}

impl Memo {
    /// Empty memo.
    pub fn new() -> Self {
        Memo::default()
    }

    /// Number of live groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total JCRs ever created (not reduced by pruning).
    pub fn jcrs_created(&self) -> u64 {
        self.created
    }

    /// Fetch a group.
    pub fn get(&self, set: RelSet) -> Option<&Group> {
        self.groups.get(&set)
    }

    /// Fetch a group mutably.
    pub fn get_mut(&mut self, set: RelSet) -> Option<&mut Group> {
        self.groups.get_mut(&set)
    }

    /// Insert a new group. Returns `false` (and keeps the old group)
    /// if the set is already present.
    pub fn insert(&mut self, group: Group) -> bool {
        let set = group.set;
        if self.groups.contains_key(&set) {
            return false;
        }
        self.created += 1;
        self.groups.insert(set, group);
        true
    }

    /// Remove a group (SDP pruning), returning it if present.
    pub fn remove(&mut self, set: RelSet) -> Option<Group> {
        self.groups.remove(&set)
    }

    /// Drop every group, e.g. between IDP iterations.
    pub fn clear(&mut self) {
        self.groups.clear();
    }

    /// Iterate over the live JCR sets (arbitrary order).
    pub fn sets(&self) -> impl Iterator<Item = RelSet> + '_ {
        self.groups.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{NodeCounter, PlanOp};
    use sdp_catalog::RelId;

    fn plan(set: RelSet, cost: f64, ordering: Option<ClassId>) -> Arc<PlanNode> {
        PlanNode::new(
            &NodeCounter::new(),
            PlanOp::SeqScan {
                rel: RelId(0),
                node: set.min_index().unwrap(),
            },
            set,
            10.0,
            cost,
            ordering,
            vec![],
        )
    }

    fn group() -> Group {
        Group::new(RelSet::single(0), 10.0, 1.0, 100.0, RelSet::EMPTY)
    }

    #[test]
    fn cheapest_unordered_plan_wins() {
        let mut g = group();
        assert!(g.add_plan(plan(g.set, 10.0, None)));
        assert!(!g.add_plan(plan(g.set, 20.0, None))); // dominated
        assert!(g.add_plan(plan(g.set, 5.0, None))); // evicts
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.best_cost(), 5.0);
    }

    #[test]
    fn ordered_plans_survive_despite_higher_cost() {
        let mut g = group();
        g.add_plan(plan(g.set, 10.0, None));
        assert!(g.add_plan(plan(g.set, 15.0, Some(3))));
        assert_eq!(g.entries().len(), 2);
        assert_eq!(g.best_cost(), 10.0);
        assert_eq!(g.best_for_order(3).unwrap().cost, 15.0);
        assert!(g.best_for_order(4).is_none());
    }

    #[test]
    fn cheap_ordered_plan_dominates_unordered() {
        let mut g = group();
        g.add_plan(plan(g.set, 10.0, None));
        assert!(g.add_plan(plan(g.set, 8.0, Some(1))));
        // The ordered plan is cheaper AND ordered: unordered evicted.
        assert_eq!(g.entries().len(), 1);
        assert_eq!(g.best().ordering, Some(1));
    }

    #[test]
    fn distinct_orders_coexist() {
        let mut g = group();
        g.add_plan(plan(g.set, 10.0, Some(1)));
        g.add_plan(plan(g.set, 10.0, Some(2)));
        assert_eq!(g.entries().len(), 2);
    }

    #[test]
    fn feature_vector_matches_definition() {
        let mut g = Group::new(RelSet::single(0), 184_736.0, 2.54e-10, 64.0, RelSet::EMPTY);
        g.add_plan(plan(g.set, 57_726.0, None));
        let fv = g.feature_vector();
        assert_eq!(fv, [184_736.0, 57_726.0, 2.54e-10]);
    }

    #[test]
    fn memo_insert_get_remove() {
        let mut m = Memo::new();
        let mut g = group();
        g.add_plan(plan(g.set, 1.0, None));
        assert!(m.insert(g.clone()));
        assert!(!m.insert(g)); // duplicate rejected
        assert_eq!(m.len(), 1);
        assert_eq!(m.jcrs_created(), 1);
        assert!(m.get(RelSet::single(0)).is_some());
        assert!(m.remove(RelSet::single(0)).is_some());
        assert!(m.is_empty());
        // Created counter is not decremented by pruning.
        assert_eq!(m.jcrs_created(), 1);
    }

    #[test]
    fn memo_clear_resets_groups_not_counter() {
        let mut m = Memo::new();
        let mut g = group();
        g.add_plan(plan(g.set, 1.0, None));
        m.insert(g);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.jcrs_created(), 1);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::plan::{NodeCounter, PlanOp};
    use proptest::prelude::*;
    use sdp_catalog::RelId;

    fn plan(cost: f64, ordering: Option<ClassId>) -> Arc<PlanNode> {
        PlanNode::new(
            &NodeCounter::new(),
            PlanOp::SeqScan {
                rel: RelId(0),
                node: 0,
            },
            RelSet::single(0),
            10.0,
            cost,
            ordering,
            vec![],
        )
    }

    proptest! {
        /// After any insertion sequence, the group is a Pareto set:
        /// no retained entry dominates another, and the cheapest
        /// offered plan for each ordering class is retained with its
        /// exact cost.
        #[test]
        fn group_maintains_pareto_invariants(
            offers in prop::collection::vec((1.0f64..1000.0, prop::option::of(0u32..3)), 1..60)
        ) {
            let mut g = Group::new(RelSet::single(0), 10.0, 1.0, 80.0, RelSet::EMPTY);
            for (cost, ordering) in &offers {
                g.add_plan(plan(*cost, *ordering));
            }
            // (1) mutual non-dominance among retained entries
            for a in g.entries() {
                for b in g.entries() {
                    if Arc::ptr_eq(a, b) {
                        continue;
                    }
                    let dominates = a.cost <= b.cost
                        && (b.ordering.is_none() || a.ordering == b.ordering);
                    prop_assert!(!dominates, "{:?} dominates {:?}", a.cost, b.cost);
                }
            }
            // (2) best overall == cheapest offer
            let min_offer = offers.iter().map(|(c, _)| *c).fold(f64::MAX, f64::min);
            prop_assert!((g.best_cost() - min_offer).abs() < 1e-12);
            // (3) per-class minimum is available at no worse a cost
            for class in 0u32..3 {
                let best_offer = offers
                    .iter()
                    .filter(|(_, o)| *o == Some(class))
                    .map(|(c, _)| *c)
                    .fold(f64::MAX, f64::min);
                if best_offer < f64::MAX {
                    // Either retained exactly, or a cheaper same-class
                    // entry exists (duplicates collapse).
                    let got = g.best_for_order(class).map(|p| p.cost);
                    if let Some(got) = got {
                        prop_assert!(got <= best_offer + 1e-12);
                    } else {
                        // Only prunable if some retained entry with the
                        // class's usefulness dominated it — impossible
                        // unless an equal-or-cheaper same-class entry
                        // was kept; a cheaper unordered entry does NOT
                        // dominate an ordered one.
                        prop_assert!(false, "class {class} lost entirely");
                    }
                }
            }
        }

        /// Insertion order never changes the retained cost frontier.
        #[test]
        fn group_is_order_insensitive(
            mut offers in prop::collection::vec((1.0f64..1000.0, prop::option::of(0u32..3)), 1..30)
        ) {
            let build = |offers: &[(f64, Option<u32>)]| {
                let mut g = Group::new(RelSet::single(0), 10.0, 1.0, 80.0, RelSet::EMPTY);
                for (cost, ordering) in offers {
                    g.add_plan(plan(*cost, *ordering));
                }
                let mut frontier: Vec<(Option<u32>, u64)> = g
                    .entries()
                    .iter()
                    .map(|e| (e.ordering, e.cost.to_bits()))
                    .collect();
                frontier.sort();
                frontier
            };
            let forward = build(&offers);
            offers.reverse();
            let backward = build(&offers);
            prop_assert_eq!(forward, backward);
        }
    }
}
