//! The level-wise bushy dynamic-programming engine.
//!
//! System-R style: level `s` enumerates every connected,
//! cartesian-product-free JCR of `s` atoms by combining surviving
//! JCRs of `i` and `s − i` atoms for all splits — "the input to the
//! DP algorithm in each level is composed of not just the survivor
//! JCRs of the immediately preceding level, but also the survivor
//! JCRs of all prior levels, thereby supporting the identification of
//! bushy joins."
//!
//! The engine is generalized over *atoms* (disjoint relation sets
//! with pre-populated memo groups):
//!
//! * DP and SDP run it over singleton atoms for the full query;
//! * IDP runs it repeatedly over a shrinking atom list, up to its
//!   block size, contracting the winning block into a compound atom
//!   between iterations.
//!
//! Candidate-pair discovery is delegated to a
//! [`crate::enumerate::PairEnumerator`] strategy
//! (level-table scan, DPccp-style csg–cmp generation, or the DPconv
//! surrogate prototype — see [`crate::enumerate`]); the engine only
//! consumes the strategy's deterministic pair stream.
//!
//! A [`LevelPruner`] hook fires after each level is fully enumerated;
//! SDP plugs its hub-partitioned skyline pruning in here, exhaustive
//! DP passes `None`.
//!
//! # Parallel levels
//!
//! Candidate pairs within one level are independent reads of earlier
//! levels, so each level fans out across worker threads when the
//! context's parallelism allows ([`EnumContext::parallelism`]) and the
//! level is large enough to amortize thread startup. Workers cost
//! their contiguous chunk of the level's pair list into private
//! shards; the level barrier merges the shards back in chunk order,
//! which reproduces the sequential memo bit-for-bit (see the
//! "Threading model" section in DESIGN.md for the argument). Levels
//! below `PARALLEL_PAIR_THRESHOLD` pairs run on the coordinating
//! thread unchanged.

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use sdp_query::RelSet;

use crate::budget::OptError;
use crate::context::{EnumContext, LevelStats};
use crate::enumerate::PairEnumerator;
use crate::fx::FxHashSet;
use crate::plan::PlanNode;

/// Budget-check cadence, in candidate pair visits (sequential path).
const CHECK_INTERVAL: u64 = 1 << 16;

/// Minimum number of joinable pairs in a level before it is worth
/// fanning out to worker threads; below this the per-level thread
/// startup dwarfs the costing work.
const PARALLEL_PAIR_THRESHOLD: usize = 128;

/// Pruning hook invoked after each DP level is complete.
pub trait LevelPruner {
    /// Inspect the fully-enumerated `level` (number of atoms joined;
    /// `level_sets` lists its JCRs) and return the JCRs to prune.
    fn prune(&mut self, ctx: &EnumContext<'_>, level: usize, level_sets: &[RelSet]) -> Vec<RelSet>;

    /// Skyline accounting for the most recent [`LevelPruner::prune`]
    /// call, folded into the level's profile row. Pruners without
    /// skyline structure keep the default zeros.
    fn last_prune_stats(&self) -> PruneStats {
        PruneStats::default()
    }
}

/// Per-level skyline accounting reported by a [`LevelPruner`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Hub (or global) partitions the skyline examined.
    pub partitions: u64,
    /// Skyline survivors summed over partitions.
    pub survivors: u64,
    /// JCRs kept only by interesting-order retention.
    pub order_rescued: u64,
}

/// Per-level survivor table produced by [`run_levels`]: entry `s - 1`
/// holds the surviving JCRs of `s` atoms, paired with their cached
/// join-graph neighbourhoods.
#[derive(Debug, Default)]
pub struct LevelTable {
    /// `levels[s - 1]` = surviving `(set, neighbors)` of `s` atoms.
    pub levels: Vec<Vec<(RelSet, RelSet)>>,
}

impl LevelTable {
    /// Surviving JCR sets at the given atom count, in survivor order.
    /// Borrows the table — collect if you need to outlive it.
    pub fn sets_at(&self, atom_count: usize) -> impl Iterator<Item = RelSet> + '_ {
        self.levels
            .get(atom_count - 1)
            .map(|v| v.as_slice())
            .unwrap_or_default()
            .iter()
            .map(|&(s, _)| s)
    }
}

/// Enumerate one level's pairs across worker threads and merge the
/// shards deterministically. `pairs` must be in the sequential visit
/// order; chunks partition it contiguously and are merged left to
/// right.
fn run_level_parallel(
    ctx: &mut EnumContext<'_>,
    pairs: &[(RelSet, RelSet)],
    threads: usize,
    new_sets: &mut Vec<RelSet>,
    created: &mut Vec<RelSet>,
    recorded: &mut FxHashSet<RelSet>,
) -> Result<(), OptError> {
    let chunk = pairs.len().div_ceil(threads);
    let probe = ctx.memory.probe();
    let abort = AtomicBool::new(false);
    let shards = {
        let shared: &EnumContext<'_> = ctx;
        let (probe, abort) = (&probe, &abort);
        std::thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk)
                .map(|c| scope.spawn(move || shared.level_worker(c, probe, abort)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("level worker panicked"))
                .collect::<Vec<_>>()
        })
    };
    // A budget trip anywhere aborts the level; partial results are
    // dropped before anything is merged, so an aborted parallel level
    // leaves the memo exactly at the previous level barrier.
    if let Some(e) = shards.iter().find_map(|s| s.error.clone()) {
        return Err(e);
    }
    for shard in shards {
        ctx.merge_shard(shard, new_sets, created, recorded);
    }
    Ok(())
}

/// Enumerate and prune one DP level. `new_sets` receives the level's
/// surviving JCRs (including groups retained from an earlier governed
/// rung, recorded on first visit so higher levels can build on them);
/// `created` lists only the groups this level actually inserted, which
/// is what the caller rolls back on error; `recorded` deduplicates the
/// two. Barrier budget checks run after enumeration and after the
/// pruner — the two deterministic per-level poll points of the
/// governor.
#[allow(clippy::too_many_arguments)]
fn run_one_level<'p>(
    ctx: &mut EnumContext<'_>,
    pairs: &[(RelSet, RelSet)],
    threads: usize,
    level: usize,
    visits: &mut u64,
    new_sets: &mut Vec<RelSet>,
    created: &mut Vec<RelSet>,
    recorded: &mut FxHashSet<RelSet>,
    mut pruner: Option<&mut (dyn LevelPruner + 'p)>,
) -> Result<(), OptError> {
    let pair_count = pairs.len() as u64;
    let plans_before = ctx.plans_costed;
    let pruned_before = ctx.jcrs_pruned;
    let enforcers_before = ctx.sort_enforcers;
    if threads > 1 && pairs.len() >= PARALLEL_PAIR_THRESHOLD {
        run_level_parallel(ctx, pairs, threads, new_sets, created, recorded)?;
    } else {
        // Stage creation events and emit them only once the whole
        // level has enumerated: a mid-level budget trip then leaves no
        // trace of the rolled-back level, exactly like the parallel
        // path's whole-level discard — traces stay deterministic.
        #[cfg(feature = "trace")]
        let mut staged: Vec<sdp_trace::Event> = Vec::new();
        #[cfg(feature = "trace")]
        let tracing = ctx.tracer().enabled();
        for &(a, b) in pairs {
            *visits += 1;
            if visits.is_multiple_of(CHECK_INTERVAL) {
                ctx.memory.check()?;
            }
            let union = a | b;
            if ctx.join_pair(a, b) {
                created.push(union);
                recorded.insert(union);
                new_sets.push(union);
                #[cfg(feature = "trace")]
                if tracing {
                    let mut event = EnumContext::jcr_event(union);
                    event.wall_micros = ctx.tracer().wall_micros();
                    staged.push(event);
                }
            } else if recorded.insert(union) {
                // The group pre-existed this level — retained from an
                // earlier rung of a governed descent. Record it in the
                // level row so higher levels can still reach it.
                new_sets.push(union);
            }
        }
        #[cfg(feature = "trace")]
        for event in staged {
            ctx.tracer().emit(event);
        }
    }
    ctx.memory.barrier_check()?;

    let mut prune_stats = PruneStats::default();
    if let Some(p) = pruner.as_mut() {
        let victims = p.prune(ctx, level, new_sets);
        prune_stats = p.last_prune_stats();
        if !victims.is_empty() {
            let victim_set: FxHashSet<RelSet> = victims.iter().copied().collect();
            for v in victims {
                ctx.prune_group(v);
            }
            new_sets.retain(|s| !victim_set.contains(s));
        }
    }
    ctx.memory.barrier_check()?;

    // Sort-ahead placement (post-barrier, coordinating thread only):
    // offer each surviving JCR of the level an explicit Sort enforcer
    // producing the order target, so order-preserving joins at higher
    // levels can carry the order up instead of paying a root sort over
    // the full result. `new_sets` is in deterministic creation order,
    // so the offers — and hence plans, counters and traces — are
    // bit-identical at any parallelism.
    for &set in new_sets.iter() {
        ctx.offer_sort_enforcer(set);
    }

    let stats = LevelStats {
        level,
        phase: ctx.phase(),
        enumerator: ctx.enumerator().label(),
        pairs: pair_count,
        plans_costed: ctx.plans_costed - plans_before,
        jcrs_created: created.len() as u64,
        jcrs_pruned: ctx.jcrs_pruned - pruned_before,
        jcrs_retained: new_sets.len() as u64,
        skyline_partitions: prune_stats.partitions,
        skyline_survivors: prune_stats.survivors,
        order_rescued: prune_stats.order_rescued,
        sort_enforcers: ctx.sort_enforcers - enforcers_before,
        memo_groups: ctx.memo.len() as u64,
        model_bytes: ctx.memory.used_bytes(),
        contractions: ctx.contractions(),
    };
    ctx.record_level(stats);
    #[cfg(feature = "trace")]
    ctx.tracer().emit_with(|| level_event(&stats));
    Ok(())
}

/// The per-level span summarizing one completed level barrier. Every
/// field is deterministic across thread counts.
#[cfg(feature = "trace")]
fn level_event(stats: &LevelStats) -> sdp_trace::Event {
    sdp_trace::Event::new("level")
        .with("level", stats.level)
        .with("phase", stats.phase)
        .with("enumerator", stats.enumerator)
        .with("pairs", stats.pairs)
        .with("costed", stats.plans_costed)
        .with("created", stats.jcrs_created)
        .with("pruned", stats.jcrs_pruned)
        .with("retained", stats.jcrs_retained)
        .with("skyline_partitions", stats.skyline_partitions)
        .with("skyline_survivors", stats.skyline_survivors)
        .with("order_rescued", stats.order_rescued)
        .with("sort_enforcers", stats.sort_enforcers)
        .with("memo", stats.memo_groups)
        .with("model_bytes", stats.model_bytes)
        .with("contractions", stats.contractions)
}

/// Run bottom-up DP over `atoms` (each must already have a memo
/// group), building levels `2 ..= up_to` (in atom count), applying
/// `pruner` after each level when provided. Candidate pairs come from
/// the context's configured enumeration strategy
/// ([`EnumContext::enumerator`]); a fresh instance is built per
/// invocation so IDP iterations re-prepare over their shrinking atom
/// lists.
pub fn run_levels(
    ctx: &mut EnumContext<'_>,
    atoms: &[RelSet],
    up_to: usize,
    pruner: Option<&mut dyn LevelPruner>,
) -> Result<LevelTable, OptError> {
    let mut enumerator = ctx.enumerator().build();
    run_levels_with(ctx, atoms, up_to, pruner, enumerator.as_mut())
}

/// [`run_levels`] with an explicit [`PairEnumerator`] instance —
/// the seam tests and benchmarks use to drive a specific strategy.
pub fn run_levels_with(
    ctx: &mut EnumContext<'_>,
    atoms: &[RelSet],
    up_to: usize,
    mut pruner: Option<&mut dyn LevelPruner>,
    enumerator: &mut dyn PairEnumerator,
) -> Result<LevelTable, OptError> {
    debug_assert!(up_to >= 1 && up_to <= atoms.len());
    enumerator.prepare(ctx, atoms, up_to);
    // Compound atoms are contracted subtrees the enumerator treats as
    // single vertices (IDP re-runs over already-joined blocks); the
    // count is part of the level profile so `explain_analyze` shows
    // how much of the graph each pass saw pre-contracted.
    ctx.set_contractions(atoms.iter().filter(|a| a.len() > 1).count() as u64);
    let mut table = LevelTable::default();
    table.levels.push(
        atoms
            .iter()
            .map(|&a| {
                debug_assert!(ctx.memo.get(a).is_some(), "atom {a:?} lacks a memo group");
                (a, ctx.graph().neighbors(a))
            })
            .collect(),
    );

    let mut visits: u64 = 0;
    for s in 2..=up_to {
        let pairs = enumerator.level_pairs(ctx, &table, s);
        let mut new_sets: Vec<RelSet> = Vec::new();
        let mut created: Vec<RelSet> = Vec::new();
        let mut recorded: FxHashSet<RelSet> = FxHashSet::default();
        let threads = ctx.parallelism().min(pairs.len().max(1));

        if let Err(e) = run_one_level(
            ctx,
            &pairs,
            threads,
            s,
            &mut visits,
            &mut new_sets,
            &mut created,
            &mut recorded,
            pruner.as_deref_mut(),
        ) {
            // Determinism-by-rollback: drop every group this level
            // created, so the memo a governed descent inherits equals
            // the last *completed* level — the same state the parallel
            // path's whole-level discard leaves — regardless of where
            // inside the level the budget tripped.
            // The rollback span carries only the level: how far into
            // the level the trip was detected (and hence how many
            // groups roll back) legitimately differs between the
            // sequential and parallel detection points, so it must not
            // appear in canonical fields.
            #[cfg(feature = "trace")]
            ctx.tracer()
                .emit_with(|| sdp_trace::Event::new("level_rollback").with("level", s));
            for set in created {
                ctx.prune_group(set);
            }
            return Err(e);
        }

        let graph = ctx.graph();
        table
            .levels
            .push(new_sets.iter().map(|&s| (s, graph.neighbors(s))).collect());
    }
    Ok(table)
}

/// Run the engine from singleton atoms all the way to the complete
/// query, with an optional pruner, and finish the plan (greedy
/// completion safety-net included).
pub fn optimize_complete(
    ctx: &mut EnumContext<'_>,
    pruner: Option<&mut dyn LevelPruner>,
) -> Result<Arc<PlanNode>, OptError> {
    let n = ctx.graph().len();
    if n == 0 {
        return Err(OptError::EmptyQuery);
    }
    let all = ctx.graph().all_nodes();
    if !ctx.graph().is_connected(all) {
        return Err(OptError::DisconnectedJoinGraph);
    }
    let atoms: Vec<RelSet> = (0..n).map(RelSet::single).collect();
    for i in 0..n {
        ctx.ensure_base_group(i);
    }
    ctx.memory.check()?;
    run_levels(ctx, &atoms, n, pruner)?;
    if ctx.memo.get(all).is_none() {
        greedy_complete(ctx, all)?;
        ctx.completed_greedily = true;
    }
    ctx.finalize(all)
}

/// Safety net for aggressive pruning configurations: when no complete
/// JCR survived the level DP, finish the plan by greedily extending
/// the largest surviving JCR one base relation at a time (MinRows
/// selection). Exhaustive DP never needs this; the paper's SDP
/// configurations virtually never do either, but a pruner is
/// user-pluggable and completeness must not depend on its good
/// behaviour.
fn greedy_complete(ctx: &mut EnumContext<'_>, all: RelSet) -> Result<(), OptError> {
    // Start from the largest surviving group (ties: cheapest), so the
    // work DP already did is reused.
    let mut current = {
        let mut best: Option<(RelSet, usize, f64)> = None;
        let sets: Vec<RelSet> = ctx.memo.sets().collect();
        for s in sets {
            let cost = ctx.memo.get(s).expect("live set").best_cost();
            let better = match best {
                None => true,
                Some((_, len, c)) => s.len() > len || (s.len() == len && cost < c),
            };
            if better {
                best = Some((s, s.len(), cost));
            }
        }
        best.map(|(s, _, _)| s)
            .ok_or(OptError::DisconnectedJoinGraph)?
    };

    while current != all {
        let graph = ctx.graph();
        let frontier = graph.neighbors(current) & all;
        if frontier.is_empty() {
            return Err(OptError::DisconnectedJoinGraph);
        }
        // MinRows greedy step over adjacent base relations.
        let est = ctx.model().estimator();
        let mut best: Option<(f64, usize)> = None;
        for node in frontier.iter() {
            let a = RelSet::single(node);
            let cur_rows = ctx.memo.get(current).expect("current exists").rows;
            let a_rows = est.rows_for_set(graph, a);
            let rows = cur_rows * a_rows * est.crossing_selectivity(graph, current, a);
            if best.is_none_or(|(r, _)| rows < r) {
                best = Some((rows, node));
            }
        }
        let (_, node) = best.expect("frontier non-empty");
        ctx.ensure_base_group(node);
        ctx.join_pair(current, RelSet::single(node));
        current = current.insert(node);
        ctx.memory.check()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use sdp_catalog::Catalog;
    use sdp_cost::CostModel;
    use sdp_query::{Query, QueryGenerator, Topology};

    fn optimize(q: &Query, cat: &Catalog) -> Arc<PlanNode> {
        let model = CostModel::with_defaults(cat);
        let mut ctx = EnumContext::new(q, &model, Budget::unlimited());
        ctx.set_parallelism(1);
        optimize_complete(&mut ctx, None).expect("optimization succeeds")
    }

    #[test]
    fn dp_covers_all_relations() {
        let cat = Catalog::paper();
        for topo in [
            Topology::Chain(6),
            Topology::Star(6),
            Topology::Cycle(6),
            Topology::star_chain(7),
        ] {
            let q = QueryGenerator::new(&cat, topo, 3).instance(0);
            let plan = optimize(&q, &cat);
            assert_eq!(plan.set, q.graph.all_nodes(), "{topo}");
            assert_eq!(
                plan.join_count(),
                q.num_relations() - 1,
                "{topo}: n-1 joins"
            );
            plan.check_invariants().unwrap();
        }
    }

    #[test]
    fn dp_is_optimal_versus_exhaustive_recursion() {
        // Brute-force reference: recursively enumerate every
        // cartesian-free bushy partition and take the cheapest cost
        // reachable with the same operator set. DP must match it.
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(5), 17).instance(0);
        let model = CostModel::with_defaults(&cat);

        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let dp_plan = optimize_complete(&mut ctx, None).unwrap();

        // The brute force reuses the same EnumContext machinery but
        // enumerates sets recursively; since join_pair is exactly the
        // costing DP uses, equality of best cost demonstrates DP
        // explored every split.
        fn enumerate_all(ctx: &mut EnumContext<'_>, set: RelSet) {
            if set.len() == 1 {
                ctx.ensure_base_group(set.min_index().unwrap());
                return;
            }
            // All proper subset splits (connected, disjoint by
            // construction).
            let members: Vec<usize> = set.iter().collect();
            let m = members.len();
            for mask in 1..(1u64 << m) - 1 {
                let a = RelSet::from_indices(
                    (0..m).filter(|&i| mask & (1 << i) != 0).map(|i| members[i]),
                );
                let b = set - a;
                if a.min_index() > b.min_index() {
                    continue; // each split once
                }
                if !ctx.graph().is_connected(a) || !ctx.graph().is_connected(b) {
                    continue;
                }
                if !ctx.graph().sets_connected(a, b) {
                    continue;
                }
                enumerate_all(ctx, a);
                enumerate_all(ctx, b);
                ctx.join_pair(a, b);
            }
        }
        let mut brute = EnumContext::new(&q, &model, Budget::unlimited());
        enumerate_all(&mut brute, q.graph.all_nodes());
        let brute_best = brute.finalize(q.graph.all_nodes()).unwrap();

        let rel = (dp_plan.cost - brute_best.cost).abs() / brute_best.cost;
        assert!(
            rel < 1e-9,
            "DP {} vs brute {}",
            dp_plan.cost,
            brute_best.cost
        );
    }

    #[test]
    fn star_dp_prefers_index_nested_loops() {
        // The classic star strategy: probe the big hub… actually
        // probing the *spokes'* indexed join columns; the chosen plan
        // should use at least one index nested-loop.
        let cat = Catalog::paper();
        // Seed picked for the vendored-rand instance stream: this
        // draw's spoke sizes make index probing the winning strategy.
        let q = QueryGenerator::new(&cat, Topology::Star(6), 13).instance(0);
        let plan = optimize(&q, &cat);
        fn has_inl(p: &PlanNode) -> bool {
            matches!(
                p.op,
                crate::plan::PlanOp::Join {
                    method: sdp_cost::JoinMethod::IndexNestedLoop
                }
            ) || p.children.iter().any(|c| has_inl(c))
        }
        assert!(has_inl(&plan), "star plan without any index NLJ");
    }

    #[test]
    fn level_table_records_survivors() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(4), 1).instance(0);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        for i in 0..4 {
            ctx.ensure_base_group(i);
        }
        let atoms: Vec<RelSet> = (0..4).map(RelSet::single).collect();
        let table = run_levels(&mut ctx, &atoms, 4, None).unwrap();
        // Chain-4 has 3 pairs, 2 triples, 1 quad of connected sets.
        assert_eq!(table.sets_at(1).count(), 4);
        assert_eq!(table.sets_at(2).count(), 3);
        assert_eq!(table.sets_at(3).count(), 2);
        assert_eq!(table.sets_at(4).count(), 1);
    }

    #[test]
    fn parallel_levels_match_sequential_bit_for_bit() {
        // The tentpole guarantee: the memo after a parallel run is
        // indistinguishable from the sequential one — same groups in
        // the same insertion order, same Pareto entries in the same
        // order, same counters. Star-12 mid levels exceed the
        // parallel threshold, so the threaded path really runs.
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(12), 7).instance(0);
        let model = CostModel::with_defaults(&cat);

        let run = |threads: usize| {
            let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
            ctx.set_parallelism(threads);
            let plan = optimize_complete(&mut ctx, None).unwrap();
            let sets: Vec<RelSet> = ctx.memo.sets().collect();
            let frontiers: Vec<Vec<(u64, Option<sdp_query::ClassId>)>> = sets
                .iter()
                .map(|&s| {
                    ctx.memo
                        .get(s)
                        .unwrap()
                        .entries()
                        .iter()
                        .map(|e| (e.cost.to_bits(), e.ordering))
                        .collect()
                })
                .collect();
            (
                plan,
                ctx.plans_costed,
                ctx.memo.jcrs_created(),
                sets,
                frontiers,
            )
        };

        let (p1, costed1, jcrs1, sets1, frontiers1) = run(1);
        for threads in [2, 4] {
            let (pn, costedn, jcrsn, setsn, frontiersn) = run(threads);
            assert_eq!(p1.cost.to_bits(), pn.cost.to_bits(), "{threads} threads");
            assert_eq!(costed1, costedn, "plans costed, {threads} threads");
            assert_eq!(jcrs1, jcrsn, "jcrs created, {threads} threads");
            assert_eq!(sets1, setsn, "memo iteration order, {threads} threads");
            assert_eq!(frontiers1, frontiersn, "group entries, {threads} threads");
        }
    }

    #[test]
    fn budget_infeasibility_surfaces() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(12), 2).instance(0);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(
            &q,
            &model,
            Budget::with_memory(64 * crate::budget::GROUP_MODEL_BYTES),
        );
        match optimize_complete(&mut ctx, None) {
            Err(OptError::MemoryExhausted { .. }) => {}
            other => panic!("expected memory exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn budget_infeasibility_surfaces_in_parallel() {
        // Worker probes must trip the same error the sequential path
        // reports when the model memory exceeds the budget mid-level.
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(12), 2).instance(0);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(
            &q,
            &model,
            Budget::with_memory(64 * crate::budget::GROUP_MODEL_BYTES),
        );
        ctx.set_parallelism(4);
        match optimize_complete(&mut ctx, None) {
            Err(OptError::MemoryExhausted { .. }) => {}
            other => panic!("expected memory exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn disconnected_graph_rejected() {
        use sdp_catalog::RelId;
        let g = sdp_query::JoinGraph::new(vec![RelId(0), RelId(1)], vec![]);
        let q = Query::new(g);
        let cat = Catalog::paper();
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        assert!(matches!(
            optimize_complete(&mut ctx, None),
            Err(OptError::DisconnectedJoinGraph)
        ));
    }

    #[test]
    fn single_relation_query() {
        let cat = Catalog::paper();
        use sdp_catalog::RelId;
        let g = sdp_query::JoinGraph::new(vec![RelId(5)], vec![]);
        let q = Query::new(g);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        assert_eq!(plan.set, RelSet::single(0));
        assert_eq!(plan.join_count(), 0);
    }

    #[test]
    fn a_hostile_pruner_cannot_break_completeness() {
        // Prune EVERYTHING at every level; greedy completion must
        // still deliver a valid full plan.
        struct PruneAll;
        impl LevelPruner for PruneAll {
            fn prune(
                &mut self,
                _ctx: &EnumContext<'_>,
                _level: usize,
                sets: &[RelSet],
            ) -> Vec<RelSet> {
                sets.to_vec()
            }
        }
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::star_chain(8), 4).instance(0);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let mut pruner = PruneAll;
        let plan = optimize_complete(&mut ctx, Some(&mut pruner)).unwrap();
        assert_eq!(plan.set, q.graph.all_nodes());
        plan.check_invariants().unwrap();
        assert!(ctx.completed_greedily);
    }

    #[test]
    fn ordered_query_root_is_ordered() {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Star(5), 8).ordered_instance(0);
        let model = CostModel::with_defaults(&cat);
        let mut ctx = EnumContext::new(&q, &model, Budget::unlimited());
        let plan = optimize_complete(&mut ctx, None).unwrap();
        assert_eq!(plan.ordering, ctx.order_target());
        assert!(plan.ordering.is_some());
    }
}
