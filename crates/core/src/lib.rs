//! # sdp-core — the SDP optimizer and its competitor enumerators
//!
//! The paper's primary contribution, implemented on a System-R-style
//! bottom-up dynamic-programming substrate:
//!
//! * [`dp`] — the exhaustive bushy DP enumerator (PostgreSQL's
//!   baseline), generalized over *atoms* so that IDP can reuse it
//!   after contracting compounds;
//! * [`enumerate`] — candidate-pair generation strategies behind the
//!   `PairEnumerator` trait: the level-table scan, DPccp-style
//!   csg–cmp generation over the join graph, and a DPconv-inspired
//!   min-plus surrogate prototype, selectable per run
//!   (`SDP_ENUMERATOR` env or `Optimizer::with_enumerator`);
//! * [`sdp`] — **Skyline Dynamic Programming**: localized pruning on
//!   hub partitions with the disjunctive pairwise-skyline function
//!   over the `[Rows, Cost, Selectivity]` feature vector, including
//!   the Root-Hub / Parent-Hub / Global partitioning variants and the
//!   Option-1 / Option-2 / k-dominant skyline variants;
//! * [`idp`] — Iterative Dynamic Programming, the
//!   `IDP1-balanced-bestRow` variant the paper benchmarks against;
//! * [`goo`] — Greedy Operator Ordering, a cheap baseline;
//! * [`random`] — Iterative Improvement and Simulated Annealing, the
//!   "jettison DP entirely" baselines from the paper's related work;
//! * [`optimizer`] — the public entry point tying everything together.
//!
//! Every enumerator runs under a [`budget::Budget`] that models the
//! paper's 1 GB physical-memory wall (the `*` cells in its tables) and
//! counts plans costed, the paper's third overhead metric.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod budget;
pub mod context;
pub mod dp;
pub mod enumerate;
pub mod explain;
pub mod fx;
pub mod goo;
pub mod governor;
pub mod idp;
pub mod memo;
pub mod optimizer;
pub mod plan;
pub mod random;
pub mod recost;
pub mod sdp;

pub use budget::{Budget, BudgetProbe, OptError};
pub use governor::{
    CancelHandle, DegradeEvent, DegradeReason, GovernedFailure, GovernedPlan, Governor, Rung,
    CHEAPEST_RUNG_FLOOR, LADDER,
};

// Compile-time guarantee for the service layer: everything a resident
// optimizer daemon shares across worker threads — the optimizer
// facade, its inputs and its outputs — is `Send + Sync`. A regression
// (say, an `Rc` or `RefCell` sneaking back into a plan tree) fails
// this function's type-check rather than surfacing as a distant
// trait-bound error in `sdp-service`.
#[allow(dead_code)]
fn _assert_service_types_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Optimizer<'static>>();
    check::<optimizer::Algorithm>();
    check::<OptimizedPlan>();
    check::<PlanNode>();
    check::<NodeCounter>();
    check::<Budget>();
    check::<RunStats>();
    check::<OptError>();
    check::<Memo>();
    check::<Governor>();
    check::<GovernedPlan>();
    check::<CancelHandle>();
    check::<Rung>();
    check::<DegradeEvent>();
    check::<sdp_catalog::Catalog>();
    check::<sdp_query::Query>();
    check::<context::LevelStats>();
    check::<enumerate::EnumeratorKind>();
    #[cfg(feature = "trace")]
    check::<sdp_trace::Tracer>();
}
pub use context::{default_parallelism, EnumContext, LevelStats, RunStats};
pub use dp::{LevelPruner, PruneStats};
pub use enumerate::{DpConv, Dpccp, EnumeratorKind, LevelScan, PairEnumerator};
pub use explain::{explain, explain_analyze, worst_estimates};
pub use memo::{Group, Memo};
pub use optimizer::{Algorithm, OptimizedPlan, Optimizer};
pub use plan::{NodeCounter, PlanNode, PlanOp};
pub use recost::recost;
pub use sdp::{Partitioning, SdpConfig, SkylineOption};
