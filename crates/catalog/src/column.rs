//! Column metadata: identifiers, domains and value distributions.

use std::fmt;

/// Index of a column within its relation (0-based).
///
/// The paper's schema gives every relation twenty-four columns; a
/// `ColId` is always interpreted relative to a specific
/// [`crate::Relation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId(pub u16);

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Shape of the data-value distribution within a column.
///
/// The paper experiments with "both uniform and skewed (exponential)
/// distributions". The distribution influences the statistics derived
/// by [`crate::ColumnStats::derive`] (skew concentrates values on few
/// domain members, raising join selectivities) and drives the value
/// generator in `sdp-engine`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Values drawn uniformly from the column domain.
    Uniform,
    /// Values drawn from a (truncated, discretized) exponential
    /// distribution over the domain, with the given rate parameter
    /// normalized to the domain size. Larger `rate` means stronger
    /// skew toward the low end of the domain.
    Exponential {
        /// Normalized rate λ; the probability of domain value `i`
        /// (0-based) is proportional to `exp(-λ · i / domain)`.
        rate: f64,
    },
}

impl Distribution {
    /// Fraction of the domain that effectively carries values, used to
    /// shrink the distinct-count estimate for skewed columns.
    ///
    /// For a uniform distribution all of the domain is reachable. For
    /// an exponential distribution, mass beyond a few multiples of
    /// `1/λ` is negligible; we use the 99th percentile of the
    /// exponential, `ln(100)/λ`, capped at 1.
    pub fn effective_domain_fraction(&self) -> f64 {
        match *self {
            Distribution::Uniform => 1.0,
            Distribution::Exponential { rate } => {
                debug_assert!(rate > 0.0, "exponential rate must be positive");
                (100f64.ln() / rate).min(1.0)
            }
        }
    }

    /// A multiplicative correction (≥ 1) applied to equi-join
    /// selectivities when one side of the join is skewed: matching on
    /// a skewed column finds more partners than the uniform
    /// independence estimate predicts, because value mass concentrates
    /// on few domain members.
    ///
    /// Derived from the ratio of the second frequency moment of the
    /// distribution to that of a uniform distribution with the same
    /// effective domain, clamped to `[1, 10]` to keep estimates sane
    /// (PostgreSQL similarly clamps its most-common-value corrections).
    pub fn skew_factor(&self) -> f64 {
        match *self {
            Distribution::Uniform => 1.0,
            Distribution::Exponential { rate } => {
                // For a discretized exponential over a large domain the
                // collision probability is ~ λ/2 per unit domain versus
                // 1/d for uniform; the ratio grows with the rate.
                (1.0 + rate / 2.0).clamp(1.0, 10.0)
            }
        }
    }

    /// True when this distribution is skewed (non-uniform).
    pub fn is_skewed(&self) -> bool {
        !matches!(self, Distribution::Uniform)
    }

    /// Cumulative distribution function at a fraction `x ∈ [0, 1]` of
    /// the domain: the probability that a value falls below
    /// `x · domain_size`. Used to estimate range-predicate
    /// selectivities.
    pub fn cdf(&self, x: f64) -> f64 {
        let x = x.clamp(0.0, 1.0);
        match *self {
            Distribution::Uniform => x,
            Distribution::Exponential { rate } => {
                debug_assert!(rate > 0.0);
                // Truncated exponential over [0, 1].
                (1.0 - (-rate * x).exp()) / (1.0 - (-rate).exp())
            }
        }
    }
}

/// Metadata for one column of a relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Position of the column within its relation.
    pub id: ColId,
    /// Human-readable name, e.g. `"c7"`.
    pub name: String,
    /// Number of distinct values in the column's domain (the paper's
    /// domain sizes are geometrically distributed between 100 and
    /// 2.5 million).
    pub domain_size: u64,
    /// Distribution of values over the domain.
    pub distribution: Distribution,
    /// Width of the column in bytes (used for tuple-width and page
    /// count estimation).
    pub width_bytes: u32,
}

impl Column {
    /// Create a column with the default 8-byte integer width.
    pub fn new(id: ColId, domain_size: u64, distribution: Distribution) -> Self {
        Column {
            id,
            name: format!("c{}", id.0),
            domain_size,
            distribution,
            width_bytes: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_distribution_has_no_skew() {
        let d = Distribution::Uniform;
        assert_eq!(d.effective_domain_fraction(), 1.0);
        assert_eq!(d.skew_factor(), 1.0);
        assert!(!d.is_skewed());
    }

    #[test]
    fn exponential_distribution_shrinks_domain_and_raises_skew() {
        let d = Distribution::Exponential { rate: 20.0 };
        assert!(d.effective_domain_fraction() < 1.0);
        assert!(d.skew_factor() > 1.0);
        assert!(d.is_skewed());
    }

    #[test]
    fn skew_factor_is_clamped() {
        let d = Distribution::Exponential { rate: 1e6 };
        assert_eq!(d.skew_factor(), 10.0);
        let d = Distribution::Exponential { rate: 1e-9 };
        assert!((d.skew_factor() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mild_skew_keeps_most_of_domain() {
        let d = Distribution::Exponential { rate: 2.0 };
        assert!(d.effective_domain_fraction() > 0.9);
    }

    #[test]
    fn cdf_endpoints_and_monotonicity() {
        for d in [
            Distribution::Uniform,
            Distribution::Exponential { rate: 20.0 },
        ] {
            assert!(d.cdf(0.0).abs() < 1e-12);
            assert!((d.cdf(1.0) - 1.0).abs() < 1e-12);
            let mut prev = 0.0;
            for i in 1..=10 {
                let v = d.cdf(i as f64 / 10.0);
                assert!(v >= prev);
                prev = v;
            }
        }
        // Clamped outside [0, 1].
        assert_eq!(Distribution::Uniform.cdf(-3.0), 0.0);
        assert_eq!(Distribution::Uniform.cdf(7.0), 1.0);
    }

    #[test]
    fn exponential_cdf_is_front_loaded() {
        let d = Distribution::Exponential { rate: 20.0 };
        // Most of the mass sits in the first tenth of the domain.
        assert!(d.cdf(0.1) > 0.8);
    }

    #[test]
    fn column_new_sets_defaults() {
        let c = Column::new(ColId(3), 1000, Distribution::Uniform);
        assert_eq!(c.name, "c3");
        assert_eq!(c.width_bytes, 8);
        assert_eq!(c.domain_size, 1000);
    }

    #[test]
    fn col_id_displays_with_prefix() {
        assert_eq!(ColId(11).to_string(), "c11");
    }
}
