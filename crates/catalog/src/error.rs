//! Error types for catalog construction and lookup.

use std::fmt;

/// Errors raised while building or querying a [`crate::Catalog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A relation id referred to a relation that does not exist.
    UnknownRelation(usize),
    /// A column id referred to a column that does not exist on the
    /// named relation.
    UnknownColumn {
        /// Relation the lookup was performed on.
        relation: usize,
        /// Offending column index.
        column: usize,
    },
    /// A schema specification was internally inconsistent (for example
    /// zero relations or zero columns per relation).
    InvalidSpec(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::UnknownRelation(id) => write!(f, "unknown relation id {id}"),
            CatalogError::UnknownColumn { relation, column } => {
                write!(f, "unknown column {column} on relation {relation}")
            }
            CatalogError::InvalidSpec(msg) => write!(f, "invalid schema specification: {msg}"),
        }
    }
}

impl std::error::Error for CatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CatalogError::UnknownRelation(7);
        assert!(e.to_string().contains('7'));
        let e = CatalogError::UnknownColumn {
            relation: 3,
            column: 9,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('9'));
        let e = CatalogError::InvalidSpec("no relations".into());
        assert!(e.to_string().contains("no relations"));
    }
}
