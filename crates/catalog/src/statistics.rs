//! Analytic equivalents of PostgreSQL `ANALYZE` statistics.
//!
//! The paper runs `ANALYZE` to populate the statistics the PostgreSQL
//! optimizer consumes. Because our schema is synthetic with known
//! distribution parameters, the same statistics can be derived in
//! closed form — the optimizer downstream cannot tell the difference.

use crate::column::{ColId, Column};
use crate::histogram::Histogram;
use crate::relation::Relation;

/// PostgreSQL default page size.
pub const PAGE_SIZE_BYTES: u64 = 8192;

/// Per-tuple header overhead (PostgreSQL's `HeapTupleHeaderData` is
/// 23 bytes padded to 24, plus the 4-byte line pointer).
pub const TUPLE_HEADER_BYTES: u64 = 28;

/// Derived per-column statistics, the analogue of a `pg_statistic` row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnStats {
    /// Estimated number of distinct values appearing in the column.
    pub n_distinct: f64,
    /// Multiplicative equi-join selectivity correction for skew (≥ 1).
    pub skew_factor: f64,
    /// Fraction of NULLs (always 0 in the paper's schema).
    pub null_frac: f64,
}

impl ColumnStats {
    /// Derive statistics for `column` on a relation with the given
    /// cardinality.
    ///
    /// The distinct count is the expected number of occupied domain
    /// values when `cardinality` draws are made from the (effective)
    /// domain: `d · (1 − (1 − 1/d)^n)`, the classic Cardenas formula,
    /// with `d` shrunk by the distribution's effective domain fraction
    /// for skewed columns.
    pub fn derive(column: &Column, cardinality: u64) -> Self {
        let d =
            (column.domain_size as f64 * column.distribution.effective_domain_fraction()).max(1.0);
        let n = cardinality as f64;
        // Cardenas: expected distinct values after n draws over d slots.
        // Computed in log-space to stay stable for large n, d.
        let n_distinct = if d <= 1.0 {
            1.0
        } else {
            let ln_miss = n * (1.0 - 1.0 / d).ln();
            d * (1.0 - ln_miss.exp())
        }
        .clamp(1.0, n.max(1.0));
        ColumnStats {
            n_distinct,
            skew_factor: column.distribution.skew_factor(),
            null_frac: 0.0,
        }
    }

    /// Selectivity of an equality predicate `col = const` under the
    /// uniform-frequency assumption: `1 / n_distinct`, boosted by skew.
    pub fn eq_selectivity(&self) -> f64 {
        (self.skew_factor / self.n_distinct).min(1.0)
    }
}

/// Derived per-relation statistics, the analogue of `pg_class`'s
/// `reltuples` / `relpages`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelationStats {
    /// Number of tuples.
    pub tuples: f64,
    /// Number of heap pages.
    pub pages: f64,
    /// Tuple width in bytes including header overhead.
    pub tuple_width: f64,
}

impl RelationStats {
    /// Derive relation-level statistics from the relation metadata.
    pub fn derive(relation: &Relation) -> Self {
        let tuple_width = relation.tuple_width_bytes() as f64 + TUPLE_HEADER_BYTES as f64;
        let tuples_per_page = (PAGE_SIZE_BYTES as f64 / tuple_width).floor().max(1.0);
        let tuples = relation.cardinality as f64;
        let pages = (tuples / tuples_per_page).ceil().max(1.0);
        RelationStats {
            tuples,
            pages,
            tuple_width,
        }
    }
}

/// Statistics for every column of a relation, plus the relation-level
/// numbers — what `ANALYZE` would leave behind for the optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalyzedRelation {
    /// Relation-level statistics.
    pub relation: RelationStats,
    /// Per-column statistics, indexed by [`ColId`].
    pub columns: Vec<ColumnStats>,
    /// Per-column equi-depth histograms, indexed by [`ColId`].
    pub histograms: Vec<Histogram>,
}

impl AnalyzedRelation {
    /// Run the analytic "ANALYZE" over a relation: closed-form
    /// distinct counts plus exact-quantile histograms from the known
    /// distributions.
    pub fn analyze(rel: &Relation) -> Self {
        AnalyzedRelation {
            relation: RelationStats::derive(rel),
            columns: rel
                .columns
                .iter()
                .map(|c| ColumnStats::derive(c, rel.cardinality))
                .collect(),
            histograms: rel
                .columns
                .iter()
                .map(|c| {
                    Histogram::from_cdf(c.domain_size.max(1), Histogram::DEFAULT_BUCKETS, |x| {
                        c.distribution.cdf(x)
                    })
                })
                .collect(),
        }
    }

    /// Histogram for one column.
    pub fn histogram(&self, col: ColId) -> Option<&Histogram> {
        self.histograms.get(col.0 as usize)
    }

    /// Statistics for one column.
    pub fn column(&self, col: ColId) -> Option<&ColumnStats> {
        self.columns.get(col.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::{Column, Distribution};
    use crate::relation::RelId;

    fn rel(card: u64, domain: u64, dist: Distribution) -> Relation {
        Relation {
            id: RelId(0),
            name: "R0".into(),
            cardinality: card,
            columns: vec![Column::new(ColId(0), domain, dist)],
            indexed_column: ColId(0),
        }
    }

    #[test]
    fn distinct_count_caps_at_cardinality() {
        // Huge domain, few rows: nearly every row is distinct.
        let c = Column::new(ColId(0), 1_000_000, Distribution::Uniform);
        let s = ColumnStats::derive(&c, 100);
        assert!(s.n_distinct <= 100.0);
        assert!(s.n_distinct > 99.0, "got {}", s.n_distinct);
    }

    #[test]
    fn distinct_count_caps_at_domain() {
        // Tiny domain, many rows: domain saturates.
        let c = Column::new(ColId(0), 100, Distribution::Uniform);
        let s = ColumnStats::derive(&c, 1_000_000);
        assert!((s.n_distinct - 100.0).abs() < 1e-6, "got {}", s.n_distinct);
    }

    #[test]
    fn skewed_column_has_fewer_distincts_than_uniform() {
        let u = Column::new(ColId(0), 10_000, Distribution::Uniform);
        let e = Column::new(ColId(0), 10_000, Distribution::Exponential { rate: 50.0 });
        let su = ColumnStats::derive(&u, 5_000);
        let se = ColumnStats::derive(&e, 5_000);
        assert!(se.n_distinct < su.n_distinct);
        assert!(se.skew_factor > su.skew_factor);
    }

    #[test]
    fn eq_selectivity_bounded_by_one() {
        let c = Column::new(ColId(0), 2, Distribution::Exponential { rate: 100.0 });
        let s = ColumnStats::derive(&c, 1000);
        assert!(s.eq_selectivity() <= 1.0);
        assert!(s.eq_selectivity() > 0.0);
    }

    #[test]
    fn page_count_grows_with_cardinality() {
        let small = RelationStats::derive(&rel(100, 100, Distribution::Uniform));
        let big = RelationStats::derive(&rel(1_000_000, 100, Distribution::Uniform));
        assert!(big.pages > small.pages);
        assert!(small.pages >= 1.0);
    }

    #[test]
    fn twenty_four_column_relation_has_realistic_pages() {
        // 24 columns × 8 bytes + 28 header = 220 bytes/tuple → 37/page.
        let columns: Vec<Column> = (0..24)
            .map(|i| Column::new(ColId(i), 1000, Distribution::Uniform))
            .collect();
        let r = Relation {
            id: RelId(0),
            name: "R0".into(),
            cardinality: 37_000,
            columns,
            indexed_column: ColId(0),
        };
        let s = RelationStats::derive(&r);
        assert!((s.pages - 1000.0).abs() <= 1.0, "pages = {}", s.pages);
    }

    #[test]
    fn analyze_covers_every_column() {
        let r = rel(1000, 500, Distribution::Uniform);
        let a = AnalyzedRelation::analyze(&r);
        assert_eq!(a.columns.len(), r.columns.len());
        assert_eq!(a.histograms.len(), r.columns.len());
        assert!(a.column(ColId(0)).is_some());
        assert!(a.column(ColId(1)).is_none());
        assert!(a.histogram(ColId(0)).is_some());
        // Uniform column: median boundary near the domain midpoint.
        let h = a.histogram(ColId(0)).unwrap();
        assert!((h.fraction_below(250) - 0.5).abs() < 0.02);
    }

    #[test]
    fn cardenas_monotone_in_cardinality() {
        let c = Column::new(ColId(0), 10_000, Distribution::Uniform);
        let mut prev = 0.0;
        for n in [10u64, 100, 1000, 10_000, 100_000] {
            let s = ColumnStats::derive(&c, n);
            assert!(s.n_distinct >= prev);
            prev = s.n_distinct;
        }
    }
}
