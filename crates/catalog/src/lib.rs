//! # sdp-catalog — schema and statistics substrate
//!
//! The SDP paper evaluates its optimizer heuristics on a synthetic
//! 25-relation schema implemented on PostgreSQL 8.1.2:
//!
//! * relational cardinalities follow a geometric distribution with
//!   parameter 1.5, ranging from 100 to 2.5 million rows;
//! * every relation has twenty-four columns, one of which (randomly
//!   chosen) carries an index;
//! * column domain sizes also follow a geometric distribution from 100
//!   to 2.5 million;
//! * column values are either uniformly or exponentially (skewed)
//!   distributed.
//!
//! This crate reproduces that schema *as metadata*: the optimizer under
//! study consumes only catalog statistics (cardinalities, distinct
//! counts, index availability, distribution shape), never the tuples
//! themselves, so generating the statistics analytically exercises the
//! identical optimizer code path that PostgreSQL's `ANALYZE`-produced
//! statistics would. Synthetic tuples matching these statistics can be
//! materialized by the `sdp-engine` crate when actual execution is
//! desired.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod column;
mod error;
mod histogram;
mod relation;
mod schema;
mod statistics;

pub use column::{ColId, Column, Distribution};
pub use error::CatalogError;
pub use histogram::Histogram;
pub use relation::{RelId, Relation};
pub use schema::{Catalog, SchemaBuilder, SchemaSpec};
pub use statistics::{
    AnalyzedRelation, ColumnStats, RelationStats, PAGE_SIZE_BYTES, TUPLE_HEADER_BYTES,
};
