//! Relation (base table) metadata.

use std::fmt;

use crate::column::{ColId, Column};

/// Identifier of a base relation within a [`crate::Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Metadata for one base relation.
///
/// Matches the paper's schema: a cardinality drawn from a geometric
/// progression, twenty-four columns, and an index on one randomly
/// chosen column.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Catalog-wide identifier.
    pub id: RelId,
    /// Human-readable name, e.g. `"R7"`.
    pub name: String,
    /// Number of tuples in the relation.
    pub cardinality: u64,
    /// Column metadata, indexed by [`ColId`].
    pub columns: Vec<Column>,
    /// The single indexed column ("a random column has an index built
    /// on it").
    pub indexed_column: ColId,
}

impl Relation {
    /// Look up a column by id.
    pub fn column(&self, col: ColId) -> Option<&Column> {
        self.columns.get(col.0 as usize)
    }

    /// Whether the given column carries an index.
    pub fn has_index_on(&self, col: ColId) -> bool {
        self.indexed_column == col
    }

    /// Total tuple width in bytes (sum of column widths).
    pub fn tuple_width_bytes(&self) -> u32 {
        self.columns.iter().map(|c| c.width_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Distribution;

    fn sample_relation() -> Relation {
        let columns = (0..4)
            .map(|i| Column::new(ColId(i), 100, Distribution::Uniform))
            .collect();
        Relation {
            id: RelId(1),
            name: "R1".into(),
            cardinality: 1000,
            columns,
            indexed_column: ColId(2),
        }
    }

    #[test]
    fn column_lookup_in_and_out_of_range() {
        let r = sample_relation();
        assert!(r.column(ColId(0)).is_some());
        assert!(r.column(ColId(3)).is_some());
        assert!(r.column(ColId(4)).is_none());
    }

    #[test]
    fn index_flag_matches_indexed_column() {
        let r = sample_relation();
        assert!(r.has_index_on(ColId(2)));
        assert!(!r.has_index_on(ColId(0)));
    }

    #[test]
    fn tuple_width_sums_column_widths() {
        let r = sample_relation();
        assert_eq!(r.tuple_width_bytes(), 4 * 8);
    }

    #[test]
    fn rel_id_displays_with_prefix() {
        assert_eq!(RelId(24).to_string(), "R24");
    }
}
