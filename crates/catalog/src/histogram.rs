//! Equi-depth histograms — the `pg_statistic` companion to the
//! distinct counts.
//!
//! PostgreSQL's `ANALYZE` stores equi-depth (equal-frequency) bucket
//! boundaries per column; range-predicate selectivities interpolate
//! within the bucket containing the constant. We support both
//! construction paths:
//!
//! * [`Histogram::from_cdf`] — analytic boundaries from the known
//!   synthetic distribution (exact quantiles, what the schema builder
//!   uses);
//! * [`Histogram::from_values`] — boundaries from actual data (what
//!   `sdp-engine`'s sampled re-analysis uses), drifting from the
//!   analytic version only by sampling noise.

/// An equi-depth histogram over an integer domain `[0, domain)`.
///
/// `bounds` has `buckets + 1` monotone entries; bucket `i` covers
/// `[bounds[i], bounds[i+1])` and holds `1/buckets` of the value mass
/// (the final bucket is closed at the top).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<i64>,
}

impl Histogram {
    /// Number of buckets used throughout the catalog (PostgreSQL's
    /// default statistics target era value).
    pub const DEFAULT_BUCKETS: usize = 32;

    /// Build from a cumulative distribution function over the unit
    /// interval (monotone, `cdf(0) = 0`, `cdf(1) = 1`): boundary `i`
    /// is the `i/buckets` quantile of the domain.
    ///
    /// # Panics
    /// Panics if `buckets` is 0 or `domain` is 0.
    pub fn from_cdf(domain: u64, buckets: usize, cdf: impl Fn(f64) -> f64) -> Self {
        assert!(buckets > 0 && domain > 0);
        let mut bounds = Vec::with_capacity(buckets + 1);
        bounds.push(0);
        for b in 1..buckets {
            let target = b as f64 / buckets as f64;
            // Bisection on the quantile (cdf is monotone).
            let (mut lo, mut hi) = (0.0f64, 1.0f64);
            for _ in 0..40 {
                let mid = (lo + hi) / 2.0;
                if cdf(mid) < target {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            bounds.push((lo * domain as f64) as i64);
        }
        bounds.push(domain as i64);
        // Enforce monotonicity after integer truncation.
        for i in 1..bounds.len() {
            if bounds[i] < bounds[i - 1] {
                bounds[i] = bounds[i - 1];
            }
        }
        Histogram { bounds }
    }

    /// Build from observed values (sorted internally).
    ///
    /// # Panics
    /// Panics if `values` is empty or `buckets` is 0.
    pub fn from_values(values: &[i64], buckets: usize) -> Self {
        assert!(!values.is_empty() && buckets > 0);
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut bounds = Vec::with_capacity(buckets + 1);
        bounds.push(sorted[0]);
        for b in 1..buckets {
            bounds.push(sorted[(b * n / buckets).min(n - 1)]);
        }
        bounds.push(sorted[n - 1] + 1); // exclusive top
        for i in 1..bounds.len() {
            if bounds[i] < bounds[i - 1] {
                bounds[i] = bounds[i - 1];
            }
        }
        Histogram { bounds }
    }

    /// The bucket boundaries.
    pub fn bounds(&self) -> &[i64] {
        &self.bounds
    }

    /// Estimated fraction of values strictly below `v`, interpolating
    /// linearly within the containing bucket.
    pub fn fraction_below(&self, v: i64) -> f64 {
        let b = &self.bounds;
        let buckets = b.len() - 1;
        if v <= b[0] {
            return 0.0;
        }
        if v >= b[buckets] {
            return 1.0;
        }
        // Binary search for the containing bucket.
        let i = match b.binary_search(&v) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let lo = b[i] as f64;
        let hi = b[i + 1] as f64;
        let within = if hi > lo {
            (v as f64 - lo) / (hi - lo)
        } else {
            0.0
        };
        (i as f64 + within) / buckets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Distribution;

    #[test]
    fn uniform_cdf_gives_uniform_buckets() {
        let h = Histogram::from_cdf(1000, 10, |x| x);
        assert_eq!(h.bounds().len(), 11);
        // Each bucket ~100 wide.
        for w in h.bounds().windows(2) {
            assert!((w[1] - w[0] - 100).abs() <= 2, "bounds {:?}", h.bounds());
        }
        assert!((h.fraction_below(500) - 0.5).abs() < 0.01);
        assert_eq!(h.fraction_below(0), 0.0);
        assert_eq!(h.fraction_below(1000), 1.0);
    }

    #[test]
    fn exponential_cdf_gives_front_loaded_buckets() {
        let d = Distribution::Exponential { rate: 20.0 };
        let h = Histogram::from_cdf(10_000, 16, |x| d.cdf(x));
        // The first bucket must be much narrower than the last.
        let first = h.bounds()[1] - h.bounds()[0];
        let last = h.bounds()[16] - h.bounds()[15];
        assert!(last > first * 10, "first {first}, last {last}");
        // fraction_below tracks the true CDF.
        for v in [100i64, 500, 2000, 9000] {
            let est = h.fraction_below(v);
            let truth = d.cdf(v as f64 / 10_000.0);
            assert!((est - truth).abs() < 0.05, "v={v}: {est} vs {truth}");
        }
    }

    #[test]
    fn from_values_matches_from_cdf_on_uniform_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let values: Vec<i64> = (0..20_000).map(|_| rng.gen_range(0..1000)).collect();
        let sampled = Histogram::from_values(&values, 10);
        let analytic = Histogram::from_cdf(1000, 10, |x| x);
        for v in [100i64, 300, 700, 950] {
            let a = sampled.fraction_below(v);
            let b = analytic.fraction_below(v);
            assert!((a - b).abs() < 0.05, "v={v}: sampled {a} vs analytic {b}");
        }
    }

    #[test]
    fn degenerate_single_value_data() {
        let h = Histogram::from_values(&[7, 7, 7, 7], 4);
        assert_eq!(h.fraction_below(7), 0.0);
        assert_eq!(h.fraction_below(8), 1.0);
        assert_eq!(h.fraction_below(6), 0.0);
    }

    #[test]
    fn fraction_below_is_monotone() {
        let d = Distribution::Exponential { rate: 5.0 };
        let h = Histogram::from_cdf(500, 8, |x| d.cdf(x));
        let mut prev = -1.0;
        for v in (0..=500).step_by(25) {
            let f = h.fraction_below(v);
            assert!(f >= prev);
            prev = f;
        }
    }
}
