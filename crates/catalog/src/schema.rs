//! Catalog construction: the paper's 25-relation benchmark schema and
//! its extended variant for the maximum-scale-up experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::column::{ColId, Column, Distribution};
use crate::error::CatalogError;
use crate::relation::{RelId, Relation};
use crate::statistics::AnalyzedRelation;

/// Parameters describing a synthetic schema in the paper's style.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSpec {
    /// Number of base relations (paper: 25; extended schema for the
    /// Table 3.3 scale-up uses more).
    pub relations: usize,
    /// Number of columns per relation (paper: 24).
    pub columns_per_relation: usize,
    /// Smallest relational cardinality (paper: 100).
    pub min_cardinality: u64,
    /// Largest relational cardinality (paper: 2.5 million).
    pub max_cardinality: u64,
    /// Geometric progression parameter for cardinalities (paper: 1.5).
    pub geometric_ratio: f64,
    /// Smallest column domain size (paper: 100).
    pub min_domain: u64,
    /// Largest column domain size (paper: 2.5 million).
    pub max_domain: u64,
    /// Fraction of columns carrying a skewed (exponential)
    /// distribution; 0 reproduces the paper's uniform datasets, > 0
    /// its skewed datasets.
    pub skewed_fraction: f64,
    /// Rate parameter used for exponential columns.
    pub exponential_rate: f64,
    /// RNG seed controlling index placement, domain assignment and
    /// skew placement.
    pub seed: u64,
}

impl SchemaSpec {
    /// The paper's 25-relation benchmark schema with uniform data.
    pub fn paper() -> Self {
        SchemaSpec {
            relations: 25,
            columns_per_relation: 24,
            min_cardinality: 100,
            max_cardinality: 2_500_000,
            geometric_ratio: 1.5,
            min_domain: 100,
            max_domain: 2_500_000,
            skewed_fraction: 0.0,
            exponential_rate: 20.0,
            seed: 0x5d9_2007,
        }
    }

    /// The paper's schema with skewed (exponential) value
    /// distributions on half of the columns.
    pub fn paper_skewed() -> Self {
        SchemaSpec {
            skewed_fraction: 0.5,
            ..SchemaSpec::paper()
        }
    }

    /// The extended schema used for the maximum scale-up experiment
    /// (Table 3.3), carrying enough relations for star joins of up to
    /// `relations` spokes. The column count is raised to 64 so that a
    /// large star's hub can give every spoke a distinct join column —
    /// with only 24 columns, hubs of 25+ spokes would be forced to
    /// share join columns, and the rewriter's transitive closure would
    /// turn the "pure star" into a dense multi-hub graph (the paper's
    /// scale-up speaks only of "an extended database schema").
    pub fn extended(relations: usize) -> Self {
        SchemaSpec {
            relations,
            columns_per_relation: 64,
            ..SchemaSpec::paper()
        }
    }
}

/// A fully constructed schema: relations plus their derived
/// (`ANALYZE`-equivalent) statistics.
#[derive(Debug, Clone)]
pub struct Catalog {
    spec: SchemaSpec,
    relations: Vec<Relation>,
    analyzed: Vec<AnalyzedRelation>,
    /// Statistics epoch: incremented whenever the derived statistics
    /// change ([`Catalog::replace_stats`], [`Catalog::bump_stats_epoch`]).
    /// Long-running services key cached plans on this so a statistics
    /// refresh atomically invalidates every plan optimized under the
    /// old estimates.
    stats_epoch: u64,
}

impl Catalog {
    /// Build the paper's default 25-relation schema.
    pub fn paper() -> Self {
        SchemaBuilder::new(SchemaSpec::paper())
            .build()
            .expect("paper spec is valid")
    }

    /// Build the paper's schema with skewed column distributions.
    pub fn paper_skewed() -> Self {
        SchemaBuilder::new(SchemaSpec::paper_skewed())
            .build()
            .expect("paper skewed spec is valid")
    }

    /// Build the extended scale-up schema with `n` relations.
    pub fn extended(n: usize) -> Self {
        SchemaBuilder::new(SchemaSpec::extended(n))
            .build()
            .expect("extended spec is valid")
    }

    /// The specification this catalog was built from.
    pub fn spec(&self) -> &SchemaSpec {
        &self.spec
    }

    /// Number of relations in the catalog.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty (never true for valid specs).
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// All relations, ordered by id.
    pub fn relations(&self) -> &[Relation] {
        &self.relations
    }

    /// Look up one relation.
    pub fn relation(&self, id: RelId) -> Result<&Relation, CatalogError> {
        self.relations
            .get(id.0 as usize)
            .ok_or(CatalogError::UnknownRelation(id.0 as usize))
    }

    /// Derived statistics for one relation.
    pub fn stats(&self, id: RelId) -> Result<&AnalyzedRelation, CatalogError> {
        self.analyzed
            .get(id.0 as usize)
            .ok_or(CatalogError::UnknownRelation(id.0 as usize))
    }

    /// Id of the relation with the largest cardinality (the paper
    /// places the star hub on the largest relation, "as is usually the
    /// case in data warehousing applications").
    pub fn largest_relation(&self) -> RelId {
        self.relations
            .iter()
            .max_by_key(|r| r.cardinality)
            .map(|r| r.id)
            .expect("catalog is never empty")
    }

    /// Replace the derived statistics with externally computed ones —
    /// e.g. `sdp-engine`'s sampled re-analysis of materialized data.
    /// Bumps the [statistics epoch](Catalog::stats_epoch).
    ///
    /// # Panics
    /// Panics unless exactly one `AnalyzedRelation` per relation is
    /// supplied (in relation-id order).
    pub fn replace_stats(&mut self, analyzed: Vec<AnalyzedRelation>) {
        assert_eq!(
            analyzed.len(),
            self.relations.len(),
            "one AnalyzedRelation per relation required"
        );
        self.analyzed = analyzed;
        self.stats_epoch += 1;
    }

    /// The current statistics epoch. Starts at 0 for a freshly built
    /// catalog and increases monotonically on every statistics change;
    /// two equal epochs on the same catalog instance guarantee the
    /// optimizer would see identical estimates.
    pub fn stats_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// Advance the statistics epoch without changing the statistics —
    /// for forcing downstream caches to re-optimize (e.g. after
    /// tweaking cost parameters that live outside the catalog).
    pub fn bump_stats_epoch(&mut self) {
        self.stats_epoch += 1;
    }

    /// Total size of the database in bytes (heap pages only), for
    /// comparison against the paper's "approximately 1.5 GB".
    pub fn database_bytes(&self) -> u64 {
        self.analyzed
            .iter()
            .map(|a| (a.relation.pages * crate::statistics::PAGE_SIZE_BYTES as f64) as u64)
            .sum()
    }
}

/// Builder producing a [`Catalog`] from a [`SchemaSpec`].
#[derive(Debug)]
pub struct SchemaBuilder {
    spec: SchemaSpec,
}

impl SchemaBuilder {
    /// Start building from a specification.
    pub fn new(spec: SchemaSpec) -> Self {
        SchemaBuilder { spec }
    }

    /// Validate the specification and construct the catalog.
    pub fn build(self) -> Result<Catalog, CatalogError> {
        let spec = self.spec;
        if spec.relations == 0 {
            return Err(CatalogError::InvalidSpec("zero relations".into()));
        }
        if spec.columns_per_relation == 0 {
            return Err(CatalogError::InvalidSpec(
                "zero columns per relation".into(),
            ));
        }
        if spec.geometric_ratio <= 1.0 {
            return Err(CatalogError::InvalidSpec(
                "geometric ratio must exceed 1".into(),
            ));
        }
        if spec.min_cardinality == 0 || spec.max_cardinality < spec.min_cardinality {
            return Err(CatalogError::InvalidSpec(
                "cardinality range is empty".into(),
            ));
        }
        if !(0.0..=1.0).contains(&spec.skewed_fraction) {
            return Err(CatalogError::InvalidSpec(
                "skewed fraction outside [0, 1]".into(),
            ));
        }

        let mut rng = StdRng::seed_from_u64(spec.seed);
        let cardinalities = geometric_series(
            spec.min_cardinality,
            spec.max_cardinality,
            spec.geometric_ratio,
            spec.relations,
        );
        let domains = geometric_series(
            spec.min_domain,
            spec.max_domain,
            spec.geometric_ratio,
            spec.columns_per_relation.max(2),
        );

        let mut relations = Vec::with_capacity(spec.relations);
        for (i, &cardinality) in cardinalities.iter().enumerate() {
            let mut columns = Vec::with_capacity(spec.columns_per_relation);
            for c in 0..spec.columns_per_relation {
                // Spread the geometric domain progression across the
                // columns in a rotated order so relation i does not
                // always pair the same column index with the same
                // domain size.
                let domain = domains[(c + i) % domains.len()];
                let distribution = if rng.gen::<f64>() < spec.skewed_fraction {
                    Distribution::Exponential {
                        rate: spec.exponential_rate,
                    }
                } else {
                    Distribution::Uniform
                };
                columns.push(Column::new(ColId(c as u16), domain, distribution));
            }
            let indexed_column = ColId(rng.gen_range(0..spec.columns_per_relation) as u16);
            relations.push(Relation {
                id: RelId(i as u32),
                name: format!("R{i}"),
                cardinality,
                columns,
                indexed_column,
            });
        }

        let analyzed = relations.iter().map(AnalyzedRelation::analyze).collect();
        Ok(Catalog {
            spec,
            relations,
            analyzed,
            stats_epoch: 0,
        })
    }
}

/// A geometric progression of `count` values spanning exactly
/// `min ..= max`.
///
/// The paper quotes "a geometric distribution (parameter 1.5) of the
/// relational cardinalities, ranging from 100 to 2.5 million rows",
/// which is slightly over-determined: 100 · 1.5²⁴ ≈ 1.68 M, not 2.5 M.
/// We honour the endpoints (they drive the feasibility results) and
/// derive the effective ratio from them — ≈ 1.525 for 25 relations,
/// within rounding of the quoted 1.5. The `ratio` field of the spec is
/// retained as the nominal parameter and validated, but the endpoints
/// win.
fn geometric_series(min: u64, max: u64, _nominal_ratio: f64, count: usize) -> Vec<u64> {
    if count == 1 {
        return vec![min];
    }
    let ratio = (max as f64 / min as f64).powf(1.0 / (count as f64 - 1.0));
    let mut out = Vec::with_capacity(count);
    let mut v = min as f64;
    for _ in 0..count {
        out.push((v.round() as u64).clamp(min, max));
        v *= ratio;
    }
    // Guard against floating-point undershoot on the final term.
    *out.last_mut().expect("count >= 1") = max;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_schema_matches_parameters() {
        let c = Catalog::paper();
        assert_eq!(c.len(), 25);
        for r in c.relations() {
            assert_eq!(r.columns.len(), 24);
            assert!(r.cardinality >= 100 && r.cardinality <= 2_500_000);
        }
        assert_eq!(c.relations()[0].cardinality, 100);
        assert_eq!(c.relations()[24].cardinality, 2_500_000);
    }

    #[test]
    fn cardinalities_follow_geometric_progression() {
        let c = Catalog::paper();
        // Effective ratio derived from the endpoints: 25000^(1/24).
        let expected = 25_000f64.powf(1.0 / 24.0);
        for w in c.relations().windows(2) {
            let ratio = w[1].cardinality as f64 / w[0].cardinality as f64;
            assert!((ratio - expected).abs() < 0.02, "ratio {ratio}");
        }
        assert!((expected - 1.5).abs() < 0.1, "close to the paper's 1.5");
    }

    #[test]
    fn largest_relation_is_the_hub_candidate() {
        let c = Catalog::paper();
        let hub = c.largest_relation();
        let max = c.relations().iter().map(|r| r.cardinality).max().unwrap();
        assert_eq!(c.relation(hub).unwrap().cardinality, max);
    }

    #[test]
    fn database_size_is_gigabyte_scale() {
        let c = Catalog::paper();
        let gb = c.database_bytes() as f64 / (1024.0 * 1024.0 * 1024.0);
        // Paper reports ~1.5 GB; with 24 8-byte columns we land in the
        // same order of magnitude.
        assert!(gb > 0.5 && gb < 5.0, "database is {gb:.2} GB");
    }

    #[test]
    fn skewed_schema_contains_skewed_columns() {
        let c = Catalog::paper_skewed();
        let skewed: usize = c
            .relations()
            .iter()
            .flat_map(|r| &r.columns)
            .filter(|col| col.distribution.is_skewed())
            .count();
        let total = 25 * 24;
        let frac = skewed as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.1, "skewed fraction {frac}");
    }

    #[test]
    fn extended_schema_scales_relation_count() {
        let c = Catalog::extended(50);
        assert_eq!(c.len(), 50);
        // Saturates at the max cardinality once the progression tops out.
        assert_eq!(c.relations()[49].cardinality, 2_500_000);
    }

    #[test]
    fn build_rejects_invalid_specs() {
        let mut s = SchemaSpec::paper();
        s.relations = 0;
        assert!(SchemaBuilder::new(s).build().is_err());

        let mut s = SchemaSpec::paper();
        s.columns_per_relation = 0;
        assert!(SchemaBuilder::new(s).build().is_err());

        let mut s = SchemaSpec::paper();
        s.geometric_ratio = 0.9;
        assert!(SchemaBuilder::new(s).build().is_err());

        let mut s = SchemaSpec::paper();
        s.max_cardinality = 10;
        assert!(SchemaBuilder::new(s).build().is_err());

        let mut s = SchemaSpec::paper();
        s.skewed_fraction = 1.5;
        assert!(SchemaBuilder::new(s).build().is_err());
    }

    #[test]
    fn unknown_relation_lookup_errors() {
        let c = Catalog::paper();
        assert!(c.relation(RelId(99)).is_err());
        assert!(c.stats(RelId(99)).is_err());
    }

    #[test]
    fn schema_generation_is_deterministic() {
        let a = Catalog::paper();
        let b = Catalog::paper();
        for (ra, rb) in a.relations().iter().zip(b.relations()) {
            assert_eq!(ra.indexed_column, rb.indexed_column);
            assert_eq!(ra.cardinality, rb.cardinality);
        }
    }

    #[test]
    fn stats_epoch_tracks_statistics_changes() {
        let mut c = Catalog::paper();
        assert_eq!(c.stats_epoch(), 0);
        c.bump_stats_epoch();
        assert_eq!(c.stats_epoch(), 1);
        let analyzed = c
            .relations()
            .iter()
            .map(AnalyzedRelation::analyze)
            .collect();
        c.replace_stats(analyzed);
        assert_eq!(c.stats_epoch(), 2);
        // Fresh builds always start at epoch 0.
        assert_eq!(Catalog::paper().stats_epoch(), 0);
    }

    #[test]
    fn geometric_series_saturates_at_max() {
        let s = geometric_series(100, 1000, 2.0, 8);
        assert_eq!(s[0], 100);
        assert!(s.iter().all(|&v| v <= 1000));
        assert_eq!(*s.last().unwrap(), 1000);
    }
}
