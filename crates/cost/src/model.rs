//! The cost-model facade consumed by the enumerators.

use sdp_catalog::{Catalog, RelId};
use sdp_query::ClassId;

use crate::estimate::Estimator;
use crate::join::{join_candidates, InnerIndex, JoinCandidate, JoinInput};
use crate::params::CostParams;
use crate::scan::{scan_paths, scan_paths_for_node, sort_cost, ScanPath};

/// Everything an enumerator needs to cost plans: statistics access,
/// cardinality estimation, and operator costing under one roof.
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    estimator: Estimator<'a>,
    params: CostParams,
}

impl<'a> CostModel<'a> {
    /// Build a cost model over a catalog with the given constants.
    ///
    /// # Panics
    /// Panics if `params` fail validation — a cost model with
    /// non-positive constants produces meaningless plans.
    pub fn new(catalog: &'a Catalog, params: CostParams) -> Self {
        params.validate().expect("invalid cost parameters");
        CostModel {
            estimator: Estimator::new(catalog),
            params,
        }
    }

    /// Cost model with PostgreSQL-default constants.
    pub fn with_defaults(catalog: &'a Catalog) -> Self {
        CostModel::new(catalog, CostParams::default())
    }

    /// The cardinality estimator.
    pub fn estimator(&self) -> &Estimator<'a> {
        &self.estimator
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &'a Catalog {
        self.estimator.catalog()
    }

    /// The cost constants in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// All access paths for a base relation (no local predicates).
    pub fn scan_paths(&self, rel: RelId) -> Vec<ScanPath> {
        scan_paths(self.catalog(), rel, &self.params)
    }

    /// All access paths for a query node, its local predicates pushed
    /// into the scans.
    pub fn scan_paths_for_node(&self, graph: &sdp_query::JoinGraph, node: usize) -> Vec<ScanPath> {
        scan_paths_for_node(self.catalog(), graph, node, &self.params)
    }

    /// All join methods applicable to `outer ⋈ inner`. See
    /// [`join_candidates`].
    #[allow(clippy::too_many_arguments)]
    pub fn join_candidates(
        &self,
        outer: &JoinInput,
        inner: &JoinInput,
        crossing_sel: f64,
        out_rows: f64,
        join_class: Option<ClassId>,
        inner_index: Option<InnerIndex>,
    ) -> Vec<JoinCandidate> {
        join_candidates(
            outer,
            inner,
            crossing_sel,
            out_rows,
            join_class,
            inner_index,
            &self.params,
        )
    }

    /// Cost of explicitly sorting `rows` tuples of `width` bytes (the
    /// top-level `ORDER BY` enforcer).
    pub fn sort_cost(&self, rows: f64, width: f64) -> f64 {
        sort_cost(rows, width, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;

    #[test]
    fn facade_wires_components() {
        let cat = Catalog::paper();
        let m = CostModel::with_defaults(&cat);
        assert_eq!(m.catalog().len(), 25);
        let paths = m.scan_paths(RelId(0));
        assert_eq!(paths.len(), 2);
        assert!(m.sort_cost(1000.0, 100.0) > 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid cost parameters")]
    fn invalid_params_rejected() {
        let cat = Catalog::paper();
        let bad = CostParams {
            cpu_tuple_cost: -1.0,
            ..CostParams::default()
        };
        let _ = CostModel::new(&cat, bad);
    }
}
