//! # sdp-cost — PostgreSQL-shaped cost model and cardinality estimation
//!
//! The SDP paper's experiments were "conducted through direct
//! implementation on the PostgreSQL engine", so every plan-quality
//! number in its tables is an *optimizer-estimated cost* produced by
//! PostgreSQL's cost model over `ANALYZE` statistics. This crate
//! rebuilds that model in the same shape:
//!
//! * [`CostParams`] — the familiar `seq_page_cost` /
//!   `random_page_cost` / `cpu_tuple_cost` / … constants with
//!   PostgreSQL 8.1 defaults;
//! * [`Estimator`] — cardinality and selectivity estimation under the
//!   classical independence assumptions (`1/max(ndv)` equi-join
//!   selectivity, Cardenas distinct counts, skew correction), working
//!   in log-space so 40+-way joins cannot overflow;
//! * [`CostModel`] — access-path costing (sequential and full index
//!   scans) and join costing (nested loop, index nested loop, hash,
//!   merge) including sort costs and an interesting-order-aware
//!   description of each candidate's output ordering.
//!
//! The absolute constants do not matter for reproducing the paper —
//! only the *trade-off structure* does (cheap-but-big versus
//! expensive-but-small subplans is what skyline pruning exploits) —
//! but keeping PostgreSQL's shape makes the reproduction faithful.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod estimate;
mod join;
mod model;
mod params;
mod scan;

pub use estimate::Estimator;
pub use join::{join_candidates, InnerIndex, JoinCandidate, JoinInput, JoinMethod};
pub use model::CostModel;
pub use params::CostParams;
pub use scan::{index_probe_cost, scan_paths, scan_paths_for_node, sort_cost, ScanKind, ScanPath};
