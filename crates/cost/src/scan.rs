//! Access-path costing for base relations.

use sdp_catalog::{Catalog, ColId, RelId};
use sdp_query::JoinGraph;

use crate::estimate::Estimator;
use crate::params::CostParams;

/// The physical access method of a base-relation scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScanKind {
    /// Sequential heap scan — cheapest way to read everything,
    /// produces no ordering.
    Seq,
    /// Full scan in index order — more expensive (random heap
    /// fetches), but emits tuples sorted by the indexed column,
    /// which later merge joins or `ORDER BY` can exploit.
    IndexFull,
    /// Selective index scan driven by a local predicate on the
    /// indexed column: touches only the matching fraction of the
    /// relation (and still emits index order).
    IndexRange,
}

/// A costed access path for one base relation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanPath {
    /// Access method.
    pub kind: ScanKind,
    /// Total cost of producing all tuples.
    pub cost: f64,
    /// Column whose order the output carries, if any.
    pub ordering_col: Option<ColId>,
}

/// Cost all access paths available for `rel`.
///
/// Mirrors PostgreSQL: a sequential scan is always available; a full
/// index scan is available on the relation's (single) indexed column.
/// The index scan charges `cpu_index_tuple_cost` per entry plus
/// random-page heap fetches discounted by an assumed 70 % physical
/// correlation — expensive enough that it never wins on raw cost, and
/// survives in the memo only through its interesting order, exactly
/// the dynamic interesting-order handling needs.
pub fn scan_paths(catalog: &Catalog, rel: RelId, params: &CostParams) -> Vec<ScanPath> {
    let stats = catalog.stats(rel).expect("relation exists").relation;
    let relation = catalog.relation(rel).expect("relation exists");
    let tuples = stats.tuples;
    let pages = stats.pages;

    let seq = ScanPath {
        kind: ScanKind::Seq,
        cost: pages * params.seq_page_cost + tuples * params.cpu_tuple_cost,
        ordering_col: None,
    };

    // Random heap page fetches for an unclustered full index scan,
    // discounted toward sequential by assumed correlation.
    let correlation_discount = 0.3;
    let heap_io = pages * params.seq_page_cost
        + pages * (params.random_page_cost - params.seq_page_cost) * correlation_discount;
    let index = ScanPath {
        kind: ScanKind::IndexFull,
        cost: heap_io
            + tuples * (params.cpu_index_tuple_cost + params.cpu_tuple_cost)
            + (pages.log2().max(1.0)) * params.random_page_cost,
        ordering_col: Some(relation.indexed_column),
    };

    vec![seq, index]
}

/// Cost all access paths for query node `node` of `graph`, local
/// predicates included (pushed into the scan, PostgreSQL style):
///
/// * the sequential scan pays a `cpu_operator_cost` per tuple per
///   predicate on top of the unfiltered scan;
/// * the full index scan likewise (still useful for its order);
/// * when a predicate filters the *indexed* column, a selective
///   [`ScanKind::IndexRange`] path touches only the matching fraction
///   of the heap — the classical reason selective queries flip from
///   seq scans to index scans.
pub fn scan_paths_for_node(
    catalog: &Catalog,
    graph: &JoinGraph,
    node: usize,
    params: &CostParams,
) -> Vec<ScanPath> {
    let rel = graph.relation(node);
    let stats = catalog.stats(rel).expect("relation exists").relation;
    let relation = catalog.relation(rel).expect("relation exists");
    let nfilters = graph.filters_on(node).count() as f64;
    let filter_cpu = stats.tuples * nfilters * params.cpu_operator_cost;

    let mut paths = scan_paths(catalog, rel, params);
    for p in &mut paths {
        p.cost += filter_cpu;
    }

    // Selective index scan when the indexed column is filtered.
    let est = Estimator::new(catalog);
    let ln_indexed_sel: f64 = graph
        .filters_on(node)
        .filter(|f| f.column.col == relation.indexed_column)
        .map(|f| est.predicate_selectivity(graph, f).ln())
        .sum();
    if ln_indexed_sel < 0.0 {
        let matched = (stats.tuples * ln_indexed_sel.exp()).max(1.0);
        let residual_filters = graph
            .filters_on(node)
            .filter(|f| f.column.col != relation.indexed_column)
            .count() as f64;
        let cost = index_probe_cost(stats.tuples, stats.pages, matched, params)
            + matched * residual_filters * params.cpu_operator_cost;
        paths.push(ScanPath {
            kind: ScanKind::IndexRange,
            cost,
            ordering_col: Some(relation.indexed_column),
        });
    }
    paths
}

/// Cost of an index *probe* returning `matched_rows` of the inner
/// relation for one outer tuple — the inner side of an index
/// nested-loop join.
pub fn index_probe_cost(
    inner_tuples: f64,
    inner_pages: f64,
    matched_rows: f64,
    params: &CostParams,
) -> f64 {
    // B-tree descent.
    let descent =
        inner_tuples.max(2.0).log2() * params.cpu_operator_cost + params.random_page_cost * 0.25; // amortized upper-page caching
                                                                                                  // Heap fetches: one random page per matched row, capped by the
                                                                                                  // relation size.
    let heap = params.random_page_cost * matched_rows.min(inner_pages).max(0.0);
    let cpu = matched_rows * (params.cpu_index_tuple_cost + params.cpu_tuple_cost);
    descent + heap + cpu
}

/// Cost of sorting `rows` tuples of `width` bytes (PostgreSQL-style:
/// comparison CPU plus external-merge I/O when the data exceeds
/// `work_mem`).
pub fn sort_cost(rows: f64, width: f64, params: &CostParams) -> f64 {
    let rows = rows.max(2.0);
    let cmp = 2.0 * rows * rows.log2() * params.cpu_operator_cost;
    let bytes = rows * width.max(1.0);
    if bytes <= params.work_mem_bytes {
        cmp
    } else {
        let pages = bytes / sdp_catalog::PAGE_SIZE_BYTES as f64;
        let merge_passes = (bytes / params.work_mem_bytes).log2().ceil().max(1.0);
        cmp + 2.0 * pages * params.seq_page_cost * merge_passes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;

    #[test]
    fn seq_scan_is_cheaper_than_index_scan() {
        let cat = Catalog::paper();
        let params = CostParams::default();
        for r in cat.relations() {
            let paths = scan_paths(&cat, r.id, &params);
            let seq = paths.iter().find(|p| p.kind == ScanKind::Seq).unwrap();
            let idx = paths
                .iter()
                .find(|p| p.kind == ScanKind::IndexFull)
                .unwrap();
            assert!(seq.cost < idx.cost, "relation {}", r.name);
            assert!(seq.ordering_col.is_none());
            assert_eq!(idx.ordering_col, Some(r.indexed_column));
        }
    }

    #[test]
    fn scan_cost_grows_with_cardinality() {
        let cat = Catalog::paper();
        let params = CostParams::default();
        let costs: Vec<f64> = cat
            .relations()
            .iter()
            .map(|r| scan_paths(&cat, r.id, &params)[0].cost)
            .collect();
        for w in costs.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn probe_cost_grows_with_matches() {
        let p = CostParams::default();
        let a = index_probe_cost(1e6, 1e4, 1.0, &p);
        let b = index_probe_cost(1e6, 1e4, 100.0, &p);
        assert!(b > a);
        // Heap fetches are capped at the relation size.
        let c = index_probe_cost(1e6, 10.0, 1e9, &p);
        assert!(c.is_finite());
    }

    #[test]
    fn probe_beats_rescan_for_selective_joins() {
        // One selective probe must be far cheaper than re-scanning a
        // million-row relation — otherwise index NLJ never wins and
        // star queries lose their structure.
        let cat = Catalog::paper();
        let p = CostParams::default();
        let big = cat.relations().last().unwrap();
        let stats = cat.stats(big.id).unwrap().relation;
        let probe = index_probe_cost(stats.tuples, stats.pages, 2.0, &p);
        let seq = scan_paths(&cat, big.id, &p)[0].cost;
        assert!(probe * 100.0 < seq);
    }

    #[test]
    fn sort_cost_superlinear_and_spills() {
        let p = CostParams::default();
        let small = sort_cost(1_000.0, 100.0, &p);
        let large = sort_cost(100_000.0, 100.0, &p);
        assert!(large > 100.0 * small); // superlinear
                                        // Spilling version strictly exceeds in-memory CPU-only bound.
        let rows: f64 = 1e6;
        let cmp_only = 2.0 * rows * rows.log2() * p.cpu_operator_cost;
        assert!(sort_cost(rows, 100.0, &p) > cmp_only);
    }

    #[test]
    fn selective_filter_on_indexed_column_beats_seq_scan() {
        use sdp_query::{ColRef, PredOp, Predicate, QueryGenerator, Topology};
        let cat = Catalog::paper();
        let params = CostParams::default();
        let q = QueryGenerator::new(&cat, Topology::Chain(2), 3).instance(0);
        // Filter node 0 on its indexed column with a tight range.
        let rel = cat.relation(q.graph.relation(0)).unwrap();
        let mut g = q.graph.clone();
        let narrow = (rel.column(rel.indexed_column).unwrap().domain_size / 100).max(1) as i64;
        g.add_filter(Predicate::new(
            ColRef::new(0, rel.indexed_column),
            PredOp::Lt,
            narrow,
        ));
        let paths = scan_paths_for_node(&cat, &g, 0, &params);
        let seq = paths.iter().find(|p| p.kind == ScanKind::Seq).unwrap();
        let range = paths
            .iter()
            .find(|p| p.kind == ScanKind::IndexRange)
            .expect("range path exists");
        assert!(
            range.cost < seq.cost,
            "1% index range ({}) should beat seq scan ({})",
            range.cost,
            seq.cost
        );
        assert_eq!(range.ordering_col, Some(rel.indexed_column));
    }

    #[test]
    fn filters_on_other_columns_only_add_cpu() {
        use sdp_query::{ColRef, PredOp, Predicate, QueryGenerator, Topology};
        let cat = Catalog::paper();
        let params = CostParams::default();
        let q = QueryGenerator::new(&cat, Topology::Chain(2), 3).instance(0);
        let rel = cat.relation(q.graph.relation(0)).unwrap();
        let other = sdp_catalog::ColId(if rel.indexed_column.0 == 0 { 1 } else { 0 });
        let mut g = q.graph.clone();
        g.add_filter(Predicate::new(ColRef::new(0, other), PredOp::Gt, 5));
        let plain = scan_paths(&cat, rel.id, &params);
        let filtered = scan_paths_for_node(&cat, &g, 0, &params);
        // No IndexRange path (indexed column unfiltered)…
        assert!(filtered.iter().all(|p| p.kind != ScanKind::IndexRange));
        // …and every path gained exactly the per-tuple filter CPU.
        for (a, b) in plain.iter().zip(&filtered) {
            assert!(b.cost > a.cost);
        }
    }

    #[test]
    fn sort_cost_handles_degenerate_inputs() {
        let p = CostParams::default();
        assert!(sort_cost(0.0, 0.0, &p).is_finite());
        assert!(sort_cost(1.0, 8.0, &p) >= 0.0);
    }
}
