//! Join-method costing.
//!
//! Four physical join operators in the PostgreSQL mould. Their cost
//! structure creates exactly the trade-offs SDP's feature vector
//! captures: hash joins are cheap but orderless, merge joins cost
//! sorts but emit interesting orders, index nested-loops are
//! unbeatable for small outers probing large indexed inners (the
//! star-query workhorse) yet disastrous for large outers.

use sdp_catalog::PAGE_SIZE_BYTES;
use sdp_query::ClassId;

use crate::params::CostParams;
use crate::scan::{index_probe_cost, sort_cost};

/// Physical join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinMethod {
    /// Tuple-at-a-time nested loop with a materialized inner.
    NestedLoop,
    /// Nested loop probing the inner relation's index — available
    /// only when the inner is a base relation indexed on the join
    /// column.
    IndexNestedLoop,
    /// Classic hybrid hash join, build side = inner.
    Hash,
    /// Sort-merge join; sorts whichever inputs are not already
    /// ordered on the join class.
    Merge,
}

impl JoinMethod {
    /// Stable numeric tag for serialization and structural digests.
    /// These values are part of the persisted plan format *and* the
    /// plan digest — never renumber them; append for new methods.
    pub fn stable_tag(self) -> u8 {
        match self {
            JoinMethod::NestedLoop => 1,
            JoinMethod::IndexNestedLoop => 2,
            JoinMethod::Hash => 3,
            JoinMethod::Merge => 4,
        }
    }

    /// Inverse of [`JoinMethod::stable_tag`]; `None` for unknown tags
    /// (a record written by a future version).
    pub fn from_stable_tag(tag: u8) -> Option<Self> {
        match tag {
            1 => Some(JoinMethod::NestedLoop),
            2 => Some(JoinMethod::IndexNestedLoop),
            3 => Some(JoinMethod::Hash),
            4 => Some(JoinMethod::Merge),
            _ => None,
        }
    }

    /// Short display label used in plan explains.
    pub fn label(self) -> &'static str {
        match self {
            JoinMethod::NestedLoop => "NestLoop",
            JoinMethod::IndexNestedLoop => "IdxNestLoop",
            JoinMethod::Hash => "HashJoin",
            JoinMethod::Merge => "MergeJoin",
        }
    }
}

/// Properties of one join input as the costing functions see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinInput {
    /// Estimated rows produced.
    pub rows: f64,
    /// Cost of producing them.
    pub cost: f64,
    /// Average tuple width in bytes.
    pub width: f64,
    /// Order class the output is sorted on, if any.
    pub ordering: Option<ClassId>,
}

impl JoinInput {
    fn pages(&self) -> f64 {
        (self.rows * self.width.max(1.0) / PAGE_SIZE_BYTES as f64).max(1.0)
    }
}

/// Index metadata enabling an index nested-loop on the inner side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InnerIndex {
    /// Tuples in the inner base relation.
    pub tuples: f64,
    /// Heap pages of the inner base relation.
    pub pages: f64,
}

/// A costed join alternative.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinCandidate {
    /// Algorithm used.
    pub method: JoinMethod,
    /// Total (cumulative) cost including both inputs.
    pub cost: f64,
    /// Order class of the output, if any.
    pub ordering: Option<ClassId>,
}

/// Enumerate and cost every join method applicable to
/// `outer ⋈ inner`.
///
/// * `crossing_sel` — joint selectivity of the connecting edges;
/// * `out_rows` — estimated output cardinality;
/// * `join_class` — the order class of the join columns (drives merge
///   join); `None` disables merge;
/// * `inner_index` — present when the inner is a base relation with an
///   index on the join column, enabling index nested-loop.
pub fn join_candidates(
    outer: &JoinInput,
    inner: &JoinInput,
    crossing_sel: f64,
    out_rows: f64,
    join_class: Option<ClassId>,
    inner_index: Option<InnerIndex>,
    params: &CostParams,
) -> Vec<JoinCandidate> {
    let mut out = Vec::with_capacity(4);
    let emit_cpu = out_rows * params.cpu_tuple_cost;

    // --- Nested loop over a materialized inner ------------------------
    out.push(JoinCandidate {
        method: JoinMethod::NestedLoop,
        cost: outer.cost
            + inner.cost
            + inner.rows * params.cpu_tuple_cost // materialization
            + outer.rows * inner.rows * params.cpu_operator_cost
            + emit_cpu,
        ordering: outer.ordering,
    });

    // --- Index nested loop --------------------------------------------
    if let Some(idx) = inner_index {
        let matched = (inner.rows * crossing_sel).max(1e-6);
        let probe = index_probe_cost(idx.tuples, idx.pages, matched, params);
        out.push(JoinCandidate {
            method: JoinMethod::IndexNestedLoop,
            cost: outer.cost + outer.rows * probe + emit_cpu,
            ordering: outer.ordering,
        });
    }

    // --- Hash join (build = inner) -------------------------------------
    {
        let build_bytes = inner.rows * inner.width.max(1.0);
        let spill = if build_bytes > params.work_mem_bytes {
            // Hybrid hash: write and re-read both sides once per extra
            // batch round.
            2.0 * (inner.pages() + outer.pages()) * params.seq_page_cost
        } else {
            0.0
        };
        out.push(JoinCandidate {
            method: JoinMethod::Hash,
            cost: outer.cost
                + inner.cost
                + inner.rows * params.cpu_operator_cost * 2.0 // build
                + outer.rows * params.cpu_operator_cost // probe
                + spill
                + emit_cpu,
            ordering: None,
        });
    }

    // --- Merge join -----------------------------------------------------
    if let Some(class) = join_class {
        let sort_side = |input: &JoinInput| {
            if input.ordering == Some(class) {
                0.0
            } else {
                sort_cost(input.rows, input.width, params)
            }
        };
        out.push(JoinCandidate {
            method: JoinMethod::Merge,
            cost: outer.cost
                + inner.cost
                + sort_side(outer)
                + sort_side(inner)
                + (outer.rows + inner.rows) * params.cpu_operator_cost
                + emit_cpu,
            ordering: Some(class),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(rows: f64, cost: f64) -> JoinInput {
        JoinInput {
            rows,
            cost,
            width: 200.0,
            ordering: None,
        }
    }

    fn all(
        outer: &JoinInput,
        inner: &JoinInput,
        sel: f64,
        idx: Option<InnerIndex>,
    ) -> Vec<JoinCandidate> {
        let out_rows = (outer.rows * inner.rows * sel).max(1.0);
        join_candidates(
            outer,
            inner,
            sel,
            out_rows,
            Some(0),
            idx,
            &CostParams::default(),
        )
    }

    fn cost_of(cands: &[JoinCandidate], m: JoinMethod) -> f64 {
        cands.iter().find(|c| c.method == m).unwrap().cost
    }

    #[test]
    fn index_nlj_wins_small_outer_big_inner() {
        let outer = input(10.0, 5.0);
        let inner = input(1_000_000.0, 30_000.0);
        let idx = InnerIndex {
            tuples: 1_000_000.0,
            pages: 30_000.0,
        };
        let cands = all(&outer, &inner, 1e-6, Some(idx));
        let inlj = cost_of(&cands, JoinMethod::IndexNestedLoop);
        for c in &cands {
            if c.method != JoinMethod::IndexNestedLoop {
                assert!(inlj < c.cost, "INLJ should beat {:?}", c.method);
            }
        }
    }

    #[test]
    fn hash_wins_large_large() {
        let outer = input(1_000_000.0, 30_000.0);
        let inner = input(500_000.0, 20_000.0);
        let idx = InnerIndex {
            tuples: 500_000.0,
            pages: 15_000.0,
        };
        let cands = all(&outer, &inner, 1e-6, Some(idx));
        let hash = cost_of(&cands, JoinMethod::Hash);
        assert!(hash < cost_of(&cands, JoinMethod::NestedLoop));
        assert!(hash < cost_of(&cands, JoinMethod::IndexNestedLoop));
    }

    #[test]
    fn merge_join_exploits_existing_order() {
        let sorted = JoinInput {
            ordering: Some(0),
            ..input(100_000.0, 5_000.0)
        };
        let unsorted = input(100_000.0, 5_000.0);
        let p = CostParams::default();
        let out_rows = 1000.0;
        let with_order = join_candidates(&sorted, &sorted, 1e-7, out_rows, Some(0), None, &p);
        let without = join_candidates(&unsorted, &unsorted, 1e-7, out_rows, Some(0), None, &p);
        assert!(
            cost_of(&with_order, JoinMethod::Merge) < cost_of(&without, JoinMethod::Merge),
            "pre-sorted inputs must make merge cheaper"
        );
    }

    #[test]
    fn merge_absent_without_join_class() {
        let a = input(100.0, 10.0);
        let cands = join_candidates(&a, &a, 0.01, 100.0, None, None, &CostParams::default());
        assert!(cands.iter().all(|c| c.method != JoinMethod::Merge));
    }

    #[test]
    fn orderings_propagate_correctly() {
        let sorted_outer = JoinInput {
            ordering: Some(7),
            ..input(1000.0, 10.0)
        };
        let inner = input(1000.0, 10.0);
        let idx = InnerIndex {
            tuples: 1000.0,
            pages: 30.0,
        };
        let cands = join_candidates(
            &sorted_outer,
            &inner,
            0.001,
            1000.0,
            Some(3),
            Some(idx),
            &CostParams::default(),
        );
        for c in &cands {
            match c.method {
                JoinMethod::NestedLoop | JoinMethod::IndexNestedLoop => {
                    assert_eq!(c.ordering, Some(7), "NL preserves outer order")
                }
                JoinMethod::Hash => assert_eq!(c.ordering, None),
                JoinMethod::Merge => assert_eq!(c.ordering, Some(3)),
            }
        }
    }

    #[test]
    fn hash_spill_penalty_applies() {
        let p = CostParams::default();
        let small = input(100.0, 1.0);
        // 1M rows x 200B = 200MB >> work_mem.
        let big = input(1_000_000.0, 1.0);
        let cands_spill = join_candidates(&small, &big, 1e-6, 1.0, None, None, &p);
        // Same rows but tiny width: fits in memory.
        let slim = JoinInput { width: 0.5, ..big };
        let cands_fit = join_candidates(&small, &slim, 1e-6, 1.0, None, None, &p);
        assert!(cost_of(&cands_spill, JoinMethod::Hash) > cost_of(&cands_fit, JoinMethod::Hash));
    }

    #[test]
    fn costs_are_cumulative() {
        // Join cost must include both input costs.
        let a = input(10.0, 1000.0);
        let b = input(10.0, 2000.0);
        let cands = join_candidates(&a, &b, 0.1, 10.0, Some(0), None, &CostParams::default());
        for c in cands {
            assert!(c.cost >= 3000.0, "{:?} lost input cost", c.method);
        }
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_input() -> impl Strategy<Value = JoinInput> {
        (
            1.0f64..1e7,
            0.0f64..1e6,
            8.0f64..512.0,
            prop::option::of(0u32..4),
        )
            .prop_map(|(rows, cost, width, ordering)| JoinInput {
                rows,
                cost,
                width,
                ordering,
            })
    }

    proptest! {
        /// Costing laws that every candidate must obey: finite,
        /// non-negative, and at least the outer input's cost (the one
        /// input every method consumes in full).
        #[test]
        fn candidates_are_sane(
            outer in arb_input(),
            inner in arb_input(),
            sel in 1e-9f64..1.0,
            class in prop::option::of(0u32..4),
            with_index in any::<bool>(),
        ) {
            let out_rows = (outer.rows * inner.rows * sel).max(1.0);
            let idx = with_index.then(|| InnerIndex {
                tuples: inner.rows.max(2.0),
                pages: (inner.rows / 40.0).max(1.0),
            });
            let cands = join_candidates(
                &outer, &inner, sel, out_rows, class, idx, &CostParams::default(),
            );
            prop_assert!(!cands.is_empty());
            // NL and Hash always present; Merge iff class; INL iff index.
            prop_assert!(cands.iter().any(|c| c.method == JoinMethod::NestedLoop));
            prop_assert!(cands.iter().any(|c| c.method == JoinMethod::Hash));
            prop_assert_eq!(
                cands.iter().any(|c| c.method == JoinMethod::Merge),
                class.is_some()
            );
            prop_assert_eq!(
                cands.iter().any(|c| c.method == JoinMethod::IndexNestedLoop),
                with_index
            );
            for c in &cands {
                prop_assert!(c.cost.is_finite() && c.cost >= 0.0);
                prop_assert!(c.cost + 1e-9 >= outer.cost, "{:?} below outer cost", c.method);
            }
        }

        /// More output rows never makes any method cheaper (emit CPU is
        /// monotone), holding everything else fixed.
        #[test]
        fn cost_monotone_in_output(
            outer in arb_input(),
            inner in arb_input(),
            sel in 1e-9f64..1.0,
            extra in 1.0f64..1e6,
        ) {
            let base_rows = (outer.rows * inner.rows * sel).max(1.0);
            let p = CostParams::default();
            let a = join_candidates(&outer, &inner, sel, base_rows, Some(0), None, &p);
            let b = join_candidates(&outer, &inner, sel, base_rows + extra, Some(0), None, &p);
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(x.method, y.method);
                prop_assert!(y.cost >= x.cost - 1e-9);
            }
        }

        /// Pre-sorted inputs never make a merge join more expensive.
        #[test]
        fn merge_rewards_existing_order(
            outer in arb_input(),
            inner in arb_input(),
            sel in 1e-9f64..1.0,
        ) {
            let out_rows = (outer.rows * inner.rows * sel).max(1.0);
            let p = CostParams::default();
            let sorted_outer = JoinInput { ordering: Some(0), ..outer };
            let unsorted_outer = JoinInput { ordering: None, ..outer };
            let cost_of = |o: &JoinInput| {
                join_candidates(o, &inner, sel, out_rows, Some(0), None, &p)
                    .into_iter()
                    .find(|c| c.method == JoinMethod::Merge)
                    .unwrap()
                    .cost
            };
            prop_assert!(cost_of(&sorted_outer) <= cost_of(&unsorted_outer) + 1e-9);
        }
    }
}
