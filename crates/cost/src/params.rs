//! Cost-model constants, mirroring PostgreSQL's GUC parameters.

/// Cost constants in PostgreSQL's unit system (1.0 = one sequential
/// page fetch). Defaults match PostgreSQL 8.1, the engine the paper
/// used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Cost of a sequentially fetched disk page.
    pub seq_page_cost: f64,
    /// Cost of a non-sequentially fetched disk page.
    pub random_page_cost: f64,
    /// CPU cost of processing one tuple.
    pub cpu_tuple_cost: f64,
    /// CPU cost of processing one index entry.
    pub cpu_index_tuple_cost: f64,
    /// CPU cost of one operator/function evaluation.
    pub cpu_operator_cost: f64,
    /// Memory available to each sort or hash operation, in bytes
    /// (PostgreSQL's `work_mem`; 8.1 default was 1 MB).
    pub work_mem_bytes: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            seq_page_cost: 1.0,
            random_page_cost: 4.0,
            cpu_tuple_cost: 0.01,
            cpu_index_tuple_cost: 0.005,
            cpu_operator_cost: 0.0025,
            work_mem_bytes: 1024.0 * 1024.0,
        }
    }
}

impl CostParams {
    /// Validate that every constant is positive and the random-page
    /// premium is at least the sequential cost (the planner's
    /// assumptions break otherwise).
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("seq_page_cost", self.seq_page_cost),
            ("random_page_cost", self.random_page_cost),
            ("cpu_tuple_cost", self.cpu_tuple_cost),
            ("cpu_index_tuple_cost", self.cpu_index_tuple_cost),
            ("cpu_operator_cost", self.cpu_operator_cost),
            ("work_mem_bytes", self.work_mem_bytes),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.random_page_cost < self.seq_page_cost {
            return Err("random_page_cost must be >= seq_page_cost".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_postgres() {
        let p = CostParams::default();
        assert_eq!(p.seq_page_cost, 1.0);
        assert_eq!(p.random_page_cost, 4.0);
        assert_eq!(p.cpu_tuple_cost, 0.01);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let p = CostParams {
            cpu_tuple_cost: 0.0,
            ..CostParams::default()
        };
        assert!(p.validate().is_err());
        let p = CostParams {
            work_mem_bytes: f64::NAN,
            ..CostParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_inverted_page_costs() {
        let p = CostParams {
            random_page_cost: 0.5,
            ..CostParams::default()
        };
        assert!(p.validate().is_err());
    }
}
