//! Cardinality and selectivity estimation.
//!
//! The classical System-R / PostgreSQL estimation stack:
//!
//! * equi-join selectivity `sel(a = b) = 1 / max(ndv(a), ndv(b))`,
//!   corrected upward for skewed columns;
//! * result size of a join-composite `S`:
//!   `|S| = Π |R_i| · Π sel(e)` over base relations and internal
//!   edges, under attribute-value independence;
//! * the paper's JCR *Selectivity* feature,
//!   `sel(S) = |S| / Π |R_i| = Π sel(e)` — exactly the Figure 2.3
//!   definition ("the output selectivity of the JCR relative to the
//!   product of the sizes of its base relations").
//!
//! All products are accumulated in natural-log space: a 45-way join of
//! 2.5 M-row relations overflows `f64` multiplication, but its log is
//! a modest number.

use sdp_catalog::Catalog;
use sdp_query::{JoinEdge, JoinGraph, PredOp, Predicate, RelSet};

/// Floor applied to estimated row counts (PostgreSQL clamps to 1).
const MIN_ROWS: f64 = 1.0;
/// Ceiling guarding against `exp` overflow in pathological graphs.
const MAX_LN_ROWS: f64 = 690.0; // exp(690) ≈ 1e299

/// Cardinality estimator bound to a catalog.
#[derive(Debug, Clone, Copy)]
pub struct Estimator<'a> {
    catalog: &'a Catalog,
}

impl<'a> Estimator<'a> {
    /// Create an estimator over a catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Estimator { catalog }
    }

    /// The catalog this estimator reads statistics from.
    pub fn catalog(&self) -> &'a Catalog {
        self.catalog
    }

    /// Estimated selectivity of a single equi-join edge.
    ///
    /// `1 / max(ndv_left, ndv_right)`, multiplied by the geometric
    /// mean of the two sides' skew factors, clamped to `(0, 1]`.
    pub fn edge_selectivity(&self, graph: &JoinGraph, edge: &JoinEdge) -> f64 {
        let stat = |node: usize, col| {
            let rel = graph.relation(node);
            self.catalog
                .stats(rel)
                .expect("graph bindings are valid")
                .column(col)
                .expect("edge columns are valid")
                .to_owned()
        };
        let l = stat(edge.left.node, edge.left.col);
        let r = stat(edge.right.node, edge.right.col);
        let ndv = l.n_distinct.max(r.n_distinct).max(1.0);
        let skew = (l.skew_factor * r.skew_factor).sqrt();
        (skew / ndv).clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Natural log of the product of base-relation cardinalities of
    /// `set`.
    pub fn ln_base_product(&self, graph: &JoinGraph, set: RelSet) -> f64 {
        set.iter()
            .map(|node| {
                let rel = graph.relation(node);
                (self
                    .catalog
                    .relation(rel)
                    .expect("graph bindings are valid")
                    .cardinality as f64)
                    .max(1.0)
                    .ln()
            })
            .sum()
    }

    /// Natural log of the joint selectivity of all edges internal to
    /// `set` (0.0 for singletons).
    pub fn ln_internal_selectivity(&self, graph: &JoinGraph, set: RelSet) -> f64 {
        graph
            .internal_edges(set)
            .map(|e| self.edge_selectivity(graph, e).ln())
            .sum()
    }

    /// Estimated selectivity of a single local selection predicate.
    ///
    /// Equality uses the per-column distinct count (with skew
    /// correction); range predicates use the column's equi-depth
    /// histogram (PostgreSQL style), falling back to the analytic
    /// distribution CDF for columns without one.
    pub fn predicate_selectivity(&self, graph: &JoinGraph, pred: &Predicate) -> f64 {
        let rel = graph.relation(pred.column.node);
        let relation = self.catalog.relation(rel).expect("valid binding");
        let column = relation.column(pred.column.col).expect("valid column");
        let analyzed = self.catalog.stats(rel).expect("valid binding");
        let stats = analyzed.column(pred.column.col).expect("valid column");
        let fraction_below = |v: i64| -> f64 {
            match analyzed.histogram(pred.column.col) {
                Some(h) => h.fraction_below(v),
                None => {
                    let domain = column.domain_size.max(1) as f64;
                    column.distribution.cdf((v as f64 / domain).clamp(0.0, 1.0))
                }
            }
        };
        let sel = match pred.op {
            PredOp::Eq => stats.eq_selectivity(),
            PredOp::Lt => fraction_below(pred.value),
            PredOp::Le => fraction_below(pred.value) + stats.eq_selectivity(),
            PredOp::Gt => 1.0 - fraction_below(pred.value) - stats.eq_selectivity(),
            PredOp::Ge => 1.0 - fraction_below(pred.value),
        };
        sel.clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Natural log of the joint selectivity of all local predicates on
    /// nodes of `set` (independence assumption; 0.0 when none).
    pub fn ln_filter_selectivity(&self, graph: &JoinGraph, set: RelSet) -> f64 {
        graph
            .filters()
            .iter()
            .filter(|f| set.contains(f.column.node))
            .map(|f| self.predicate_selectivity(graph, f).ln())
            .sum()
    }

    /// Estimated output rows of the join-composite `set`, local
    /// predicates included.
    pub fn rows_for_set(&self, graph: &JoinGraph, set: RelSet) -> f64 {
        let ln = self.ln_base_product(graph, set)
            + self.ln_internal_selectivity(graph, set)
            + self.ln_filter_selectivity(graph, set);
        ln.min(MAX_LN_ROWS).exp().max(MIN_ROWS)
    }

    /// Clamp and exponentiate a natural-log row estimate — the exact
    /// final step of [`Estimator::rows_for_set`], exposed for callers
    /// that accumulate the ln terms incrementally (per-vertex base
    /// products plus per-edge selectivities) instead of recomputing
    /// them per set.
    pub fn rows_from_ln(&self, ln: f64) -> f64 {
        ln.min(MAX_LN_ROWS).exp().max(MIN_ROWS)
    }

    /// The paper's JCR *Selectivity* feature: output rows relative to
    /// the product of base cardinalities (`Π sel` over internal edges
    /// and local predicates; 1.0 for unfiltered singletons).
    pub fn selectivity_for_set(&self, graph: &JoinGraph, set: RelSet) -> f64 {
        (self.ln_internal_selectivity(graph, set) + self.ln_filter_selectivity(graph, set))
            .exp()
            .clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Joint selectivity of the edges crossing between disjoint sets
    /// `a` and `b` — the factor a join of the two applies on top of
    /// the input cardinalities.
    pub fn crossing_selectivity(&self, graph: &JoinGraph, a: RelSet, b: RelSet) -> f64 {
        let ln: f64 = graph
            .crossing_edges(a, b)
            .map(|e| self.edge_selectivity(graph, e).ln())
            .sum();
        ln.exp().clamp(f64::MIN_POSITIVE, 1.0)
    }

    /// Estimated average tuple width (bytes) of the composite —
    /// the sum of the participating relations' tuple widths, as a
    /// PostgreSQL-style projection-free upper bound.
    pub fn width_for_set(&self, graph: &JoinGraph, set: RelSet) -> f64 {
        set.iter()
            .map(|node| {
                self.catalog
                    .relation(graph.relation(node))
                    .expect("graph bindings are valid")
                    .tuple_width_bytes() as f64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;
    use sdp_query::{QueryGenerator, Topology};

    fn chain_query(n: usize) -> (Catalog, sdp_query::Query) {
        let cat = Catalog::paper();
        let q = QueryGenerator::new(&cat, Topology::Chain(n), 7).instance(0);
        (cat, q)
    }

    #[test]
    fn singleton_rows_match_catalog() {
        let (cat, q) = chain_query(3);
        let est = Estimator::new(&cat);
        for node in 0..3 {
            let rows = est.rows_for_set(&q.graph, RelSet::single(node));
            let card = cat.relation(q.graph.relation(node)).unwrap().cardinality as f64;
            assert!((rows - card).abs() < 1e-6);
            assert_eq!(est.selectivity_for_set(&q.graph, RelSet::single(node)), 1.0);
        }
    }

    #[test]
    fn join_rows_below_cross_product() {
        let (cat, q) = chain_query(4);
        let est = Estimator::new(&cat);
        let pair = RelSet::from_indices([0, 1]);
        let rows = est.rows_for_set(&q.graph, pair);
        let cross = est.ln_base_product(&q.graph, pair).exp();
        assert!(rows <= cross);
        assert!(rows >= 1.0);
    }

    #[test]
    fn selectivity_matches_rows_over_base_product() {
        let (cat, q) = chain_query(5);
        let est = Estimator::new(&cat);
        let set = RelSet::from_indices([0, 1, 2]);
        let rows = est.rows_for_set(&q.graph, set);
        let sel = est.selectivity_for_set(&q.graph, set);
        let base = est.ln_base_product(&q.graph, set).exp();
        let ratio = rows / (sel * base);
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn estimates_monotone_under_edge_addition() {
        // Adding an edge (extra predicate) can only shrink the result.
        let (cat, q) = chain_query(4);
        let est = Estimator::new(&cat);
        let set = RelSet::from_indices([0, 1, 2, 3]);
        let before = est.rows_for_set(&q.graph, set);
        let mut g2 = q.graph.clone();
        g2.add_edge(sdp_query::JoinEdge::new(
            sdp_query::ColRef::new(0, sdp_catalog::ColId(5)),
            sdp_query::ColRef::new(3, sdp_catalog::ColId(5)),
        ));
        let after = est.rows_for_set(&g2, set);
        assert!(after <= before);
    }

    #[test]
    fn large_star_does_not_overflow() {
        let cat = Catalog::extended(50);
        let q = QueryGenerator::new(&cat, Topology::Star(45), 3).instance(0);
        let est = Estimator::new(&cat);
        let all = q.graph.all_nodes();
        let rows = est.rows_for_set(&q.graph, all);
        assert!(rows.is_finite());
        assert!(rows >= 1.0);
        let sel = est.selectivity_for_set(&q.graph, all);
        assert!(sel > 0.0 && sel <= 1.0);
    }

    #[test]
    fn crossing_selectivity_composes_with_inputs() {
        let (cat, q) = chain_query(4);
        let est = Estimator::new(&cat);
        let a = RelSet::from_indices([0, 1]);
        let b = RelSet::from_indices([2, 3]);
        let joined = est.rows_for_set(&q.graph, a | b);
        let composed = est.rows_for_set(&q.graph, a)
            * est.rows_for_set(&q.graph, b)
            * est.crossing_selectivity(&q.graph, a, b);
        let rel_err = (joined - composed).abs() / joined.max(1.0);
        assert!(rel_err < 1e-6, "rel_err {rel_err}");
    }

    #[test]
    fn skewed_catalog_raises_selectivity() {
        let uni = Catalog::paper();
        let skw = Catalog::paper_skewed();
        // Average edge selectivity over some instances should be
        // higher (more matches) under skew.
        let avg = |cat: &Catalog| -> f64 {
            let gen = QueryGenerator::new(cat, Topology::Chain(6), 5);
            let est = Estimator::new(cat);
            let mut sum = 0.0;
            let mut n = 0;
            for q in gen.instances(10) {
                for e in q.graph.edges() {
                    sum += est.edge_selectivity(&q.graph, e).ln();
                    n += 1;
                }
            }
            (sum / n as f64).exp()
        };
        assert!(avg(&skw) > avg(&uni));
    }

    #[test]
    fn predicate_selectivities_partition_the_domain() {
        use sdp_query::{ColRef, PredOp, Predicate};
        let (cat, q) = chain_query(2);
        let est = Estimator::new(&cat);
        let col = ColRef::new(0, sdp_catalog::ColId(3));
        let rel = cat.relation(q.graph.relation(0)).unwrap();
        let mid = (rel.column(col.col).unwrap().domain_size / 2) as i64;
        let lt = est.predicate_selectivity(&q.graph, &Predicate::new(col, PredOp::Lt, mid));
        let ge = est.predicate_selectivity(&q.graph, &Predicate::new(col, PredOp::Ge, mid));
        // `< v` and `>= v` partition the domain.
        assert!((lt + ge - 1.0).abs() < 1e-9, "lt {lt} + ge {ge}");
        let eq = est.predicate_selectivity(&q.graph, &Predicate::new(col, PredOp::Eq, mid));
        assert!(eq > 0.0 && eq < lt);
        // Uniform: midpoint splits ~50/50.
        assert!((lt - 0.5).abs() < 0.01, "lt {lt}");
    }

    #[test]
    fn filters_shrink_row_estimates() {
        use sdp_query::{ColRef, PredOp, Predicate};
        let (cat, q) = chain_query(3);
        let est = Estimator::new(&cat);
        let set = RelSet::from_indices([0, 1, 2]);
        let before = est.rows_for_set(&q.graph, set);
        let mut g = q.graph.clone();
        let col = ColRef::new(1, sdp_catalog::ColId(7));
        let rel = cat.relation(g.relation(1)).unwrap();
        let quarter = (rel.column(col.col).unwrap().domain_size / 4) as i64;
        g.add_filter(Predicate::new(col, PredOp::Lt, quarter));
        let after = est.rows_for_set(&g, set);
        assert!(after < before * 0.5, "before {before}, after {after}");
        // Selectivity feature shrinks too.
        assert!(est.selectivity_for_set(&g, set) < est.selectivity_for_set(&q.graph, set));
        // Filters on nodes outside the set do not apply.
        assert_eq!(est.ln_filter_selectivity(&g, RelSet::single(0)), 0.0);
    }

    #[test]
    fn width_sums_participants() {
        let (cat, q) = chain_query(3);
        let est = Estimator::new(&cat);
        let w1 = est.width_for_set(&q.graph, RelSet::single(0));
        let w2 = est.width_for_set(&q.graph, RelSet::from_indices([0, 1]));
        assert!(w2 > w1);
        assert_eq!(w1, 24.0 * 8.0);
    }
}
