//! Tuple generation matching the catalog's statistical model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdp_catalog::{Catalog, Distribution, RelId, SchemaBuilder, SchemaSpec};

use crate::btree::BTreeIndex;

/// A materialized relation: column-major `i64` data.
#[derive(Debug, Clone)]
pub struct Table {
    /// `columns[c][r]` = value of column `c` in row `r`.
    pub columns: Vec<Vec<i64>>,
    /// Number of rows.
    pub rows: usize,
}

impl Table {
    /// Value at `(row, col)`.
    #[inline]
    pub fn value(&self, row: usize, col: usize) -> i64 {
        self.columns[col][row]
    }
}

/// A materialized database for a catalog: tables plus the B+-tree
/// index each relation carries on its indexed column.
#[derive(Debug, Clone)]
pub struct Database {
    tables: Vec<Table>,
    indexes: Vec<BTreeIndex>,
}

impl Database {
    /// Generate tuples for every relation of `catalog`, seeded
    /// deterministically.
    pub fn generate(catalog: &Catalog, seed: u64) -> Self {
        let tables = catalog
            .relations()
            .iter()
            .map(|rel| {
                let n = rel.cardinality as usize;
                let columns = rel
                    .columns
                    .iter()
                    .map(|col| {
                        // Per-(relation, column) stream so adding
                        // columns does not reshuffle others.
                        let mut rng = StdRng::seed_from_u64(
                            seed ^ (u64::from(rel.id.0) << 32) ^ u64::from(col.id.0),
                        );
                        let d = col.domain_size.max(1) as f64;
                        (0..n)
                            .map(|_| {
                                let v = match col.distribution {
                                    Distribution::Uniform => {
                                        rng.gen_range(0..col.domain_size.max(1))
                                    }
                                    Distribution::Exponential { rate } => {
                                        // Inverse-CDF sample of a
                                        // truncated exponential over
                                        // [0, d).
                                        let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
                                        let x = -(1.0 - u * (1.0 - (-rate).exp())).ln() / rate;
                                        ((x * d) as u64).min(col.domain_size.max(1) - 1)
                                    }
                                };
                                v as i64
                            })
                            .collect()
                    })
                    .collect();
                Table { columns, rows: n }
            })
            .collect::<Vec<Table>>();
        let indexes = catalog
            .relations()
            .iter()
            .zip(&tables)
            .map(|(rel, table)| BTreeIndex::build(&table.columns[rel.indexed_column.0 as usize]))
            .collect();
        Database { tables, indexes }
    }

    /// Table of one relation.
    pub fn table(&self, rel: RelId) -> &Table {
        &self.tables[rel.0 as usize]
    }

    /// The B+-tree index on the relation's indexed column.
    pub fn btree_index(&self, rel: RelId) -> &BTreeIndex {
        &self.indexes[rel.0 as usize]
    }
}

/// A scaled-down copy of the paper schema for actual execution:
/// cardinalities and domains span 10 … `max_cardinality` instead of
/// 100 … 2.5 M, preserving the geometric shape. Statistics are
/// re-derived for the scaled sizes, so the optimizer sees a
/// consistent (small) world.
pub fn scaled_catalog(relations: usize, max_cardinality: u64, seed: u64) -> Catalog {
    let spec = SchemaSpec {
        relations,
        columns_per_relation: 12,
        min_cardinality: 10,
        max_cardinality: max_cardinality.max(20),
        min_domain: 10,
        max_domain: max_cardinality.max(20),
        seed,
        ..SchemaSpec::paper()
    };
    SchemaBuilder::new(spec).build().expect("scaled spec valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_tables_match_catalog_shape() {
        let cat = scaled_catalog(5, 500, 7);
        let db = Database::generate(&cat, 42);
        for rel in cat.relations() {
            let t = db.table(rel.id);
            assert_eq!(t.rows, rel.cardinality as usize);
            assert_eq!(t.columns.len(), rel.columns.len());
            for (c, col) in rel.columns.iter().enumerate() {
                for r in 0..t.rows.min(50) {
                    let v = t.value(r, c);
                    assert!(v >= 0 && (v as u64) < col.domain_size);
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cat = scaled_catalog(3, 200, 9);
        let a = Database::generate(&cat, 1);
        let b = Database::generate(&cat, 1);
        for rel in cat.relations() {
            assert_eq!(a.table(rel.id).columns, b.table(rel.id).columns);
        }
        let c = Database::generate(&cat, 2);
        assert_ne!(a.table(RelId(2)).columns, c.table(RelId(2)).columns);
    }

    #[test]
    fn uniform_column_covers_domain() {
        let cat = scaled_catalog(4, 400, 3);
        let db = Database::generate(&cat, 5);
        // The largest relation's first column should use a good chunk
        // of its domain.
        let rel = cat.relations().last().unwrap();
        let t = db.table(rel.id);
        let distinct: std::collections::HashSet<i64> = t.columns[0].iter().copied().collect();
        let expected = cat.stats(rel.id).unwrap().columns[0].n_distinct;
        let ratio = distinct.len() as f64 / expected;
        assert!((0.5..2.0).contains(&ratio), "distinct ratio {ratio}");
    }

    #[test]
    fn exponential_column_is_skewed_low() {
        use sdp_catalog::{ColId, Column, Relation};
        // Hand-build a relation with one exponential column.
        let rel = Relation {
            id: RelId(0),
            name: "R0".into(),
            cardinality: 5000,
            columns: vec![Column::new(
                ColId(0),
                1000,
                Distribution::Exponential { rate: 20.0 },
            )],
            indexed_column: ColId(0),
        };
        let spec = SchemaSpec {
            relations: 1,
            ..SchemaSpec::paper()
        };
        let _ = spec; // catalog not needed; sample directly
        let mut rng = StdRng::seed_from_u64(1);
        let d = 1000.0;
        let rate: f64 = 20.0;
        let samples: Vec<u64> = (0..5000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0 - 1e-12);
                let x = -(1.0 - u * (1.0 - (-rate).exp())).ln() / rate;
                ((x * d) as u64).min(999)
            })
            .collect();
        let below_tenth = samples.iter().filter(|&&v| v < 100).count();
        // exp(20) puts ~86% of mass below d/10.
        assert!(below_tenth > 3500, "only {below_tenth} below d/10");
        let _ = rel;
    }
}
