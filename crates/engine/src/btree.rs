//! A B+-tree index over `(key, row id)` pairs.
//!
//! The benchmark schema gives every relation one index; the executor
//! uses this structure for index scans (sorted iteration), index
//! nested-loop probes (point lookup) and index-range scans — the same
//! three access patterns the cost model prices. It is a genuine
//! B+-tree (branch nodes with separators, leaf chain), not a sorted
//! array, so the probe path the cost model's `log`-descent term
//! describes actually exists.

/// Maximum entries per node (order of the tree).
const FANOUT: usize = 64;

/// One entry: key value and the heap row it points at.
type Entry = (i64, usize);

#[derive(Debug, Clone)]
enum Node {
    /// Sorted `(key, row)` entries plus the index of the next leaf.
    Leaf {
        entries: Vec<Entry>,
        next: Option<usize>,
    },
    /// `children[i]` holds keys `< separators[i]`;
    /// `children.len() == separators.len() + 1`.
    Branch {
        separators: Vec<i64>,
        children: Vec<usize>,
    },
}

/// An immutable B+-tree built bottom-up from the column data
/// (bulk-loaded, the way `CREATE INDEX` does it).
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    height: usize,
}

impl BTreeIndex {
    /// Bulk-load an index over `values[row] = key`.
    pub fn build(values: &[i64]) -> Self {
        let mut entries: Vec<Entry> = values.iter().copied().zip(0..).collect();
        entries.sort_unstable();
        let len = entries.len();

        let mut nodes: Vec<Node> = Vec::new();
        // Leaf level.
        let mut level: Vec<(i64, usize)> = Vec::new(); // (first key, node id)
        if entries.is_empty() {
            nodes.push(Node::Leaf {
                entries: Vec::new(),
                next: None,
            });
            level.push((i64::MIN, 0));
        } else {
            let mut leaf_ids = Vec::new();
            for chunk in entries.chunks(FANOUT) {
                let id = nodes.len();
                nodes.push(Node::Leaf {
                    entries: chunk.to_vec(),
                    next: None,
                });
                leaf_ids.push(id);
                level.push((chunk[0].0, id));
            }
            // Chain the leaves.
            for w in leaf_ids.windows(2) {
                let (a, b) = (w[0], w[1]);
                if let Node::Leaf { next, .. } = &mut nodes[a] {
                    *next = Some(b);
                }
            }
        }

        // Branch levels until a single root remains.
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut upper: Vec<(i64, usize)> = Vec::new();
            for chunk in level.chunks(FANOUT) {
                let id = nodes.len();
                let separators = chunk[1..].iter().map(|&(k, _)| k).collect();
                let children = chunk.iter().map(|&(_, c)| c).collect();
                nodes.push(Node::Branch {
                    separators,
                    children,
                });
                upper.push((chunk[0].0, id));
            }
            level = upper;
        }
        let root = level[0].1;
        BTreeIndex {
            nodes,
            root,
            len,
            height,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Descend to the leaf that may contain `key`, returning its node
    /// id.
    fn descend(&self, key: i64) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Branch {
                    separators,
                    children,
                } => {
                    // First child whose range may hold `key`. Strict
                    // comparison: a separator equal to `key` means the
                    // run may have *started* in the child before it
                    // (bulk loading cuts duplicate runs arbitrarily),
                    // so descend there and let the leaf chain carry us
                    // forward.
                    let i = separators.partition_point(|&s| s < key);
                    node = children[i];
                }
            }
        }
    }

    /// Row ids with exactly this key (index nested-loop probe).
    pub fn lookup(&self, key: i64) -> Vec<usize> {
        let mut out = Vec::new();
        let mut node = Some(self.descend(key));
        while let Some(id) = node {
            let Node::Leaf { entries, next } = &self.nodes[id] else {
                unreachable!("descend ends at a leaf");
            };
            let start = entries.partition_point(|&(k, _)| k < key);
            if start == entries.len() {
                node = *next;
                continue;
            }
            for &(k, row) in &entries[start..] {
                if k != key {
                    return out;
                }
                out.push(row);
            }
            node = *next; // key run continues into the next leaf
        }
        out
    }

    /// Row ids with `lo <= key < hi`, in key order (index-range scan).
    pub fn range(&self, lo: i64, hi: i64) -> Vec<usize> {
        let mut out = Vec::new();
        if lo >= hi {
            return out;
        }
        let mut node = Some(self.descend(lo));
        while let Some(id) = node {
            let Node::Leaf { entries, next } = &self.nodes[id] else {
                unreachable!("descend ends at a leaf");
            };
            for &(k, row) in entries {
                if k >= hi {
                    return out;
                }
                if k >= lo {
                    out.push(row);
                }
            }
            node = *next;
        }
        out
    }

    /// All row ids in key order (full index scan).
    pub fn scan_all(&self) -> Vec<usize> {
        self.range(i64::MIN, i64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn reference_lookup(values: &[i64], key: i64) -> Vec<usize> {
        let mut v: Vec<usize> = (0..values.len()).filter(|&r| values[r] == key).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn lookup_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(3);
        let values: Vec<i64> = (0..10_000).map(|_| rng.gen_range(0..500)).collect();
        let idx = BTreeIndex::build(&values);
        assert_eq!(idx.len(), 10_000);
        for key in [0i64, 17, 250, 499, 500, -1] {
            let mut got = idx.lookup(key);
            got.sort_unstable();
            assert_eq!(got, reference_lookup(&values, key), "key {key}");
        }
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        let mut rng = StdRng::seed_from_u64(7);
        let values: Vec<i64> = (0..5_000).map(|_| rng.gen_range(0..1000)).collect();
        let idx = BTreeIndex::build(&values);
        let rows = idx.range(100, 300);
        // Sorted by key.
        let keys: Vec<i64> = rows.iter().map(|&r| values[r]).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        // Complete.
        let expected = values.iter().filter(|&&v| (100..300).contains(&v)).count();
        assert_eq!(rows.len(), expected);
        // Empty and inverted ranges.
        assert!(idx.range(300, 100).is_empty());
        assert!(idx.range(2000, 3000).is_empty());
    }

    #[test]
    fn full_scan_orders_every_row() {
        let values = vec![5i64, 3, 8, 3, 1, 8, 8];
        let idx = BTreeIndex::build(&values);
        let rows = idx.scan_all();
        assert_eq!(rows.len(), values.len());
        let keys: Vec<i64> = rows.iter().map(|&r| values[r]).collect();
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn duplicate_runs_crossing_leaf_boundaries() {
        // 500 copies of one key force multi-leaf runs at FANOUT = 64.
        let mut values = vec![42i64; 500];
        values.extend([1, 2, 3]);
        let idx = BTreeIndex::build(&values);
        assert_eq!(idx.lookup(42).len(), 500);
        assert!(idx.height() >= 2, "multi-level tree expected");
    }

    #[test]
    fn empty_and_singleton_indexes() {
        let empty = BTreeIndex::build(&[]);
        assert!(empty.is_empty());
        assert!(empty.lookup(1).is_empty());
        assert!(empty.scan_all().is_empty());

        let one = BTreeIndex::build(&[9]);
        assert_eq!(one.lookup(9), vec![0]);
        assert_eq!(one.height(), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let small = BTreeIndex::build(&(0..100).collect::<Vec<i64>>());
        let big = BTreeIndex::build(&(0..100_000).collect::<Vec<i64>>());
        assert!(small.height() <= 2);
        assert!(big.height() >= 3);
        assert!(big.height() <= 4, "height {}", big.height());
    }

    #[test]
    fn negative_and_extreme_keys() {
        let values = vec![i64::MIN + 1, -5, 0, 5, i64::MAX - 1];
        let idx = BTreeIndex::build(&values);
        assert_eq!(idx.lookup(-5), vec![1]);
        assert_eq!(idx.scan_all().len(), 5);
        assert_eq!(idx.range(-5, 6).len(), 3);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn lookup_agrees_with_scan(values in prop::collection::vec(-50i64..50, 0..400), key in -60i64..60) {
            let idx = BTreeIndex::build(&values);
            let mut got = idx.lookup(key);
            got.sort_unstable();
            let expected: Vec<usize> =
                (0..values.len()).filter(|&r| values[r] == key).collect();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn range_agrees_with_scan(
            values in prop::collection::vec(-50i64..50, 0..400),
            lo in -60i64..60,
            span in 0i64..50,
        ) {
            let hi = lo + span;
            let idx = BTreeIndex::build(&values);
            let got = idx.range(lo, hi);
            let expected = values.iter().filter(|&&v| v >= lo && v < hi).count();
            prop_assert_eq!(got.len(), expected);
            // Ordered by key.
            let keys: Vec<i64> = got.iter().map(|&r| values[r]).collect();
            prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
