//! Cost-model validation: estimated versus actual cardinalities.

use sdp_catalog::Catalog;
use sdp_core::PlanNode;
use sdp_query::{Query, RelSet};

use crate::datagen::Database;
use crate::exec::{execute, ExecError};

/// The q-error of an estimate: `max(est/act, act/est)` with both
/// sides floored at 1 row. 1.0 is perfect.
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let e = estimated.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// Execute every subtree of `plan` and pair the optimizer's row
/// estimates with the actual counts: `(relation set, estimated,
/// actual)` per operator.
pub fn actual_vs_estimated(
    plan: &PlanNode,
    query: &Query,
    catalog: &Catalog,
    db: &Database,
) -> Result<Vec<(RelSet, f64, f64)>, ExecError> {
    let mut out = Vec::new();
    walk(plan, query, catalog, db, &mut out)?;
    Ok(out)
}

fn walk(
    node: &PlanNode,
    query: &Query,
    catalog: &Catalog,
    db: &Database,
    out: &mut Vec<(RelSet, f64, f64)>,
) -> Result<(), ExecError> {
    for c in &node.children {
        walk(c, query, catalog, db, out)?;
    }
    let actual = execute(node, query, catalog, db)?.len() as f64;
    out.push((node.set, node.rows, actual));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{scaled_catalog, Database};
    use sdp_core::{Algorithm, Optimizer};
    use sdp_query::{QueryGenerator, Topology};

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10.0), 1.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(10.0, 100.0), 10.0);
        // Sub-row estimates are floored.
        assert_eq!(q_error(0.001, 1.0), 1.0);
    }

    #[test]
    fn estimates_track_actuals_on_uniform_data() {
        let cat = scaled_catalog(10, 400, 31);
        let db = Database::generate(&cat, 37);
        let mut qerrors = Vec::new();
        for seed in 0..4 {
            let q = QueryGenerator::new(&cat, Topology::Chain(4), seed).instance(0);
            let plan = Optimizer::new(&cat).optimize(&q, Algorithm::Dp).unwrap();
            for (_, est, act) in actual_vs_estimated(&plan.root, &q, &cat, &db).unwrap() {
                qerrors.push(q_error(est, act));
            }
        }
        qerrors.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = qerrors[qerrors.len() / 2];
        // Chains of equi-joins under the independence assumption:
        // median q-error should stay moderate on uniform data.
        assert!(median < 5.0, "median q-error {median}");
        // Base-relation estimates are exact.
        let q = QueryGenerator::new(&cat, Topology::Chain(2), 9).instance(0);
        let plan = Optimizer::new(&cat).optimize(&q, Algorithm::Dp).unwrap();
        for (set, est, act) in actual_vs_estimated(&plan.root, &q, &cat, &db).unwrap() {
            if set.len() == 1 {
                // Exact up to the log-space round trip in the
                // estimator.
                assert!((est - act).abs() < 1e-6, "base estimate {est} vs {act}");
            }
        }
    }

    #[test]
    fn star_estimates_are_sane() {
        let cat = scaled_catalog(8, 300, 41);
        let db = Database::generate(&cat, 43);
        let q = QueryGenerator::new(&cat, Topology::Star(4), 2).instance(0);
        let plan = Optimizer::new(&cat).optimize(&q, Algorithm::Dp).unwrap();
        let pairs = actual_vs_estimated(&plan.root, &q, &cat, &db).unwrap();
        assert_eq!(pairs.len(), plan.root.node_count());
        for (set, est, act) in pairs {
            let qe = q_error(est, act);
            assert!(
                qe < 100.0,
                "set {set}: estimate {est} vs actual {act} (q={qe})"
            );
        }
    }
}
