//! A small Volcano-style (operator-at-a-time) executor for the
//! optimizer's physical plans.
//!
//! Joins are executed with the algorithm the plan prescribes — literal
//! nested loops, hash build/probe, sort-merge, and index nested-loops
//! probing the relation's real B+-tree ([`crate::BTreeIndex`]) — so
//! correctness tests cover each operator implementation, not just one
//! shared join kernel.

use std::collections::HashMap;

use sdp_catalog::Catalog;
use sdp_core::{PlanNode, PlanOp};
use sdp_cost::JoinMethod;
use sdp_query::{ColRef, Query, RelSet};

use crate::datagen::Database;

/// Execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The plan references state the executor cannot resolve.
    BadPlan(String),
    /// A (mis-estimated) intermediate result exceeded the safety cap.
    ResultTooLarge {
        /// Rows produced when the cap tripped.
        rows: usize,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadPlan(m) => write!(f, "bad plan: {m}"),
            ExecError::ResultTooLarge { rows } => {
                write!(f, "intermediate result too large ({rows} rows)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Safety cap on intermediate result sizes.
const MAX_ROWS: usize = 5_000_000;

/// An intermediate result: rows over the base relations of `layout`
/// (in production order — children of a join simply concatenate, so
/// the layout is plan-shape-dependent).
struct Chunk {
    layout: Vec<usize>,
    rows: Vec<Vec<i64>>,
}

/// One executed plan node's cardinality outcome: the optimizer's
/// estimate next to the row count the operator actually produced.
/// This is the raw feed for the Q-error observatory — the executor
/// stays ignorant of histograms and only reports what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeObservation {
    /// Position in the plan tree: `r` for the root, then child
    /// indices joined by dots (`r.0.1` = root's first child's second
    /// child). Stable across runs for a fixed plan shape.
    pub path: String,
    /// Operator kind label (`SeqScan`, `IndexScan`, `Sort`, or a join
    /// method label such as `HashJoin`).
    pub kind: String,
    /// The predicate the node evaluates, rendered canonically: the
    /// conjunction of base filters for scans, the crossing equi-join
    /// condition for joins, the sort class for sorts. Empty when the
    /// node filters nothing.
    pub detail: String,
    /// The optimizer's estimated output rows for this node.
    pub estimated: f64,
    /// Rows the operator actually produced.
    pub actual: u64,
}

fn path_string(path: &[usize]) -> String {
    let mut s = String::from("r");
    for p in path {
        s.push('.');
        s.push_str(&p.to_string());
    }
    s
}

/// Execute `plan` for `query` against `db`, returning the result rows
/// in canonical column order (base relations ascending by node index,
/// each contributing its full column list).
pub fn execute(
    plan: &PlanNode,
    query: &Query,
    catalog: &Catalog,
    db: &Database,
) -> Result<Vec<Vec<i64>>, ExecError> {
    let ctx = ExecCtx {
        query,
        db,
        ncols: (0..query.graph.len())
            .map(|n| {
                catalog
                    .relation(query.graph.relation(n))
                    .expect("valid binding")
                    .columns
                    .len()
            })
            .collect(),
        indexed_col: (0..query.graph.len())
            .map(|n| {
                catalog
                    .relation(query.graph.relation(n))
                    .ok()
                    .map(|r| r.indexed_column.0 as usize)
            })
            .collect(),
    };
    let chunk = ctx.run(plan)?;
    Ok(ctx.canonicalize(chunk))
}

/// Execute `plan` like [`execute`], additionally collecting one
/// [`NodeObservation`] per plan node (post-order: children before
/// parents). The plain [`execute`] path pays nothing for this — the
/// collector is threaded as an `Option` and skipped entirely when
/// absent.
pub fn execute_observed(
    plan: &PlanNode,
    query: &Query,
    catalog: &Catalog,
    db: &Database,
) -> Result<(Vec<Vec<i64>>, Vec<NodeObservation>), ExecError> {
    let ctx = ExecCtx {
        query,
        db,
        ncols: (0..query.graph.len())
            .map(|n| {
                catalog
                    .relation(query.graph.relation(n))
                    .expect("valid binding")
                    .columns
                    .len()
            })
            .collect(),
        indexed_col: (0..query.graph.len())
            .map(|n| {
                catalog
                    .relation(query.graph.relation(n))
                    .ok()
                    .map(|r| r.indexed_column.0 as usize)
            })
            .collect(),
    };
    let mut observations = Vec::new();
    let chunk = ctx.run_observed(plan, &mut Vec::new(), &mut Some(&mut observations))?;
    Ok((ctx.canonicalize(chunk), observations))
}

struct ExecCtx<'a> {
    query: &'a Query,
    db: &'a Database,
    ncols: Vec<usize>,
    /// Per node: the relation's indexed column, as a column offset.
    indexed_col: Vec<Option<usize>>,
}

impl ExecCtx<'_> {
    fn offset_of(&self, layout: &[usize], node: usize) -> Result<usize, ExecError> {
        let mut off = 0;
        for &n in layout {
            if n == node {
                return Ok(off);
            }
            off += self.ncols[n];
        }
        Err(ExecError::BadPlan(format!("node {node} not in layout")))
    }

    fn col_index(&self, layout: &[usize], c: ColRef) -> Result<usize, ExecError> {
        Ok(self.offset_of(layout, c.node)? + c.col.0 as usize)
    }

    /// Resolve the equi-join key column indices for a join of `left`
    /// and `right` chunks: `(left_keys, right_keys)`.
    fn join_keys(
        &self,
        left: &Chunk,
        right: &Chunk,
        lset: RelSet,
        rset: RelSet,
    ) -> Result<(Vec<usize>, Vec<usize>), ExecError> {
        let mut lk = Vec::new();
        let mut rk = Vec::new();
        for e in self.query.graph.crossing_edges(lset, rset) {
            let (a, b) = if lset.contains(e.left.node) {
                (e.left, e.right)
            } else {
                (e.right, e.left)
            };
            lk.push(self.col_index(&left.layout, a)?);
            rk.push(self.col_index(&right.layout, b)?);
        }
        if lk.is_empty() {
            return Err(ExecError::BadPlan("cartesian join".into()));
        }
        Ok((lk, rk))
    }

    fn scan(&self, node: usize, sort_col: Option<usize>) -> Chunk {
        let rel = self.query.graph.relation(node);
        let table = self.db.table(rel);
        let width = self.ncols[node];
        let filters: Vec<_> = self.query.graph.filters_on(node).collect();
        let indexed = self.indexed_col[node];

        // Row visit order: the B+-tree provides index order directly
        // when the requested sort column is the indexed one.
        let row_order: Vec<usize> = match sort_col {
            Some(c) if Some(c) == indexed => self.db.btree_index(rel).scan_all(),
            _ => (0..table.rows).collect(),
        };
        let mut rows: Vec<Vec<i64>> = row_order
            .into_iter()
            .filter(|&r| {
                filters
                    .iter()
                    .all(|f| f.matches(table.value(r, f.column.col.0 as usize)))
            })
            .map(|r| (0..width).map(|c| table.value(r, c)).collect())
            .collect();
        if let Some(c) = sort_col {
            if Some(c) != indexed {
                rows.sort_by_key(|row| row[c]);
            }
        }
        Chunk {
            layout: vec![node],
            rows,
        }
    }

    /// Index nested-loop: probe the inner base relation's B+-tree per
    /// outer row. Applicable when the plan's inner child is a base
    /// scan and one crossing edge lands on its indexed column.
    fn index_nested_loop(
        &self,
        outer: &Chunk,
        inner_node: usize,
        oset: RelSet,
        iset: RelSet,
    ) -> Result<Option<Vec<Vec<i64>>>, ExecError> {
        let rel = self.query.graph.relation(inner_node);
        let indexed = match self.indexed_col[inner_node] {
            Some(c) => c,
            None => return Ok(None),
        };
        // Find the crossing edge on the indexed column; collect the
        // rest as residual predicates.
        let mut probe: Option<(usize, usize)> = None; // (outer col, inner col)
        let mut residual: Vec<(usize, usize)> = Vec::new();
        for e in self.query.graph.crossing_edges(oset, iset) {
            let (o, i) = if oset.contains(e.left.node) {
                (e.left, e.right)
            } else {
                (e.right, e.left)
            };
            let ocol = self.col_index(&outer.layout, o)?;
            let icol = i.col.0 as usize;
            if icol == indexed && probe.is_none() {
                probe = Some((ocol, icol));
            } else {
                residual.push((ocol, icol));
            }
        }
        let Some((probe_ocol, _)) = probe else {
            return Ok(None);
        };

        let table = self.db.table(rel);
        let index = self.db.btree_index(rel);
        let filters: Vec<_> = self.query.graph.filters_on(inner_node).collect();
        let width = self.ncols[inner_node];
        let mut out = Vec::new();
        for orow in &outer.rows {
            for r in index.lookup(orow[probe_ocol]) {
                let residual_ok = residual
                    .iter()
                    .all(|&(oc, ic)| orow[oc] == table.value(r, ic))
                    && filters
                        .iter()
                        .all(|f| f.matches(table.value(r, f.column.col.0 as usize)));
                if residual_ok {
                    let mut row = orow.clone();
                    row.extend((0..width).map(|c| table.value(r, c)));
                    out.push(row);
                    check_cap(out.len())?;
                }
            }
        }
        Ok(Some(out))
    }

    fn run(&self, plan: &PlanNode) -> Result<Chunk, ExecError> {
        self.run_observed(plan, &mut Vec::new(), &mut None)
    }

    /// Render the predicate a plan node evaluates — the canonical
    /// `detail` string of its [`NodeObservation`].
    fn node_detail(&self, plan: &PlanNode) -> String {
        match &plan.op {
            PlanOp::SeqScan { node, .. } | PlanOp::IndexScan { node, .. } => {
                let parts: Vec<String> = self
                    .query
                    .graph
                    .filters_on(*node)
                    .map(|f| f.to_string())
                    .collect();
                parts.join(" AND ")
            }
            PlanOp::Sort { class } => format!("class {class}"),
            PlanOp::Join { .. } => {
                let (lset, rset) = (plan.children[0].set, plan.children[1].set);
                let parts: Vec<String> = self
                    .query
                    .graph
                    .crossing_edges(lset, rset)
                    .map(|e| {
                        let (a, b) = if lset.contains(e.left.node) {
                            (e.left, e.right)
                        } else {
                            (e.right, e.left)
                        };
                        format!("n{}.{} = n{}.{}", a.node, a.col, b.node, b.col)
                    })
                    .collect();
                parts.join(" AND ")
            }
        }
    }

    fn run_observed(
        &self,
        plan: &PlanNode,
        path: &mut Vec<usize>,
        obs: &mut Option<&mut Vec<NodeObservation>>,
    ) -> Result<Chunk, ExecError> {
        let chunk = self.run_node(plan, path, obs)?;
        if let Some(out) = obs.as_deref_mut() {
            let kind = match &plan.op {
                PlanOp::SeqScan { .. } => "SeqScan".to_string(),
                PlanOp::IndexScan { .. } => "IndexScan".to_string(),
                PlanOp::Sort { .. } => "Sort".to_string(),
                PlanOp::Join { method } => method.label().to_string(),
            };
            out.push(NodeObservation {
                path: path_string(path),
                kind,
                detail: self.node_detail(plan),
                estimated: plan.rows,
                actual: chunk.rows.len() as u64,
            });
        }
        Ok(chunk)
    }

    fn run_node(
        &self,
        plan: &PlanNode,
        path: &mut Vec<usize>,
        obs: &mut Option<&mut Vec<NodeObservation>>,
    ) -> Result<Chunk, ExecError> {
        match &plan.op {
            PlanOp::SeqScan { node, .. } => Ok(self.scan(*node, None)),
            PlanOp::IndexScan { node, col, .. } => Ok(self.scan(*node, Some(col.0 as usize))),
            PlanOp::Sort { class } => {
                path.push(0);
                let child = self.run_observed(&plan.children[0], path, obs)?;
                path.pop();
                // Sort by any member column of the class inside the set.
                let classes = self.query.equiv_classes();
                let member = classes
                    .members(*class)
                    .iter()
                    .find(|m| plan.set.contains(m.node))
                    .copied()
                    .ok_or_else(|| ExecError::BadPlan("sort class not in set".into()))?;
                let key = self.col_index(&child.layout, member)?;
                let mut rows = child.rows;
                rows.sort_by_key(|row| row[key]);
                Ok(Chunk {
                    layout: child.layout,
                    rows,
                })
            }
            PlanOp::Join { method } => {
                path.push(0);
                let left = self.run_observed(&plan.children[0], path, obs)?;
                path.pop();
                path.push(1);
                let right = self.run_observed(&plan.children[1], path, obs)?;
                path.pop();
                let (lset, rset) = (plan.children[0].set, plan.children[1].set);
                let (lk, rk) = self.join_keys(&left, &right, lset, rset)?;
                let rows = match method {
                    JoinMethod::NestedLoop => nested_loop(&left.rows, &right.rows, &lk, &rk)?,
                    JoinMethod::IndexNestedLoop => {
                        // Probe the real B+-tree when the inner child
                        // is a base scan on its indexed join column.
                        let inner_scan_node = match &plan.children[1].op {
                            PlanOp::SeqScan { node, .. } | PlanOp::IndexScan { node, .. } => {
                                Some(*node)
                            }
                            _ => None,
                        };
                        match inner_scan_node
                            .map(|n| self.index_nested_loop(&left, n, lset, rset))
                            .transpose()?
                            .flatten()
                        {
                            Some(rows) => rows,
                            None => hash_join(&left.rows, &right.rows, &lk, &rk)?,
                        }
                    }
                    JoinMethod::Hash => hash_join(&left.rows, &right.rows, &lk, &rk)?,
                    JoinMethod::Merge => merge_join(left.rows, right.rows, &lk, &rk)?,
                };
                let mut layout = left.layout;
                layout.extend(right.layout);
                Ok(Chunk { layout, rows })
            }
        }
    }

    /// Reorder a chunk's columns into canonical node-ascending order.
    fn canonicalize(&self, chunk: Chunk) -> Vec<Vec<i64>> {
        let mut nodes = chunk.layout.clone();
        nodes.sort_unstable();
        let mut perm: Vec<usize> = Vec::new();
        for &n in &nodes {
            let off = self
                .offset_of(&chunk.layout, n)
                .expect("node is in its own layout");
            perm.extend(off..off + self.ncols[n]);
        }
        chunk
            .rows
            .into_iter()
            .map(|row| perm.iter().map(|&i| row[i]).collect())
            .collect()
    }
}

fn check_cap(n: usize) -> Result<(), ExecError> {
    if n > MAX_ROWS {
        Err(ExecError::ResultTooLarge { rows: n })
    } else {
        Ok(())
    }
}

fn concat(a: &[i64], b: &[i64]) -> Vec<i64> {
    let mut v = Vec::with_capacity(a.len() + b.len());
    v.extend_from_slice(a);
    v.extend_from_slice(b);
    v
}

fn keys_match(l: &[i64], r: &[i64], lk: &[usize], rk: &[usize]) -> bool {
    lk.iter().zip(rk).all(|(&a, &b)| l[a] == r[b])
}

fn nested_loop(
    left: &[Vec<i64>],
    right: &[Vec<i64>],
    lk: &[usize],
    rk: &[usize],
) -> Result<Vec<Vec<i64>>, ExecError> {
    let mut out = Vec::new();
    for l in left {
        for r in right {
            if keys_match(l, r, lk, rk) {
                out.push(concat(l, r));
                check_cap(out.len())?;
            }
        }
    }
    Ok(out)
}

fn hash_join(
    left: &[Vec<i64>],
    right: &[Vec<i64>],
    lk: &[usize],
    rk: &[usize],
) -> Result<Vec<Vec<i64>>, ExecError> {
    // Build on the right (the optimizer's inner side).
    let mut build: HashMap<Vec<i64>, Vec<usize>> = HashMap::new();
    for (i, r) in right.iter().enumerate() {
        let key: Vec<i64> = rk.iter().map(|&c| r[c]).collect();
        build.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    for l in left {
        let key: Vec<i64> = lk.iter().map(|&c| l[c]).collect();
        if let Some(matches) = build.get(&key) {
            for &i in matches {
                out.push(concat(l, &right[i]));
                check_cap(out.len())?;
            }
        }
    }
    Ok(out)
}

fn merge_join(
    mut left: Vec<Vec<i64>>,
    mut right: Vec<Vec<i64>>,
    lk: &[usize],
    rk: &[usize],
) -> Result<Vec<Vec<i64>>, ExecError> {
    // Sort on the first key; residual keys filter within groups.
    let (k0l, k0r) = (lk[0], rk[0]);
    left.sort_by_key(|r| r[k0l]);
    right.sort_by_key(|r| r[k0r]);
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let (a, b) = (left[i][k0l], right[j][k0r]);
        if a < b {
            i += 1;
        } else if a > b {
            j += 1;
        } else {
            // Equal group: advance both group ends.
            let ie = (i..left.len())
                .find(|&x| left[x][k0l] != a)
                .unwrap_or(left.len());
            let je = (j..right.len())
                .find(|&x| right[x][k0r] != b)
                .unwrap_or(right.len());
            for l in &left[i..ie] {
                for r in &right[j..je] {
                    if keys_match(l, r, lk, rk) {
                        out.push(concat(l, r));
                        check_cap(out.len())?;
                    }
                }
            }
            i = ie;
            j = je;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::scaled_catalog;
    use sdp_core::{Algorithm, Optimizer, SdpConfig};
    use sdp_query::{QueryGenerator, Topology};

    fn sorted(mut rows: Vec<Vec<i64>>) -> Vec<Vec<i64>> {
        rows.sort();
        rows
    }

    #[test]
    fn join_kernels_agree() {
        // Two random row sets with a single key column each.
        let left: Vec<Vec<i64>> = (0..60).map(|i| vec![i % 7, i]).collect();
        let right: Vec<Vec<i64>> = (0..40).map(|i| vec![i, i % 5]).collect();
        let nl = nested_loop(&left, &right, &[0], &[1]).unwrap();
        let hj = hash_join(&left, &right, &[0], &[1]).unwrap();
        let mj = merge_join(left.clone(), right.clone(), &[0], &[1]).unwrap();
        assert_eq!(sorted(nl.clone()), sorted(hj));
        assert_eq!(sorted(nl), sorted(mj));
    }

    #[test]
    fn multi_key_residual_predicates_apply() {
        let left = vec![vec![1, 2], vec![1, 3]];
        let right = vec![vec![1, 2], vec![1, 9]];
        // Join on both columns: only the exact (1,2) pair matches.
        let nl = nested_loop(&left, &right, &[0, 1], &[0, 1]).unwrap();
        assert_eq!(nl.len(), 1);
        let mj = merge_join(left, right, &[0, 1], &[0, 1]).unwrap();
        assert_eq!(mj.len(), 1);
    }

    #[test]
    fn every_optimizer_plan_yields_identical_results() {
        let cat = scaled_catalog(8, 300, 11);
        let db = Database::generate(&cat, 17);
        for topo in [
            Topology::Chain(5),
            Topology::Star(5),
            Topology::star_chain(6),
        ] {
            let q = QueryGenerator::new(&cat, topo, 3).instance(0);
            let opt = Optimizer::new(&cat);
            let mut results = Vec::new();
            for alg in [
                Algorithm::Dp,
                Algorithm::Sdp(SdpConfig::paper()),
                Algorithm::Goo,
                Algorithm::Idp { k: 4 },
            ] {
                let plan = opt.optimize(&q, alg).unwrap();
                let rows = execute(&plan.root, &q, &cat, &db).unwrap();
                results.push(sorted(rows));
            }
            for r in &results[1..] {
                assert_eq!(results[0].len(), r.len(), "{topo}: row counts differ");
                assert_eq!(&results[0], r, "{topo}: results differ");
            }
        }
    }

    #[test]
    fn ordered_plan_output_is_sorted() {
        let cat = scaled_catalog(8, 300, 13);
        let db = Database::generate(&cat, 19);
        let q = QueryGenerator::new(&cat, Topology::Chain(4), 5).ordered_instance(0);
        let opt = Optimizer::new(&cat);
        let plan = opt.optimize(&q, Algorithm::Dp).unwrap();
        assert!(plan.root.ordering.is_some());

        // Execute and verify sortedness on the ORDER BY column.
        let rows = execute(&plan.root, &q, &cat, &db).unwrap();
        let target = q.order_by.unwrap().column;
        // Canonical layout: nodes ascending, each with its column
        // block.
        let mut off = 0;
        for n in 0..target.node {
            off += cat.relation(q.graph.relation(n)).unwrap().columns.len();
        }
        let col = off + target.col.0 as usize;
        for w in rows.windows(2) {
            assert!(w[0][col] <= w[1][col], "output not sorted");
        }
    }

    #[test]
    fn executor_matches_brute_force_on_two_tables() {
        let cat = scaled_catalog(4, 100, 23);
        let db = Database::generate(&cat, 29);
        let q = QueryGenerator::new(&cat, Topology::Chain(2), 7).instance(0);
        let opt = Optimizer::new(&cat);
        let plan = opt.optimize(&q, Algorithm::Dp).unwrap();
        let got = sorted(execute(&plan.root, &q, &cat, &db).unwrap());

        // Brute force over the raw tables.
        let e = q.graph.edges()[0];
        let (t0, t1) = (db.table(q.graph.relation(0)), db.table(q.graph.relation(1)));
        let (c0, c1) = (e.left.col.0 as usize, e.right.col.0 as usize);
        let mut expected = Vec::new();
        for r0 in 0..t0.rows {
            for r1 in 0..t1.rows {
                if t0.value(r0, c0) == t1.value(r1, c1) {
                    let mut row: Vec<i64> =
                        (0..t0.columns.len()).map(|c| t0.value(r0, c)).collect();
                    row.extend((0..t1.columns.len()).map(|c| t1.value(r1, c)));
                    expected.push(row);
                }
            }
        }
        assert_eq!(got, sorted(expected));
    }

    #[test]
    fn observed_execution_matches_plain_and_covers_every_node() {
        let cat = scaled_catalog(8, 300, 11);
        let db = Database::generate(&cat, 17);
        let q = QueryGenerator::new(&cat, Topology::star_chain(6), 3).instance(0);
        let opt = Optimizer::new(&cat);
        let plan = opt
            .optimize(&q, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();

        let plain = execute(&plan.root, &q, &cat, &db).unwrap();
        let (observed, obs) = execute_observed(&plan.root, &q, &cat, &db).unwrap();
        assert_eq!(plain, observed, "observation must not perturb results");

        // One observation per plan node, with unique paths and a root.
        assert_eq!(obs.len(), plan.root.node_count());
        let mut paths: Vec<&str> = obs.iter().map(|o| o.path.as_str()).collect();
        paths.sort_unstable();
        paths.dedup();
        assert_eq!(paths.len(), obs.len(), "paths must be unique");
        let root = obs.iter().find(|o| o.path == "r").expect("root observed");
        assert_eq!(root.actual as usize, plain.len());
        assert_eq!(root.estimated, plan.root.rows);
        // Joins carry their equi-join condition as detail.
        assert!(obs
            .iter()
            .filter(|o| o.kind.contains("Join") || o.kind.contains("Loop"))
            .all(|o| o.detail.contains(" = ")));
    }

    #[test]
    fn observed_paths_follow_tree_structure() {
        let cat = scaled_catalog(6, 200, 7);
        let db = Database::generate(&cat, 13);
        let q = QueryGenerator::new(&cat, Topology::Chain(3), 2).instance(0);
        let opt = Optimizer::new(&cat);
        let plan = opt.optimize(&q, Algorithm::Dp).unwrap();
        let (_, obs) = execute_observed(&plan.root, &q, &cat, &db).unwrap();
        // Every non-root path's parent prefix must itself be observed.
        for o in &obs {
            if let Some((parent, _)) = o.path.rsplit_once('.') {
                assert!(
                    obs.iter().any(|p| p.path == parent),
                    "dangling path {}",
                    o.path
                );
            }
        }
    }

    #[test]
    fn result_cap_guards_blowups() {
        let left: Vec<Vec<i64>> = (0..3000).map(|_| vec![1]).collect();
        let right = left.clone();
        // 9M-row cross-ish join trips the cap.
        assert!(matches!(
            hash_join(&left, &right, &[0], &[0]),
            Err(ExecError::ResultTooLarge { .. })
        ));
    }
}
