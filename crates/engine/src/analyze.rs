//! Data-driven `ANALYZE`: recompute catalog statistics from the
//! materialized tuples, the way a real system would.
//!
//! The schema builder derives statistics analytically from the known
//! distribution parameters; this module derives them by *sampling the
//! data* — distinct counts via a sampled Cardenas-style estimator,
//! equi-depth histograms from sorted samples. Swapping the analytic
//! statistics for sampled ones (`Catalog::replace_stats`) lets tests
//! verify that the optimizer's behaviour is robust to realistic
//! statistics noise.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use sdp_catalog::{AnalyzedRelation, Catalog, ColumnStats, Histogram, RelationStats};

use crate::datagen::Database;

/// Default sample size per column (PostgreSQL samples
/// `300 × statistics_target` rows; this is the same ballpark).
pub const DEFAULT_SAMPLE: usize = 3000;

/// Re-analyze every relation of `catalog` from the data in `db`,
/// returning statistics suitable for [`Catalog::replace_stats`].
pub fn analyze_database(
    catalog: &Catalog,
    db: &Database,
    sample_size: usize,
    seed: u64,
) -> Vec<AnalyzedRelation> {
    catalog
        .relations()
        .iter()
        .map(|rel| {
            let table = db.table(rel.id);
            let mut rng = StdRng::seed_from_u64(seed ^ u64::from(rel.id.0));
            // One shared row sample across the relation's columns.
            let mut rows: Vec<usize> = (0..table.rows).collect();
            rows.shuffle(&mut rng);
            rows.truncate(sample_size.max(1).min(table.rows.max(1)));

            let mut columns = Vec::with_capacity(rel.columns.len());
            let mut histograms = Vec::with_capacity(rel.columns.len());
            for (c, col_meta) in rel.columns.iter().enumerate() {
                let sample: Vec<i64> = rows.iter().map(|&r| table.value(r, c)).collect();
                let mut distinct = sample.clone();
                distinct.sort_unstable();
                distinct.dedup();
                // Scale sampled distincts to the full relation with the
                // first-order Goodman/Cardenas correction: if the sample
                // saturates its own size, extrapolate linearly; if it
                // saturates the domain, clamp there.
                let d_sample = distinct.len() as f64;
                let n_sample = sample.len().max(1) as f64;
                let n_total = table.rows as f64;
                let n_distinct = if d_sample >= n_sample * 0.95 {
                    // Nearly-unique sample: assume proportional.
                    (d_sample / n_sample * n_total).min(n_total)
                } else {
                    d_sample.min(n_total)
                }
                .min(col_meta.domain_size as f64)
                .max(1.0);
                columns.push(ColumnStats {
                    n_distinct,
                    skew_factor: col_meta.distribution.skew_factor(),
                    null_frac: 0.0,
                });
                histograms.push(Histogram::from_values(
                    &sample,
                    Histogram::DEFAULT_BUCKETS.min(sample.len().max(1)),
                ));
            }
            AnalyzedRelation {
                relation: RelationStats::derive(rel),
                columns,
                histograms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::scaled_catalog;
    use sdp_catalog::ColId;

    fn sampled_world() -> (Catalog, Catalog, Database) {
        let analytic = scaled_catalog(8, 2000, 7);
        let db = Database::generate(&analytic, 13);
        let mut sampled = analytic.clone();
        let stats = analyze_database(&analytic, &db, DEFAULT_SAMPLE, 99);
        sampled.replace_stats(stats);
        (analytic, sampled, db)
    }

    #[test]
    fn sampled_distincts_track_analytic_ones() {
        let (analytic, sampled, _) = sampled_world();
        for rel in analytic.relations() {
            let a = analytic.stats(rel.id).unwrap();
            let s = sampled.stats(rel.id).unwrap();
            for c in 0..rel.columns.len() {
                let col = ColId(c as u16);
                let (da, ds) = (
                    a.column(col).unwrap().n_distinct,
                    s.column(col).unwrap().n_distinct,
                );
                let ratio = (ds / da).max(da / ds);
                assert!(
                    ratio < 3.0,
                    "{} col {c}: analytic {da:.0} vs sampled {ds:.0}",
                    rel.name
                );
            }
        }
    }

    #[test]
    fn sampled_histograms_track_analytic_ones() {
        let (analytic, sampled, _) = sampled_world();
        let rel = analytic.relations().last().unwrap();
        let a = analytic.stats(rel.id).unwrap().histogram(ColId(0)).unwrap();
        let s = sampled.stats(rel.id).unwrap().histogram(ColId(0)).unwrap();
        let domain = rel.columns[0].domain_size as i64;
        for q in [1, 2, 3] {
            let v = domain * q / 4;
            let (fa, fs) = (a.fraction_below(v), s.fraction_below(v));
            assert!(
                (fa - fs).abs() < 0.12,
                "q{q}: analytic {fa} vs sampled {fs}"
            );
        }
    }

    #[test]
    fn optimizer_is_robust_to_sampled_statistics() {
        use sdp_core::{Algorithm, Optimizer, SdpConfig};
        use sdp_query::{QueryGenerator, Topology};
        let (analytic, sampled, _) = sampled_world();
        // The same query, optimized under both statistics variants:
        // plan costs may differ, but both pipelines must complete and
        // produce structurally valid plans of similar quality class.
        for seed in 0..3 {
            let q = QueryGenerator::new(&analytic, Topology::star_chain(6), seed)
                .with_filter_probability(0.5)
                .instance(0);
            let pa = Optimizer::new(&analytic)
                .optimize(&q, Algorithm::Sdp(SdpConfig::paper()))
                .unwrap();
            let ps = Optimizer::new(&sampled)
                .optimize(&q, Algorithm::Sdp(SdpConfig::paper()))
                .unwrap();
            pa.root.check_invariants().unwrap();
            ps.root.check_invariants().unwrap();
            // Costs under the two statistics sets stay within an order
            // of magnitude of each other.
            let ratio = (pa.cost / ps.cost).max(ps.cost / pa.cost);
            assert!(ratio < 10.0, "seed {seed}: ratio {ratio}");
        }
    }

    #[test]
    #[should_panic(expected = "one AnalyzedRelation per relation")]
    fn replace_stats_checks_arity() {
        let (analytic, _, db) = sampled_world();
        let mut broken = analytic.clone();
        let mut stats = analyze_database(&analytic, &db, 100, 1);
        stats.pop();
        broken.replace_stats(stats);
    }
}
