//! # sdp-engine — synthetic data generation and a Volcano-style
//! executor
//!
//! The paper measures *optimizer-estimated* plan costs, so no query is
//! ever executed for its tables. This crate exists as validation
//! substrate: it materializes tuples that match the catalog's
//! statistics (same cardinalities, domains and distributions the
//! `ANALYZE`-equivalent statistics were derived from), executes the
//! optimizer's physical plans with a small iterator-model engine, and
//! checks that
//!
//! * every physical plan for a query produces the same result
//!   multiset (plan correctness), and
//! * estimated cardinalities track actual cardinalities (cost-model
//!   sanity).
//!
//! Execution uses a *scaled-down* copy of the schema
//! ([`scaled_catalog`]) — running 2.5 M-row joins is not the point;
//! preserving the relative shapes is.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod analyze;
mod btree;
mod datagen;
mod exec;
mod validate;

pub use analyze::{analyze_database, DEFAULT_SAMPLE};
pub use btree::BTreeIndex;
pub use datagen::{scaled_catalog, Database, Table};
pub use exec::{execute, execute_observed, ExecError, NodeObservation};
pub use validate::{actual_vs_estimated, q_error};
