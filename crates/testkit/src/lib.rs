//! # sdp-testkit — deterministic fault injection for resource tests
//!
//! The resource governor's degradation ladder (`sdp-core::governor`)
//! and the service daemon's retry-with-degradation policy only show
//! their behaviour when resources run out or a leader crashes —
//! conditions that are awkward to provoke with real workloads and
//! impossible to provoke *deterministically* with wall clocks. This
//! crate provides a [`FaultPlan`]: a small, cloneable schedule of
//! injected faults that the optimizer consults at well-defined
//! points:
//!
//! * **budget shrinks** and **artificial latency** are keyed on the
//!   optimizer's *barrier counter* — a logical clock that ticks only
//!   on the coordinating thread at DP level barriers (twice per
//!   level: before and after skyline pruning). Because workers never
//!   tick it, a schedule trips at the same logical instant whether
//!   enumeration runs on one thread or eight, which is what makes the
//!   governor's escalation testable for determinism;
//! * **leader panics** are keyed on the strategy label a single-flight
//!   leader is about to run, and are consumed one at a time, so a test
//!   can arrange "panic on the first DP attempt, succeed on the SDP
//!   retry" exactly.
//!
//! Production builds pay nothing for any of this: `sdp-core` and
//! `sdp-service` only compile their hook points under their `testkit`
//! cargo feature, which the workspace enables for test targets alone.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The faults scheduled for one barrier tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierFault {
    /// Replace the memory-model budget with this many bytes before
    /// the barrier's budget check runs.
    pub shrink_memory_to: Option<u64>,
    /// Sleep this long before the barrier's budget check runs
    /// (injected enumeration latency).
    pub delay: Option<Duration>,
}

impl BarrierFault {
    /// Whether this tick injects anything.
    pub fn is_empty(&self) -> bool {
        self.shrink_memory_to.is_none() && self.delay.is_none()
    }
}

#[derive(Debug, Default)]
struct Inner {
    shrinks: BTreeMap<u64, u64>,
    delays: BTreeMap<u64, Duration>,
    /// Strategy label → number of armed leader panics left.
    leader_panics: HashMap<String, u64>,
    /// Leader panics actually fired (by label), for assertions.
    fired_panics: HashMap<String, u64>,
    /// Crash the process after this many more durable-store writes
    /// (`None` = never).
    store_crash_after: Option<u64>,
}

/// A deterministic, shareable fault schedule. Cloning is cheap and
/// clones share state, so the plan handed to an optimizer run can be
/// inspected by the test afterwards.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Shrink the memory-model budget to `bytes` when barrier number
    /// `barrier` is reached (barriers count from 1).
    pub fn shrink_memory_at(self, barrier: u64, bytes: u64) -> Self {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .shrinks
            .insert(barrier, bytes);
        self
    }

    /// Sleep for `delay` when barrier number `barrier` is reached —
    /// artificial enumeration latency for deadline tests.
    pub fn delay_at(self, barrier: u64, delay: Duration) -> Self {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .delays
            .insert(barrier, delay);
        self
    }

    /// Arm one leader panic for the strategy with the given display
    /// label (e.g. `"DP"`). Each armed panic fires once; arming the
    /// same label repeatedly stacks.
    pub fn panic_leader_on(self, label: &str) -> Self {
        *self
            .inner
            .lock()
            .expect("fault plan poisoned")
            .leader_panics
            .entry(label.to_string())
            .or_insert(0) += 1;
        self
    }

    /// The faults scheduled for barrier `barrier` (empty when none).
    pub fn at_barrier(&self, barrier: u64) -> BarrierFault {
        let inner = self.inner.lock().expect("fault plan poisoned");
        BarrierFault {
            shrink_memory_to: inner.shrinks.get(&barrier).copied(),
            delay: inner.delays.get(&barrier).copied(),
        }
    }

    /// Consume one armed leader panic for `label`. Returns `true` when
    /// a panic was armed (the caller should now panic); the armed
    /// count decrements so the next attempt survives unless re-armed.
    pub fn take_leader_panic(&self, label: &str) -> bool {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        match inner.leader_panics.get_mut(label) {
            Some(n) if *n > 0 => {
                *n -= 1;
                *inner.fired_panics.entry(label.to_string()).or_insert(0) += 1;
                true
            }
            _ => false,
        }
    }

    /// Arm a crash point in the durable plan store: the process
    /// aborts immediately after the `n`-th store write (1-based) —
    /// simulated power loss at an append boundary, for torn-tail
    /// recovery tests.
    pub fn crash_after_store_writes(self, n: u64) -> Self {
        assert!(n > 0, "crash point counts writes from 1");
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .store_crash_after = Some(n);
        self
    }

    /// Tick the store-write crash countdown. Returns `true` when the
    /// armed write count has just been reached (the caller should now
    /// abort the process).
    pub fn take_store_crash(&self) -> bool {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        match inner.store_crash_after.as_mut() {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    inner.store_crash_after = None;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// How many leader panics have fired for `label` so far.
    pub fn fired_panics(&self, label: &str) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .fired_panics
            .get(label)
            .copied()
            .unwrap_or(0)
    }

    /// How many leader panics remain armed for `label`.
    pub fn armed_panics(&self, label: &str) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .leader_panics
            .get(label)
            .copied()
            .unwrap_or(0)
    }
}

#[derive(Debug, Default)]
struct ChaosInner {
    /// Arrival sequence number → virtual queue wait charged against
    /// that request's deadline (replaces the measured wall-clock wait).
    queue_waits: BTreeMap<u64, Duration>,
    /// Arrival sequence numbers the harness should turn into poison
    /// requests (e.g. a zero memory budget that exhausts the ladder).
    poison: std::collections::BTreeSet<u64>,
    /// Arrival sequence numbers whose worker dies mid-reply (consumed
    /// one at a time, like leader panics).
    worker_kills: std::collections::BTreeSet<u64>,
    /// Burst arrival pattern: sizes of consecutive submission bursts.
    /// The harness submits each burst with the daemon paused, so
    /// admission decisions depend only on arrival order.
    bursts: Vec<usize>,
}

/// A deterministic chaos schedule for the service daemon's overload
/// layer, keyed on **arrival sequence numbers** — the daemon counts
/// every submission (admitted or shed) with a monotonic counter, so a
/// schedule trips at the same logical arrival regardless of worker
/// count, `SDP_THREADS`, or wall-clock timing. Cloning is cheap and
/// clones share state, mirroring [`FaultPlan`].
///
/// What it can script:
/// * **virtual queue waits** ([`with_queue_wait`](Self::with_queue_wait))
///   — the wait charged against a request's deadline before the worker
///   optimizes, replacing the measured wall-clock wait so
///   deadline-shedding decisions are reproducible;
/// * **poison arrivals** ([`with_poison`](Self::with_poison)) — which
///   arrivals the test harness should submit with a poisoned budget,
///   for circuit-breaker scripts;
/// * **worker kills** ([`with_worker_kill`](Self::with_worker_kill)) —
///   which arrivals' worker panics mid-reply, for `Ticket::wait`
///   disconnect-vs-shutdown tests;
/// * **burst patterns** ([`with_bursts`](Self::with_bursts)) — how the
///   harness groups submissions into paused bursts.
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    inner: Arc<Mutex<ChaosInner>>,
}

impl ChaosSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        ChaosSchedule::default()
    }

    /// Charge arrival `seq` (counted from 0) a virtual queue wait of
    /// `wait` instead of its measured wall-clock wait.
    pub fn with_queue_wait(self, seq: u64, wait: Duration) -> Self {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .queue_waits
            .insert(seq, wait);
        self
    }

    /// Mark arrival `seq` as a poison request (the harness submits it
    /// with a budget that exhausts the ladder).
    pub fn with_poison(self, seq: u64) -> Self {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .poison
            .insert(seq);
        self
    }

    /// Kill the worker serving arrival `seq` mid-reply (it panics
    /// after dequeuing, before answering). Consumed when taken.
    pub fn with_worker_kill(self, seq: u64) -> Self {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .worker_kills
            .insert(seq);
        self
    }

    /// Group submissions into paused bursts of the given sizes.
    pub fn with_bursts(self, sizes: &[usize]) -> Self {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .bursts
            .extend_from_slice(sizes);
        self
    }

    /// The virtual queue wait scheduled for arrival `seq`, if any.
    pub fn queue_wait(&self, seq: u64) -> Option<Duration> {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .queue_waits
            .get(&seq)
            .copied()
    }

    /// Whether arrival `seq` is scripted as poison.
    pub fn is_poison(&self, seq: u64) -> bool {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .poison
            .contains(&seq)
    }

    /// Consume the worker-kill scheduled for arrival `seq`. Returns
    /// `true` when one was armed (the worker should now panic).
    pub fn take_worker_kill(&self, seq: u64) -> bool {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .worker_kills
            .remove(&seq)
    }

    /// The scripted burst sizes (empty = submit everything in one
    /// burst).
    pub fn bursts(&self) -> Vec<usize> {
        self.inner
            .lock()
            .expect("chaos schedule poisoned")
            .bursts
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.at_barrier(1).is_empty());
        assert!(!plan.take_leader_panic("DP"));
    }

    #[test]
    fn barrier_schedule_is_keyed_exactly() {
        let plan = FaultPlan::new()
            .shrink_memory_at(3, 4096)
            .delay_at(5, Duration::from_millis(7));
        assert!(plan.at_barrier(2).is_empty());
        assert_eq!(plan.at_barrier(3).shrink_memory_to, Some(4096));
        assert_eq!(plan.at_barrier(3).delay, None);
        assert_eq!(plan.at_barrier(5).delay, Some(Duration::from_millis(7)));
        // Schedules are consultable repeatedly (pure reads).
        assert_eq!(plan.at_barrier(3).shrink_memory_to, Some(4096));
    }

    #[test]
    fn leader_panics_are_consumed_one_at_a_time() {
        let plan = FaultPlan::new().panic_leader_on("DP").panic_leader_on("DP");
        assert_eq!(plan.armed_panics("DP"), 2);
        assert!(plan.take_leader_panic("DP"));
        assert!(plan.take_leader_panic("DP"));
        assert!(!plan.take_leader_panic("DP"), "third attempt survives");
        assert_eq!(plan.fired_panics("DP"), 2);
        assert_eq!(plan.armed_panics("DP"), 0);
        assert!(!plan.take_leader_panic("SDP"), "labels are independent");
    }

    #[test]
    fn store_crash_countdown_fires_exactly_once() {
        let plan = FaultPlan::new().crash_after_store_writes(3);
        assert!(!plan.take_store_crash());
        assert!(!plan.take_store_crash());
        assert!(plan.take_store_crash(), "third write trips the crash");
        assert!(!plan.take_store_crash(), "countdown disarms after firing");
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new().panic_leader_on("GOO");
        let view = plan.clone();
        assert!(plan.take_leader_panic("GOO"));
        assert_eq!(view.fired_panics("GOO"), 1);
        assert!(!view.take_leader_panic("GOO"));
    }

    #[test]
    fn chaos_schedule_is_keyed_on_arrival_sequence() {
        let chaos = ChaosSchedule::new()
            .with_queue_wait(2, Duration::from_millis(40))
            .with_poison(3)
            .with_bursts(&[4, 8]);
        assert_eq!(chaos.queue_wait(1), None);
        assert_eq!(chaos.queue_wait(2), Some(Duration::from_millis(40)));
        assert!(!chaos.is_poison(2));
        assert!(chaos.is_poison(3));
        assert_eq!(chaos.bursts(), vec![4, 8]);
        // Waits and poison marks are pure reads, consultable repeatedly.
        assert_eq!(chaos.queue_wait(2), Some(Duration::from_millis(40)));
        assert!(chaos.is_poison(3));
    }

    #[test]
    fn chaos_worker_kills_are_consumed_and_shared_across_clones() {
        let chaos = ChaosSchedule::new().with_worker_kill(5);
        let view = chaos.clone();
        assert!(!chaos.take_worker_kill(4));
        assert!(chaos.take_worker_kill(5));
        assert!(!view.take_worker_kill(5), "kill fires exactly once");
    }
}
