//! # sdp-testkit — deterministic fault injection for resource tests
//!
//! The resource governor's degradation ladder (`sdp-core::governor`)
//! and the service daemon's retry-with-degradation policy only show
//! their behaviour when resources run out or a leader crashes —
//! conditions that are awkward to provoke with real workloads and
//! impossible to provoke *deterministically* with wall clocks. This
//! crate provides a [`FaultPlan`]: a small, cloneable schedule of
//! injected faults that the optimizer consults at well-defined
//! points:
//!
//! * **budget shrinks** and **artificial latency** are keyed on the
//!   optimizer's *barrier counter* — a logical clock that ticks only
//!   on the coordinating thread at DP level barriers (twice per
//!   level: before and after skyline pruning). Because workers never
//!   tick it, a schedule trips at the same logical instant whether
//!   enumeration runs on one thread or eight, which is what makes the
//!   governor's escalation testable for determinism;
//! * **leader panics** are keyed on the strategy label a single-flight
//!   leader is about to run, and are consumed one at a time, so a test
//!   can arrange "panic on the first DP attempt, succeed on the SDP
//!   retry" exactly.
//!
//! Production builds pay nothing for any of this: `sdp-core` and
//! `sdp-service` only compile their hook points under their `testkit`
//! cargo feature, which the workspace enables for test targets alone.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The faults scheduled for one barrier tick.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierFault {
    /// Replace the memory-model budget with this many bytes before
    /// the barrier's budget check runs.
    pub shrink_memory_to: Option<u64>,
    /// Sleep this long before the barrier's budget check runs
    /// (injected enumeration latency).
    pub delay: Option<Duration>,
}

impl BarrierFault {
    /// Whether this tick injects anything.
    pub fn is_empty(&self) -> bool {
        self.shrink_memory_to.is_none() && self.delay.is_none()
    }
}

#[derive(Debug, Default)]
struct Inner {
    shrinks: BTreeMap<u64, u64>,
    delays: BTreeMap<u64, Duration>,
    /// Strategy label → number of armed leader panics left.
    leader_panics: HashMap<String, u64>,
    /// Leader panics actually fired (by label), for assertions.
    fired_panics: HashMap<String, u64>,
    /// Crash the process after this many more durable-store writes
    /// (`None` = never).
    store_crash_after: Option<u64>,
}

/// A deterministic, shareable fault schedule. Cloning is cheap and
/// clones share state, so the plan handed to an optimizer run can be
/// inspected by the test afterwards.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Shrink the memory-model budget to `bytes` when barrier number
    /// `barrier` is reached (barriers count from 1).
    pub fn shrink_memory_at(self, barrier: u64, bytes: u64) -> Self {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .shrinks
            .insert(barrier, bytes);
        self
    }

    /// Sleep for `delay` when barrier number `barrier` is reached —
    /// artificial enumeration latency for deadline tests.
    pub fn delay_at(self, barrier: u64, delay: Duration) -> Self {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .delays
            .insert(barrier, delay);
        self
    }

    /// Arm one leader panic for the strategy with the given display
    /// label (e.g. `"DP"`). Each armed panic fires once; arming the
    /// same label repeatedly stacks.
    pub fn panic_leader_on(self, label: &str) -> Self {
        *self
            .inner
            .lock()
            .expect("fault plan poisoned")
            .leader_panics
            .entry(label.to_string())
            .or_insert(0) += 1;
        self
    }

    /// The faults scheduled for barrier `barrier` (empty when none).
    pub fn at_barrier(&self, barrier: u64) -> BarrierFault {
        let inner = self.inner.lock().expect("fault plan poisoned");
        BarrierFault {
            shrink_memory_to: inner.shrinks.get(&barrier).copied(),
            delay: inner.delays.get(&barrier).copied(),
        }
    }

    /// Consume one armed leader panic for `label`. Returns `true` when
    /// a panic was armed (the caller should now panic); the armed
    /// count decrements so the next attempt survives unless re-armed.
    pub fn take_leader_panic(&self, label: &str) -> bool {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        match inner.leader_panics.get_mut(label) {
            Some(n) if *n > 0 => {
                *n -= 1;
                *inner.fired_panics.entry(label.to_string()).or_insert(0) += 1;
                true
            }
            _ => false,
        }
    }

    /// Arm a crash point in the durable plan store: the process
    /// aborts immediately after the `n`-th store write (1-based) —
    /// simulated power loss at an append boundary, for torn-tail
    /// recovery tests.
    pub fn crash_after_store_writes(self, n: u64) -> Self {
        assert!(n > 0, "crash point counts writes from 1");
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .store_crash_after = Some(n);
        self
    }

    /// Tick the store-write crash countdown. Returns `true` when the
    /// armed write count has just been reached (the caller should now
    /// abort the process).
    pub fn take_store_crash(&self) -> bool {
        let mut inner = self.inner.lock().expect("fault plan poisoned");
        match inner.store_crash_after.as_mut() {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    inner.store_crash_after = None;
                    true
                } else {
                    false
                }
            }
            None => false,
        }
    }

    /// How many leader panics have fired for `label` so far.
    pub fn fired_panics(&self, label: &str) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .fired_panics
            .get(label)
            .copied()
            .unwrap_or(0)
    }

    /// How many leader panics remain armed for `label`.
    pub fn armed_panics(&self, label: &str) -> u64 {
        self.inner
            .lock()
            .expect("fault plan poisoned")
            .leader_panics
            .get(label)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new();
        assert!(plan.at_barrier(1).is_empty());
        assert!(!plan.take_leader_panic("DP"));
    }

    #[test]
    fn barrier_schedule_is_keyed_exactly() {
        let plan = FaultPlan::new()
            .shrink_memory_at(3, 4096)
            .delay_at(5, Duration::from_millis(7));
        assert!(plan.at_barrier(2).is_empty());
        assert_eq!(plan.at_barrier(3).shrink_memory_to, Some(4096));
        assert_eq!(plan.at_barrier(3).delay, None);
        assert_eq!(plan.at_barrier(5).delay, Some(Duration::from_millis(7)));
        // Schedules are consultable repeatedly (pure reads).
        assert_eq!(plan.at_barrier(3).shrink_memory_to, Some(4096));
    }

    #[test]
    fn leader_panics_are_consumed_one_at_a_time() {
        let plan = FaultPlan::new().panic_leader_on("DP").panic_leader_on("DP");
        assert_eq!(plan.armed_panics("DP"), 2);
        assert!(plan.take_leader_panic("DP"));
        assert!(plan.take_leader_panic("DP"));
        assert!(!plan.take_leader_panic("DP"), "third attempt survives");
        assert_eq!(plan.fired_panics("DP"), 2);
        assert_eq!(plan.armed_panics("DP"), 0);
        assert!(!plan.take_leader_panic("SDP"), "labels are independent");
    }

    #[test]
    fn store_crash_countdown_fires_exactly_once() {
        let plan = FaultPlan::new().crash_after_store_writes(3);
        assert!(!plan.take_store_crash());
        assert!(!plan.take_store_crash());
        assert!(plan.take_store_crash(), "third write trips the crash");
        assert!(!plan.take_store_crash(), "countdown disarms after firing");
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::new().panic_leader_on("GOO");
        let view = plan.clone();
        assert!(plan.take_leader_panic("GOO"));
        assert_eq!(view.fired_panics("GOO"), 1);
        assert!(!view.take_leader_panic("GOO"));
    }
}
