//! # sdp-sql — a SQL front-end for the SDP optimizer
//!
//! The paper's experiments generate join graphs programmatically, but
//! the system it describes optimizes *SQL queries*; this crate closes
//! that gap so the library is adoptable end-to-end:
//!
//! ```
//! use sdp_catalog::Catalog;
//! use sdp_core::{Algorithm, Optimizer, SdpConfig};
//!
//! let catalog = Catalog::paper();
//! let query = sdp_sql::parse_query(
//!     &catalog,
//!     "SELECT * FROM R24 f, R3 a, R7 b \
//!      WHERE f.c0 = a.c2 AND f.c1 = b.c5 AND a.c4 < 100 \
//!      ORDER BY a.c2",
//! ).unwrap();
//! let plan = Optimizer::new(&catalog)
//!     .optimize(&query, Algorithm::Sdp(SdpConfig::paper()))
//!     .unwrap();
//! assert!(plan.cost > 0.0);
//! ```
//!
//! Supported surface (deliberately the fragment the paper's workloads
//! inhabit): `SELECT *` over a comma-separated `FROM` list with
//! optional aliases, a `WHERE` conjunction of equi-joins
//! (`a.x = b.y`) and constant comparisons (`a.x < 10`, `=`, `<=`,
//! `>`, `>=`), and optional single-column `GROUP BY` / `ORDER BY`
//! clauses (both register as interesting orders with the optimizer).
//!
//! [`render_sql`] is the inverse: it prints any [`sdp_query::Query`]
//! back as SQL, which the round-trip property tests lean on.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod ast;
mod binder;
mod lexer;
mod parser;
mod render;

pub use ast::{
    Comparison, Condition, GroupByItem, OrderByItem, QualifiedColumn, SelectStatement, TableRef,
};
pub use binder::bind;
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse;
pub use render::{render_sql, render_statement};

use sdp_catalog::Catalog;
use sdp_query::Query;

/// Errors from any front-end stage, with a byte offset into the input
/// where available.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Lexical error (unexpected character).
    Lex {
        /// Byte offset of the offending character.
        at: usize,
        /// Description.
        message: String,
    },
    /// Grammar error.
    Parse {
        /// Byte offset of the offending token.
        at: usize,
        /// Description.
        message: String,
    },
    /// Name-resolution error.
    Bind {
        /// Description (table/column names included).
        message: String,
    },
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex { at, message } => write!(f, "lex error at byte {at}: {message}"),
            SqlError::Parse { at, message } => write!(f, "parse error at byte {at}: {message}"),
            SqlError::Bind { message } => write!(f, "bind error: {message}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Parse and bind a SQL string against a catalog, producing an
/// optimizable [`Query`].
pub fn parse_query(catalog: &Catalog, sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql)?;
    let stmt = parse(&tokens)?;
    bind(catalog, &stmt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdp_catalog::Catalog;

    #[test]
    fn end_to_end_parse_bind() {
        let catalog = Catalog::paper();
        let q = parse_query(&catalog, "select * from R1 a, R2 b where a.c0 = b.c1").unwrap();
        assert_eq!(q.num_relations(), 2);
        assert_eq!(q.graph.edges().len(), 1);
        assert!(q.order_by.is_none());
    }

    #[test]
    fn errors_carry_positions() {
        let catalog = Catalog::paper();
        let err = parse_query(&catalog, "select * from R1 a where a.c0 ~ 3").unwrap_err();
        assert!(matches!(err, SqlError::Lex { .. }), "{err}");
        let err = parse_query(&catalog, "select from R1").unwrap_err();
        assert!(matches!(err, SqlError::Parse { .. }), "{err}");
        let err = parse_query(&catalog, "select * from NO_SUCH_TABLE t").unwrap_err();
        assert!(matches!(err, SqlError::Bind { .. }), "{err}");
    }
}
