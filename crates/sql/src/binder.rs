//! Name resolution: AST → optimizable [`Query`] against a catalog.

use std::collections::HashMap;

use sdp_catalog::{Catalog, ColId, RelId};
use sdp_query::{ColRef, JoinEdge, JoinGraph, PredOp, Predicate, Query};

use crate::ast::{Comparison, Condition, QualifiedColumn, SelectStatement};
use crate::SqlError;

fn bind_err<T>(message: impl Into<String>) -> Result<T, SqlError> {
    Err(SqlError::Bind {
        message: message.into(),
    })
}

/// Bind a parsed statement against the catalog.
pub fn bind(catalog: &Catalog, stmt: &SelectStatement) -> Result<Query, SqlError> {
    if stmt.from.is_empty() {
        return bind_err("empty FROM list");
    }

    // Resolve tables (by case-insensitive name) and aliases.
    let mut by_name: HashMap<String, RelId> = HashMap::new();
    for rel in catalog.relations() {
        by_name.insert(rel.name.to_ascii_lowercase(), rel.id);
    }
    let mut aliases: HashMap<String, usize> = HashMap::new();
    let mut bindings: Vec<RelId> = Vec::with_capacity(stmt.from.len());
    for (node, tref) in stmt.from.iter().enumerate() {
        let Some(&rel) = by_name.get(&tref.table.to_ascii_lowercase()) else {
            return bind_err(format!("unknown table `{}`", tref.table));
        };
        if aliases
            .insert(tref.alias.to_ascii_lowercase(), node)
            .is_some()
        {
            return bind_err(format!("duplicate alias `{}`", tref.alias));
        }
        bindings.push(rel);
    }

    let resolve = |qc: &QualifiedColumn| -> Result<ColRef, SqlError> {
        let Some(&node) = aliases.get(&qc.qualifier.to_ascii_lowercase()) else {
            return bind_err(format!("unknown table alias `{}`", qc.qualifier));
        };
        let relation = catalog
            .relation(bindings[node])
            .expect("binding is valid by construction");
        let col = relation
            .columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(&qc.column))
            .map(|c| c.id);
        match col {
            Some(col) => Ok(ColRef { node, col }),
            None => bind_err(format!(
                "relation `{}` (alias `{}`) has no column `{}`",
                relation.name, qc.qualifier, qc.column
            )),
        }
    };

    let mut edges: Vec<JoinEdge> = Vec::new();
    let mut filters: Vec<Predicate> = Vec::new();
    for cond in &stmt.conditions {
        match cond {
            Condition::Join { left, right } => {
                let l = resolve(left)?;
                let r = resolve(right)?;
                if l.node == r.node {
                    return bind_err(format!(
                        "join condition `{}.{} = {}.{}` references one table",
                        left.qualifier, left.column, right.qualifier, right.column
                    ));
                }
                edges.push(JoinEdge::new(l, r));
            }
            Condition::Filter { column, op, value } => {
                let c = resolve(column)?;
                let op = match op {
                    Comparison::Eq => PredOp::Eq,
                    Comparison::Lt => PredOp::Lt,
                    Comparison::Le => PredOp::Le,
                    Comparison::Gt => PredOp::Gt,
                    Comparison::Ge => PredOp::Ge,
                };
                filters.push(Predicate::new(c, op, *value));
            }
        }
    }

    let group_column = stmt
        .group_by
        .as_ref()
        .map(|gb| resolve(&gb.column))
        .transpose()?;
    let order_column = stmt
        .order_by
        .as_ref()
        .map(|ob| resolve(&ob.column))
        .transpose()?;

    // `resolve` (and its borrow of `bindings`) is no longer used past
    // this point; shadow it away so `bindings` can move.
    let mut graph = JoinGraph::new(bindings, edges);
    for f in filters {
        graph.add_filter(f);
    }
    let mut query = Query::new(graph);
    if let Some(col) = group_column {
        query = query.with_group_by(col);
    }
    if let Some(col) = order_column {
        query = query.with_order_by(col);
    }
    Ok(query)
}

/// Look up a column id by name on a relation (helper shared with the
/// renderer's tests).
pub(crate) fn column_name(catalog: &Catalog, rel: RelId, col: ColId) -> String {
    catalog
        .relation(rel)
        .ok()
        .and_then(|r| r.column(col).map(|c| c.name.clone()))
        .unwrap_or_else(|| format!("c{}", col.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;

    #[test]
    fn binds_tables_aliases_and_columns() {
        let catalog = Catalog::paper();
        let q = parse_query(
            &catalog,
            "SELECT * FROM R5 a, R6 b, R7 WHERE a.c0 = b.c1 AND b.c2 = R7.c3",
        )
        .unwrap();
        assert_eq!(q.num_relations(), 3);
        assert_eq!(q.graph.relation(0), RelId(5));
        assert_eq!(q.graph.relation(2), RelId(7));
        assert_eq!(q.graph.edges().len(), 2);
    }

    #[test]
    fn same_table_twice_needs_aliases() {
        let catalog = Catalog::paper();
        // Self-join via two aliases works…
        let q = parse_query(&catalog, "SELECT * FROM R5 a, R5 b WHERE a.c0 = b.c0").unwrap();
        assert_eq!(q.graph.relation(0), q.graph.relation(1));
        // …duplicate aliases do not.
        let err = parse_query(&catalog, "SELECT * FROM R5 a, R6 a WHERE a.c0 = a.c1").unwrap_err();
        assert!(err.to_string().contains("duplicate alias"));
    }

    #[test]
    fn filters_and_order_by_bind() {
        let catalog = Catalog::paper();
        let q = parse_query(
            &catalog,
            "SELECT * FROM R3 a, R4 b WHERE a.c0 = b.c0 AND a.c5 >= 100 ORDER BY b.c0",
        )
        .unwrap();
        assert_eq!(q.graph.filters().len(), 1);
        assert_eq!(q.graph.filters()[0].op, PredOp::Ge);
        assert!(q.order_on_join_column());
    }

    #[test]
    fn group_by_binds_as_interesting_order() {
        let catalog = Catalog::paper();
        let q = parse_query(
            &catalog,
            "SELECT * FROM R3 a, R4 b WHERE a.c0 = b.c0 GROUP BY b.c0",
        )
        .unwrap();
        assert!(q.order_by.is_none());
        assert!(q.group_by.is_some());
        assert!(q.order_on_join_column());
    }

    #[test]
    fn group_by_and_order_by_both_bind() {
        let catalog = Catalog::paper();
        let q = parse_query(
            &catalog,
            "SELECT * FROM R3 a, R4 b WHERE a.c0 = b.c0 GROUP BY a.c0 ORDER BY b.c0",
        )
        .unwrap();
        assert!(q.group_by.is_some());
        assert!(q.order_by.is_some());
        // ORDER BY wins as the optimizer's order target.
        assert_eq!(
            q.interesting_order().unwrap().column,
            q.order_by.unwrap().column
        );
    }

    #[test]
    fn helpful_bind_errors() {
        let catalog = Catalog::paper();
        for (sql, needle) in [
            ("SELECT * FROM Nope n", "unknown table"),
            ("SELECT * FROM R1 a WHERE b.c0 = 1", "unknown table alias"),
            ("SELECT * FROM R1 a WHERE a.zz = 1", "no column"),
            (
                "SELECT * FROM R1 a, R2 b WHERE a.c0 = a.c1",
                "references one table",
            ),
            // Unbound order/group columns are rejected, not ignored.
            ("SELECT * FROM R1 a ORDER BY b.c0", "unknown table alias"),
            ("SELECT * FROM R1 a ORDER BY a.zz", "no column"),
            ("SELECT * FROM R1 a GROUP BY b.c0", "unknown table alias"),
            ("SELECT * FROM R1 a GROUP BY a.zz", "no column"),
        ] {
            let err = parse_query(&catalog, sql).unwrap_err();
            assert!(err.to_string().contains(needle), "{sql}: {err}");
        }
    }

    #[test]
    fn bound_query_optimizes() {
        use sdp_core::{Algorithm, Optimizer, SdpConfig};
        let catalog = Catalog::paper();
        let q = parse_query(
            &catalog,
            "SELECT * FROM R24 f, R3 a, R7 b, R9 c \
             WHERE f.c0 = a.c2 AND f.c1 = b.c5 AND f.c2 = c.c1 AND a.c4 < 50",
        )
        .unwrap();
        let plan = Optimizer::new(&catalog)
            .optimize(&q, Algorithm::Sdp(SdpConfig::paper()))
            .unwrap();
        assert_eq!(plan.root.set, q.graph.all_nodes());
    }
}
